//! The default backend: the live `laab-kernels` execution engine.

use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_kernels::{geadd, geadd_assign, gescale_assign, matmul_dispatch, tridiag_matmul, Trans};

use crate::{Backend, BackendId};

/// The live `laab-kernels` engine — packed/tiled GEMM with AVX-512/AVX2
/// FMA microkernels, shape-directed DOT/GEMV lowering, and the persistent
/// worker pool. This is the backend every execution used before the
/// backend layer existed, and it remains the default: `engine` results
/// define the baseline every other backend is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineBackend;

impl<T: Scalar> Backend<T> for EngineBackend {
    fn id(&self) -> BackendId {
        BackendId::ENGINE
    }

    fn matmul(&self, alpha: T, a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
        matmul_dispatch(alpha, a, ta, b, tb)
    }

    fn geadd(&self, alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
        geadd(alpha, a, beta, b)
    }

    fn geadd_assign(&self, alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>) {
        geadd_assign(alpha, a, beta, b)
    }

    fn scale_assign(&self, alpha: T, x: &mut Matrix<T>) {
        gescale_assign(alpha, x)
    }

    fn tridiag_matmul(&self, t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
        tridiag_matmul(t, b)
    }
}
