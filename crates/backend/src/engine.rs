//! The default backend: the live `laab-kernels` execution engine.

use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_kernels::{
    geadd, geadd_assign, gescale_assign, matmul_dispatch, matmul_multi_rhs_parts, tridiag_matmul,
    Trans,
};

use crate::{Backend, BackendId};

/// The live `laab-kernels` engine — packed/tiled GEMM with AVX-512/AVX2
/// FMA microkernels, shape-directed DOT/GEMV lowering, and the persistent
/// worker pool. This is the backend every execution used before the
/// backend layer existed, and it remains the default: `engine` results
/// define the baseline every other backend is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineBackend;

impl<T: Scalar> Backend<T> for EngineBackend {
    fn id(&self) -> BackendId {
        BackendId::ENGINE
    }

    fn matmul(&self, alpha: T, a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
        matmul_dispatch(alpha, a, ta, b, tb)
    }

    fn matmul_batched(
        &self,
        alpha: T,
        a: &Matrix<T>,
        ta: Trans,
        bs: &[&Matrix<T>],
    ) -> Vec<Matrix<T>> {
        // The engine's batched lever: one column-stacked GEMM packs each
        // A panel once for all q right-hand sides (the q GEMV-shaped solo
        // calls were each re-reading all of A). Stacking pays exactly
        // when that re-read is real memory traffic — so this is
        // shape-directed like every other lowering in the engine: below
        // two parts there is nothing to amortize, and while A still fits
        // in L1 the solo GEMV/DOT dispatch is already compute-bound and
        // the packing/split overhead would be pure loss (measured ~25%
        // at 48×48, ~2x win at 192×192 on the serve workload). Those
        // cases take the per-item loop, which keeps the solo dispatch
        // bitwise intact.
        const L1_BYTES: usize = 32 * 1024;
        let uniform = bs.windows(2).all(|w| w[0].shape() == w[1].shape());
        let a_bytes = a.rows() * a.cols() * std::mem::size_of::<T>();
        if bs.len() < 2 || !uniform || a_bytes <= L1_BYTES {
            return bs.iter().map(|b| self.matmul(alpha, a, ta, b, Trans::No)).collect();
        }
        // Zero-copy outputs: the multi-RHS sweep writes each part's
        // columns straight into its own matrix — no stacked C, no
        // `split_cols` second pass.
        matmul_multi_rhs_parts(alpha, a, ta, bs)
    }

    fn geadd(&self, alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
        geadd(alpha, a, beta, b)
    }

    fn geadd_assign(&self, alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>) {
        geadd_assign(alpha, a, beta, b)
    }

    fn scale_assign(&self, alpha: T, x: &mut Matrix<T>) {
        gescale_assign(alpha, x)
    }

    fn tridiag_matmul(&self, t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
        tridiag_matmul(t, b)
    }
}
