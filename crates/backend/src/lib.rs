//! # laab-backend — pluggable execution backends
//!
//! The paper's core finding is that TensorFlow and PyTorch lower the
//! *same* linear-algebra expression to very different execution
//! strategies (eager vs graph vs BLAS-aware), and the interesting numbers
//! are the *ratios* between them. This crate is that comparison axis for
//! the LAAB stack: it decouples *what* a compiled plan computes (the
//! optimized graph, owned by `laab-graph`) from *which kernels* compute
//! it, the way one `tf.function`-traced graph can be dispatched to
//! multiple runtimes.
//!
//! * [`Backend`] — the dispatch trait, cut at exactly the granularity the
//!   graph executor already uses: one entry point per kernel-backed node
//!   kind (product, elementwise add, in-place variants, structured
//!   tridiagonal product). Pure data movement (transpose, slicing,
//!   concatenation) stays in the executor — it is backend-independent.
//! * [`BackendId`] — a backend's stable identity. `laab-serve` folds it
//!   into the plan-cache [`Signature`] hash, so the same expression
//!   compiled for two backends occupies two independent cache entries and
//!   identical traffic can be A/B'd across backends in one interleaved
//!   run (`laab serve --backends engine,seed`).
//! * [`registry`] — the process-wide name → backend table: the three
//!   built-ins below plus anything added via [`registry::register`]
//!   (a GPU-style stub, an instrumented wrapper, …).
//!
//! The built-in backends:
//!
//! | name | what it is |
//! |------|------------|
//! | [`engine`](EngineBackend) | the live `laab-kernels` engine (packed/tiled GEMM, FMA microkernels, worker pool) — the default |
//! | [`seed`](SeedBackend) | the frozen PR-1 GEMM ([`laab_kernels::seed`]) behind the shared shape dispatch — the perf-trajectory yardstick |
//! | [`reference`](ReferenceBackend) | textbook triple loops ([`laab_kernels::reference`]) — the correctness oracle |
//!
//! [`Signature`]: https://docs.rs/laab-serve

#![deny(missing_docs)]

mod engine;
mod reference;
pub mod registry;
mod seed;

use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_kernels::Trans;

pub use engine::EngineBackend;
pub use reference::ReferenceBackend;
pub use registry::Registration;
pub use seed::SeedBackend;

/// Element precision of a request (the BLAS `s`/`d` split).
///
/// A dtype change is a signature change: `tf.function` retraces when a
/// `float32` argument becomes `float64`, and so does the plan cache.
/// Lives here (below `laab-serve`) because backends declare which dtypes
/// they support — a future GPU-style backend may be `f32`-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// Single precision (`f32`, the frameworks' default — paper fn. 3).
    F32,
    /// Double precision (`f64`).
    F64,
}

impl Dtype {
    /// Report-friendly name (`"f32"` / `"f64"`).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }

    /// The dtype of a kernel scalar type.
    pub fn of<T: Scalar>() -> Dtype {
        match T::PREFIX {
            "s" => Dtype::F32,
            _ => Dtype::F64,
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The stable identity of one backend: its registry name.
///
/// `Copy`, cheap to compare, and with stable bytes — `laab-serve` folds
/// the name into the plan-cache signature hash, so two backends can never
/// alias onto one compiled plan. Uniqueness is enforced where it matters:
/// [`registry::register`] rejects a name that is already taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(&'static str);

impl BackendId {
    /// The live `laab-kernels` engine (the default backend).
    pub const ENGINE: BackendId = BackendId("engine");
    /// The frozen PR-1 GEMM yardstick.
    pub const SEED: BackendId = BackendId("seed");
    /// The naive triple-loop correctness oracle.
    pub const REFERENCE: BackendId = BackendId("reference");

    /// The id for a (custom) backend name. Registry registration, not
    /// this constructor, is what enforces name uniqueness.
    pub const fn of(name: &'static str) -> BackendId {
        BackendId(name)
    }

    /// The backend's registry name.
    pub fn name(self) -> &'static str {
        self.0
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// One execution backend at element precision `T`.
///
/// The surface is exactly the set of kernel entry points the graph
/// executor dispatches per node kind — a backend swaps the *kernels*, not
/// the execution sweep, so an A/B across backends isolates kernel
/// strategy from graph optimization and scheduling (which are shared).
///
/// The in-place methods are the executor's buffer-reuse forms; each must
/// be bitwise-identical to its allocating sibling so buffer stealing
/// never changes results.
pub trait Backend<T: Scalar>: Send + Sync {
    /// This backend's stable identity.
    fn id(&self) -> BackendId;

    /// `α·op(A)·op(B)` — the `MatMul` node (shape-directed lowering to
    /// DOT/GEMV/GEMM is a backend concern, mirroring how the frameworks'
    /// `matmul` picks a BLAS kernel per operand shape).
    fn matmul(&self, alpha: T, a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T>;

    /// Batched `α·op(A)·Bᵢ` over `q` same-shape untransposed right-hand
    /// sides — the multi-RHS hook the batched graph executor dispatches
    /// when same-signature requests are coalesced (`laab serve
    /// --batch-window`). Entry `i` of the result corresponds to `bs[i]`.
    ///
    /// The default is a **per-item loop** through [`Backend::matmul`], so
    /// every backend is batch-correct by construction and the `seed`/
    /// `reference` backends remain bitwise oracles for the batched path:
    /// their batched entry `i` is exactly their solo product with `bs[i]`.
    /// A backend overriding this (the engine) may instead execute one
    /// column-stacked `m×(q·n)` GEMM — amortizing `A`-panel packing and
    /// converting GEMV-shaped traffic into the Level-3 regime — at the
    /// cost of FMA-chain-level drift versus its own solo dispatch
    /// (documented ULP bound, property-tested in `laab-graph`).
    fn matmul_batched(
        &self,
        alpha: T,
        a: &Matrix<T>,
        ta: Trans,
        bs: &[&Matrix<T>],
    ) -> Vec<Matrix<T>> {
        bs.iter().map(|b| self.matmul(alpha, a, ta, b, Trans::No)).collect()
    }

    /// Elementwise `α·A + β·B` — the `Add`/`Sub` nodes.
    fn geadd(&self, alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T>;

    /// In-place `A := α·A + β·B` — the buffer-reuse form of
    /// [`Backend::geadd`].
    fn geadd_assign(&self, alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>);

    /// `α·X` — the `Scale` node, in the executor's `α·x + 0·x` form (the
    /// `+ 0·x` term keeps all scale paths bitwise-identical on non-finite
    /// inputs and signed zeros).
    fn scale(&self, alpha: T, x: &Matrix<T>) -> Matrix<T> {
        self.geadd(alpha, x, T::ZERO, x)
    }

    /// In-place `X := α·X` — the buffer-reuse form of [`Backend::scale`].
    fn scale_assign(&self, alpha: T, x: &mut Matrix<T>);

    /// Structured tridiagonal product `T·B` from the compact form.
    fn tridiag_matmul(&self, t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T>;
}

/// The default backend (the live engine) as a trait object, for any
/// scalar type — what `laab_graph::execute` uses when no backend is
/// named.
pub fn engine<T: Scalar>() -> &'static dyn Backend<T> {
    &EngineBackend
}

/// Scalar types backends can execute — `f32`/`f64`, the BLAS `s`/`d`
/// split. Bridges the generic kernel world ([`Scalar`]) to the
/// dtype-tagged registry world: a [`Registration`] holds one trait-object
/// slot per dtype, and this trait picks the right slot for a generic `T`.
pub trait BackendScalar: Scalar {
    /// The dtype tag of this scalar type.
    const DTYPE: Dtype;

    #[doc(hidden)]
    fn slot(reg: &Registration) -> Option<&'static dyn Backend<Self>>;
}

impl BackendScalar for f32 {
    const DTYPE: Dtype = Dtype::F32;

    fn slot(reg: &Registration) -> Option<&'static dyn Backend<f32>> {
        reg.f32
    }
}

impl BackendScalar for f64 {
    const DTYPE: Dtype = Dtype::F64;

    fn slot(reg: &Registration) -> Option<&'static dyn Backend<f64>> {
        reg.f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;

    fn backends() -> [&'static dyn Backend<f64>; 3] {
        [&EngineBackend, &SeedBackend, &ReferenceBackend]
    }

    #[test]
    fn ids_and_dtype_tags() {
        assert_eq!(BackendId::ENGINE.name(), "engine");
        assert_eq!(BackendId::of("engine"), BackendId::ENGINE);
        assert_eq!(BackendId::SEED.to_string(), "seed");
        assert_eq!(Dtype::of::<f32>(), Dtype::F32);
        assert_eq!(Dtype::of::<f64>(), Dtype::F64);
        assert_eq!(Dtype::F32.to_string(), "f32");
        assert_eq!(<f32 as BackendScalar>::DTYPE, Dtype::F32);
        assert_eq!(<f64 as BackendScalar>::DTYPE, Dtype::F64);
        let ids: Vec<BackendId> = backends().iter().map(|b| b.id()).collect();
        assert_eq!(ids, vec![BackendId::ENGINE, BackendId::SEED, BackendId::REFERENCE]);
    }

    #[test]
    fn matmul_agrees_across_backends() {
        let mut g = OperandGen::new(3);
        let a = g.matrix::<f64>(13, 9);
        let b = g.matrix::<f64>(13, 11);
        let oracle = ReferenceBackend.matmul(1.5, &a, Trans::Yes, &b, Trans::No);
        for be in backends() {
            let got = be.matmul(1.5, &a, Trans::Yes, &b, Trans::No);
            // FMA contraction differs between backends: reduction-order
            // shape is shared but rounding is not, hence approx.
            assert!(got.approx_eq(&oracle, 1e-13), "{} disagrees with oracle", be.id());
        }
    }

    #[test]
    fn vector_shapes_share_the_level2_path() {
        // GEMV/DOT shapes were never frozen: seed and engine are the
        // exact same kernels there, so results are bitwise-identical.
        let mut g = OperandGen::new(5);
        let h = g.matrix::<f64>(17, 17);
        let x = g.matrix::<f64>(17, 1);
        let e = EngineBackend.matmul(1.0, &h, Trans::No, &x, Trans::No);
        let s = SeedBackend.matmul(1.0, &h, Trans::No, &x, Trans::No);
        assert_eq!(e, s);
        let ed = EngineBackend.matmul(1.0, &x, Trans::Yes, &x, Trans::No);
        let sd = SeedBackend.matmul(1.0, &x, Trans::Yes, &x, Trans::No);
        assert_eq!(ed, sd);
    }

    #[test]
    fn elementwise_ops_are_bitwise_identical_across_backends() {
        // No reductions: every backend evaluates the same per-element
        // expression, so equality is exact, and the in-place forms match
        // the allocating forms bit for bit.
        let mut g = OperandGen::new(7);
        let a = g.matrix::<f64>(9, 6);
        let b = g.matrix::<f64>(9, 6);
        let oracle = EngineBackend.geadd(2.0, &a, -0.5, &b);
        for be in backends() {
            assert_eq!(be.geadd(2.0, &a, -0.5, &b), oracle, "{}", be.id());
            let mut acc = a.clone();
            be.geadd_assign(2.0, &mut acc, -0.5, &b);
            assert_eq!(acc, oracle, "{} geadd_assign", be.id());

            let scaled = be.scale(3.0, &a);
            assert_eq!(scaled, EngineBackend.scale(3.0, &a), "{} scale", be.id());
            let mut acc = a.clone();
            be.scale_assign(3.0, &mut acc);
            assert_eq!(acc, scaled, "{} scale_assign", be.id());
        }
    }

    #[test]
    fn tridiag_agrees_across_backends() {
        let mut g = OperandGen::new(11);
        let t = g.tridiagonal::<f64>(12);
        let b = g.matrix::<f64>(12, 7);
        let oracle = laab_kernels::reference::tridiag_matmul_naive(&t, &b);
        for be in backends() {
            assert!(be.tridiag_matmul(&t, &b).approx_eq(&oracle, 1e-14), "{}", be.id());
        }
    }

    #[test]
    fn batched_matmul_default_loop_is_bitwise_solo() {
        // seed and reference keep the default per-item loop, so their
        // batched entries are exactly their solo products — the oracle
        // property the batched equivalence suite leans on.
        let mut g = OperandGen::new(17);
        let h = g.matrix::<f64>(14, 10);
        let parts: Vec<Matrix<f64>> = (0..5).map(|_| g.matrix::<f64>(14, 1)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        for be in [&SeedBackend as &dyn Backend<f64>, &ReferenceBackend] {
            let batched = be.matmul_batched(2.0, &h, Trans::Yes, &refs);
            assert_eq!(batched.len(), refs.len());
            for (got, b) in batched.iter().zip(&refs) {
                assert_eq!(got, &be.matmul(2.0, &h, Trans::Yes, b, Trans::No), "{}", be.id());
            }
        }
    }

    #[test]
    fn batched_matmul_engine_stacks_and_agrees() {
        // 80×80 f64 = 51KB: past the L1 cutoff, so the engine stacks.
        let mut g = OperandGen::new(19);
        let h = g.matrix::<f64>(80, 80);
        let parts: Vec<Matrix<f64>> = (0..6).map(|_| g.matrix::<f64>(80, 1)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        let batched = EngineBackend.matmul_batched(1.0, &h, Trans::No, &refs);
        // Bitwise vs the multi-RHS kernel entry (that IS the fast path)…
        let stacked = laab_kernels::matmul_multi_rhs(1.0, &h, Trans::No, &refs);
        assert_eq!(batched, stacked.split_cols(refs.len()));
        // …and within FMA-chain drift of the engine's own solo dispatch
        // (solo n=1 lowers to GEMV; stacked runs the GEMM microkernel).
        for (got, b) in batched.iter().zip(&refs) {
            let solo = EngineBackend.matmul(1.0, &h, Trans::No, b, Trans::No);
            assert!(got.approx_eq(&solo, 1e-13));
        }
        // Non-uniform parts fall back to the per-item loop, bitwise solo.
        let wide = g.matrix::<f64>(80, 3);
        let mixed: Vec<&Matrix<f64>> = vec![&parts[0], &wide];
        let loops = EngineBackend.matmul_batched(1.0, &h, Trans::No, &mixed);
        for (got, b) in loops.iter().zip(&mixed) {
            assert_eq!(got, &EngineBackend.matmul(1.0, &h, Trans::No, b, Trans::No));
        }
        // A single part keeps the solo dispatch exactly.
        let single = EngineBackend.matmul_batched(1.0, &h, Trans::No, &refs[..1]);
        assert_eq!(single[0], EngineBackend.matmul(1.0, &h, Trans::No, refs[0], Trans::No));
        // An L1-resident A keeps the solo dispatch too: nothing to
        // amortize, so batched is bitwise the per-item loop.
        let small = g.matrix::<f64>(16, 12);
        let sparts: Vec<Matrix<f64>> = (0..6).map(|_| g.matrix::<f64>(12, 1)).collect();
        let srefs: Vec<&Matrix<f64>> = sparts.iter().collect();
        let sb = EngineBackend.matmul_batched(1.0, &small, Trans::No, &srefs);
        for (got, b) in sb.iter().zip(&srefs) {
            assert_eq!(got, &EngineBackend.matmul(1.0, &small, Trans::No, b, Trans::No));
        }
    }

    #[test]
    fn f32_backends_work_too() {
        let mut g = OperandGen::new(13);
        let a = g.matrix::<f32>(10, 8);
        let b = g.matrix::<f32>(10, 9);
        let oracle = ReferenceBackend.matmul(1.0f32, &a, Trans::Yes, &b, Trans::No);
        let fast: [&dyn Backend<f32>; 2] = [&EngineBackend, &SeedBackend];
        for be in fast {
            assert!(be.matmul(1.0, &a, Trans::Yes, &b, Trans::No).approx_eq(&oracle, 1e-5));
        }
    }
}
