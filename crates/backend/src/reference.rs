//! The naive triple-loop backend: the correctness oracle.

use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_kernels::{reference, Trans};

use crate::{Backend, BackendId};

/// Textbook loops from [`laab_kernels::reference`] for every node kind.
///
/// No blocking, no packing, no FMA contraction, no counters — results are
/// exactly what the mathematical definition evaluates left to right, so
/// this backend is the oracle the optimized backends are property-tested
/// against (and the slow end of every serve-side A/B). O(n³) products:
/// use it at oracle sizes, not paper sizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl<T: Scalar> Backend<T> for ReferenceBackend {
    fn id(&self) -> BackendId {
        BackendId::REFERENCE
    }

    fn matmul(&self, alpha: T, a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
        let (m, _) = ta.dims(a.rows(), a.cols());
        let (_, n) = tb.dims(b.rows(), b.cols());
        reference::gemm_naive(alpha, a, ta, b, tb, T::ZERO, &Matrix::zeros(m, n))
    }

    fn geadd(&self, alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
        reference::geadd_naive(alpha, a, beta, b)
    }

    fn geadd_assign(&self, alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>) {
        // The oracle allocates even in the "in-place" form — simplicity
        // over speed, and bitwise-identical to `geadd` by construction.
        *a = reference::geadd_naive(alpha, a, beta, b);
    }

    fn scale_assign(&self, alpha: T, x: &mut Matrix<T>) {
        *x = reference::gescale_naive(alpha, x);
    }

    fn tridiag_matmul(&self, t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
        reference::tridiag_matmul_naive(t, b)
    }
}
