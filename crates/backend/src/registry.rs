//! The process-wide backend registry.
//!
//! Maps stable names to [`Registration`]s — a backend's metadata plus one
//! trait-object slot per supported dtype. The three built-ins (`engine`,
//! `seed`, `reference`) are always present; additional backends (a
//! GPU-style stub, an instrumented wrapper) can be added at runtime with
//! [`register`], which is what makes the serve harness's `--backends`
//! flag an open set rather than an enum.

use std::sync::{OnceLock, RwLock};

use crate::{Backend, BackendId, BackendScalar, Dtype};
use crate::{EngineBackend, ReferenceBackend, SeedBackend};

/// One registered backend: identity, description, and a trait-object
/// slot per dtype it supports (`None` = unsupported — a serve run that
/// would hit the missing dtype is rejected up front, before dispatch).
pub struct Registration {
    name: &'static str,
    description: &'static str,
    pub(crate) f32: Option<&'static dyn Backend<f32>>,
    pub(crate) f64: Option<&'static dyn Backend<f64>>,
}

impl Registration {
    /// A registration for `name` with the given per-dtype entry points.
    pub const fn new(
        name: &'static str,
        description: &'static str,
        f32: Option<&'static dyn Backend<f32>>,
        f64: Option<&'static dyn Backend<f64>>,
    ) -> Self {
        Self { name, description, f32, f64 }
    }

    /// The registry name (also the CLI spelling in `--backends`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (shown by `laab list`-style surfaces).
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The backend's stable identity.
    pub fn id(&self) -> BackendId {
        BackendId::of(self.name)
    }

    /// Whether this backend can execute `dtype`.
    pub fn supports(&self, dtype: Dtype) -> bool {
        match dtype {
            Dtype::F32 => self.f32.is_some(),
            Dtype::F64 => self.f64.is_some(),
        }
    }

    /// The backend's entry point at precision `T`, when supported.
    pub fn resolve<T: BackendScalar>(&self) -> Option<&'static dyn Backend<T>> {
        T::slot(self)
    }
}

impl std::fmt::Debug for Registration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registration")
            .field("name", &self.name)
            .field("f32", &self.f32.is_some())
            .field("f64", &self.f64.is_some())
            .finish()
    }
}

static ENGINE_REG: Registration = Registration::new(
    "engine",
    "live laab-kernels engine (packed GEMM, FMA microkernels, worker pool) — default",
    Some(&EngineBackend),
    Some(&EngineBackend),
);

static SEED_REG: Registration = Registration::new(
    "seed",
    "frozen PR-1 GEMM behind the shared shape dispatch — perf-trajectory yardstick",
    Some(&SeedBackend),
    Some(&SeedBackend),
);

static REFERENCE_REG: Registration = Registration::new(
    "reference",
    "naive triple loops — the correctness oracle (use at oracle sizes)",
    Some(&ReferenceBackend),
    Some(&ReferenceBackend),
);

/// The always-present built-in backends, default first.
pub fn builtins() -> [&'static Registration; 3] {
    [&ENGINE_REG, &SEED_REG, &REFERENCE_REG]
}

/// The default backend (`engine`) — what every execution path uses when
/// no backend is named.
pub fn default_backend() -> &'static Registration {
    &ENGINE_REG
}

fn extras() -> &'static RwLock<Vec<&'static Registration>> {
    static EXTRAS: OnceLock<RwLock<Vec<&'static Registration>>> = OnceLock::new();
    EXTRAS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Why a [`register`] call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A backend with this name already exists (built-in or registered).
    NameTaken(&'static str),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NameTaken(name) => {
                write!(f, "backend name `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Register an additional backend process-wide.
///
/// The registration must be `'static` (a `static` item, or leaked); names
/// are first-come-first-served and collisions with built-ins or earlier
/// registrations are rejected, so a [`BackendId`] resolves to one backend
/// for the life of the process — a plan cached under it can never switch
/// implementations.
pub fn register(reg: &'static Registration) -> Result<(), RegistryError> {
    let mut extras = extras().write().unwrap_or_else(|e| e.into_inner());
    let taken = builtins().iter().chain(extras.iter()).any(|r| r.name() == reg.name());
    if taken {
        return Err(RegistryError::NameTaken(reg.name()));
    }
    extras.push(reg);
    Ok(())
}

/// Look a backend up by registry name.
pub fn find(name: &str) -> Option<&'static Registration> {
    if let Some(b) = builtins().into_iter().find(|r| r.name() == name) {
        return Some(b);
    }
    let extras = extras().read().unwrap_or_else(|e| e.into_inner());
    extras.iter().copied().find(|r| r.name() == name)
}

/// Every registered backend, built-ins first, in registration order.
pub fn all() -> Vec<&'static Registration> {
    let extras = extras().read().unwrap_or_else(|e| e.into_inner());
    builtins().into_iter().chain(extras.iter().copied()).collect()
}

/// Every registered backend name (error messages, CLI help).
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(Registration::name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_and_support_both_dtypes() {
        for name in ["engine", "seed", "reference"] {
            let reg = find(name).unwrap_or_else(|| panic!("builtin `{name}` missing"));
            assert_eq!(reg.name(), name);
            assert_eq!(reg.id(), BackendId::of(name));
            assert!(reg.supports(Dtype::F32) && reg.supports(Dtype::F64));
            assert!(reg.resolve::<f32>().is_some());
            let be = reg.resolve::<f64>().expect("f64 entry point");
            assert_eq!(be.id().name(), name);
            assert!(!reg.description().is_empty());
            assert!(format!("{reg:?}").contains(name));
        }
        assert!(find("no-such-backend").is_none());
        assert_eq!(default_backend().name(), "engine");
        assert!(names().starts_with(&["engine", "seed", "reference"]));
    }

    #[test]
    fn registering_a_custom_backend_extends_the_registry() {
        // An f32-only backend: delegates to the engine but declares no
        // f64 entry point — the shape of a future GPU-style stub.
        static F32_ONLY: Registration = Registration::new(
            "test-f32-only",
            "engine kernels, f32 slot only (registry test)",
            Some(&EngineBackend),
            None,
        );
        register(&F32_ONLY).expect("fresh name registers");
        let reg = find("test-f32-only").expect("registered backend resolves");
        assert!(reg.supports(Dtype::F32) && !reg.supports(Dtype::F64));
        assert!(reg.resolve::<f32>().is_some());
        assert!(reg.resolve::<f64>().is_none());
        assert!(all().iter().any(|r| r.name() == "test-f32-only"));

        // Names are first-come-first-served: re-registering the same
        // name, or shadowing a built-in, is refused.
        assert_eq!(register(&F32_ONLY), Err(RegistryError::NameTaken("test-f32-only")));
        static SHADOW: Registration =
            Registration::new("engine", "impostor", Some(&EngineBackend), Some(&EngineBackend));
        let err = register(&SHADOW).expect_err("built-in name is taken");
        assert!(err.to_string().contains("engine"));
    }
}
