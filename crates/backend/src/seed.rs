//! The frozen PR-1 kernels as a backend: the perf-trajectory yardstick.

use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_kernels::counters::{self, Kernel};
use laab_kernels::{flops, matmul_dispatch, seed, Trans};

use crate::{Backend, BackendId, EngineBackend};

/// The frozen PR-1 GEMM ([`laab_kernels::seed`]) behind the shared shape
/// dispatch.
///
/// Only the matrix-matrix GEMM was frozen when the engine was overhauled;
/// vector-shaped products (DOT/GEMV) and the elementwise/structured nodes
/// were never part of that overhaul and share the engine implementations.
/// An `engine` vs `seed` A/B under identical traffic therefore isolates
/// exactly the GEMM engine's evolution — the same way the paper pins one
/// BLAS and varies the framework above it.
///
/// The frozen kernel itself records no counters (it predates nothing —
/// it must never change); the backend records the `Gemm` call here, at
/// the dispatch layer, so kernel-count analytics stay faithful when
/// serving through `seed`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedBackend;

impl<T: Scalar> Backend<T> for SeedBackend {
    fn id(&self) -> BackendId {
        BackendId::SEED
    }

    fn matmul(&self, alpha: T, a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
        let (m, ka) = ta.dims(a.rows(), a.cols());
        let (kb, n) = tb.dims(b.rows(), b.cols());
        assert_eq!(ka, kb, "seed matmul: inner dimensions differ ({ka} vs {kb})");
        if m == 1 || n == 1 {
            // Level-1/2 shapes were never frozen: shared with the engine.
            return matmul_dispatch(alpha, a, ta, b, tb);
        }
        counters::record(Kernel::Gemm, flops::gemm(m, n, ka));
        let mut c = Matrix::zeros(m, n);
        seed::gemm_seed(alpha, a, ta, b, tb, T::ZERO, &mut c);
        c
    }

    fn geadd(&self, alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
        Backend::<T>::geadd(&EngineBackend, alpha, a, beta, b)
    }

    fn geadd_assign(&self, alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>) {
        Backend::<T>::geadd_assign(&EngineBackend, alpha, a, beta, b)
    }

    fn scale_assign(&self, alpha: T, x: &mut Matrix<T>) {
        Backend::<T>::scale_assign(&EngineBackend, alpha, x)
    }

    fn tridiag_matmul(&self, t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
        Backend::<T>::tridiag_matmul(&EngineBackend, t, b)
    }
}
