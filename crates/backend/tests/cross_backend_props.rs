//! Cross-backend equivalence: for random plans drawn from the serving
//! workload's E1–E5 (+ solver-residual) families, the `reference`,
//! `seed`, `engine`, and `deferred` backends agree on every output.
//!
//! ## The numerical contract, documented
//!
//! Every backend accumulates each `k`-reduction in the same increasing-`p`
//! order (the engine's tile grid never splits a reduction), so the
//! *shape* of every sum is shared. What differs is rounding: the engine's
//! microkernels contract multiply-adds (FMA, one rounding per step) while
//! the reference and seed kernels round after the multiply. Per output
//! element that is at most one extra rounding per accumulation step, so
//! matrix-matrix products may drift by `O(k·ε)` **relative** — the ULP
//! bound asserted here is `1e-12` (f64) / `1e-4` (f32) relative Frobenius
//! distance at the test sizes (`k ≤ 32`), orders of magnitude tighter
//! than any paper finding and far looser than the drift can reach.
//!
//! Where no reduction-order/rounding freedom exists, equality must be
//! **bitwise**:
//! * elementwise nodes (Add/Sub/Scale) on every backend — covered by the
//!   unit tests in `laab-backend` itself; and
//! * whole plans whose products are all vector-shaped (the solver
//!   residual: GEMV/DOT shapes only), where `seed` and `engine` share
//!   the exact same un-frozen kernels — asserted below.
//!
//! ## The deferred tape's bounds
//!
//! The `deferred` backend queues ops on a tape and fuses at flush, on top
//! of the engine kernels. With fusion **off** (and with it on, whenever
//! the pass only regroups launches) every value is **bitwise** the
//! engine's: the identical kernels run in the identical order, only the
//! launch accounting changes. Two fusion rules genuinely alter kernels:
//! scale-folding moves a scalar into the GEMM `alpha` (one different
//! rounding per output element), and same-LHS coalescing runs the
//! engine's column-stacked multi-RHS path (the same FMA-chain drift its
//! request batching carries). Both are ULP-level; the bounds asserted
//! here — `1e-11` (f64) / `1e-3` (f32) relative — match what the serve
//! harness's equivalence probes use.

use laab_backend::{registry, BackendScalar};
use laab_dense::Matrix;
use laab_expr::eval::Env;
use laab_framework::Framework;
use laab_graph::{execute_scheduled_on, Schedule};
use laab_serve::workload::{Family, Request};
use laab_serve::{Dtype, Plan};
use proptest::prelude::*;

/// Compile one plan for the family (trace → optimize → schedule) and
/// execute it on each named backend with identical operand bindings.
fn run_backends<T: BackendScalar>(
    family: Family,
    n: usize,
    seed: u64,
    names: &[&str],
) -> Vec<Vec<Matrix<T>>> {
    let fw = Framework::flow();
    let function = fw.function_from_expr(&family.expr(n), &family.ctx(n));
    let (graph, _trace, _stats) = function.into_plan_parts();
    let schedule = Schedule::new(&graph);
    let env = family.env::<T>(n, seed);
    names
        .iter()
        .map(|name| {
            let backend = registry::find(name)
                .unwrap_or_else(|| panic!("builtin `{name}` missing"))
                .resolve::<T>()
                .expect("builtins support both dtypes");
            execute_scheduled_on(&graph, &schedule, &env, backend)
        })
        .collect()
}

fn rel_dist<T: laab_dense::Scalar>(a: &[Matrix<T>], b: &[Matrix<T>]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x.rel_dist(y)).fold(0.0, f64::max)
}

/// Execute one family's plan through the engine directly and through the
/// deferred tape (zero modeled launch cost — these are value tests) with
/// fusion on and off. Returns `[engine, fused, unfused]` output sets.
fn engine_vs_tape<T: BackendScalar>(family: Family, n: usize, seed: u64) -> [Vec<Matrix<T>>; 3] {
    let fw = Framework::flow();
    let function = fw.function_from_expr(&family.expr(n), &family.ctx(n));
    let (graph, _trace, _stats) = function.into_plan_parts();
    let schedule = Schedule::new(&graph);
    let env = family.env::<T>(n, seed);
    let backend = registry::find("engine")
        .expect("engine is always registered")
        .resolve::<T>()
        .expect("engine supports both dtypes");
    let engine = execute_scheduled_on(&graph, &schedule, &env, backend);
    let tape = |fuse: bool| {
        let tuning = laab_deferred::Tuning { dispatch_ns: 0, fuse, ..Default::default() };
        laab_deferred::with_tuning(tuning, || laab_deferred::execute_plan(&graph, &schedule, &env))
    };
    [engine, tape(true), tape(false)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The headline property: all three backends agree within the
    /// documented ULP bound on every family, size, and operand draw, at
    /// both precisions.
    #[test]
    fn backends_agree_on_random_plans(
        seed in any::<u64>(),
        fam in 0usize..Family::ALL.len(),
        n in 4usize..32,
    ) {
        let family = Family::ALL[fam];
        // `deferred` joins through its per-node surface here (every op
        // its own dispatch group — engine kernels, engine values); the
        // tape surface gets its own property below.
        laab_deferred::ensure_registered();
        let names = ["reference", "seed", "engine", "deferred"];

        let f64_outs = run_backends::<f64>(family, n, seed, &names);
        for (i, name) in names.iter().enumerate() {
            let d = rel_dist(&f64_outs[0], &f64_outs[i]);
            prop_assert!(
                d <= 1e-12,
                "{name} vs reference drifted {d:e} (f64, family {}, n {n})",
                family.id()
            );
        }

        let f32_outs = run_backends::<f32>(family, n, seed, &names);
        for (i, name) in names.iter().enumerate() {
            let d = rel_dist(&f32_outs[0], &f32_outs[i]);
            prop_assert!(
                d <= 1e-4,
                "{name} vs reference drifted {d:e} (f32, family {}, n {n})",
                family.id()
            );
        }
    }

    /// Bitwise case: the solver-residual family lowers to GEMV/DOT
    /// shapes and elementwise nodes only — kernels `seed` shares
    /// verbatim with `engine` — so those two backends must agree bit for
    /// bit, not just within tolerance.
    #[test]
    fn gemm_free_plans_are_bitwise_identical_between_seed_and_engine(
        seed in any::<u64>(),
        n in 4usize..48,
    ) {
        let outs = run_backends::<f64>(Family::SolveResidual, n, seed, &["seed", "engine"]);
        prop_assert_eq!(&outs[0], &outs[1]);
        let outs32 = run_backends::<f32>(Family::SolveResidual, n, seed, &["seed", "engine"]);
        prop_assert_eq!(&outs32[0], &outs32[1]);
    }

    /// The deferred tape vs the engine, all six families × both dtypes:
    /// with fusion off the tape is a pure reordering of launches, so it
    /// must be **bitwise** the engine; with fusion on, the two
    /// value-changing rewrites (alpha folding, same-LHS coalescing) stay
    /// within the documented ULP bound the serve probes assert.
    #[test]
    fn deferred_tape_matches_engine_within_documented_bounds(
        seed in any::<u64>(),
        fam in 0usize..Family::ALL.len(),
        n in 4usize..32,
    ) {
        let family = Family::ALL[fam];

        let [engine, fused, unfused] = engine_vs_tape::<f64>(family, n, seed);
        prop_assert_eq!(&unfused, &engine, "f64 unfused tape must be bitwise engine");
        let d = rel_dist(&fused, &engine);
        prop_assert!(
            d <= 1e-11,
            "fused tape drifted {d:e} vs engine (f64, family {}, n {n})",
            family.id()
        );

        let [engine32, fused32, unfused32] = engine_vs_tape::<f32>(family, n, seed);
        prop_assert_eq!(&unfused32, &engine32, "f32 unfused tape must be bitwise engine");
        let d32 = rel_dist(&fused32, &engine32);
        prop_assert!(
            d32 <= 1e-3,
            "fused tape drifted {d32:e} vs engine (f32, family {}, n {n})",
            family.id()
        );
    }

    /// Batched paths: for every family and every backend, coalescing a
    /// batch of same-signature requests through [`Plan::execute_batched`]
    /// agrees with serving each request solo — bitwise on `seed` and
    /// `reference` (their batched product is the default per-item loop,
    /// and the fallback families re-run the solo sweep verbatim), and
    /// within the documented ULP bound on the engine's stacked multi-RHS
    /// path (its solo GEMV dispatch vs the stacked GEMM microkernel).
    #[test]
    fn batched_plans_agree_with_solo_on_every_backend(
        seed in any::<u64>(),
        fam in 0usize..Family::ALL.len(),
        n in 4usize..96,
        q in 1usize..=8,
    ) {
        let family = Family::ALL[fam];
        let fw = Framework::flow();
        for name in ["reference", "seed", "engine"] {
            let reg = registry::find(name).unwrap_or_else(|| panic!("builtin `{name}` missing"));
            let plan = Plan::compile_with_varying(
                &fw,
                &family.expr(n),
                &family.ctx(n),
                reg,
                family.varying_operands(),
            );
            let base = family.env::<f64>(n, seed);
            let envs: Vec<Env<f64>> = (0..q as u64)
                .map(|payload| {
                    Request { family, n, dtype: Dtype::F64, payload }.env_from_pool(&base, seed)
                })
                .collect();
            let refs: Vec<&Env<f64>> = envs.iter().collect();
            let batched = plan.execute_batched(&refs);
            prop_assert_eq!(batched.len(), q);
            for (env, b) in envs.iter().zip(&batched) {
                let solo = plan.execute(env);
                if name == "engine" && plan.stackable() && q > 1 {
                    // The documented engine bound (1e-11 f64): past the
                    // L1 cutoff the stacked multi-RHS product really
                    // diverges from the solo GEMV dispatch by FMA-chain
                    // rounding; below it the paths coincide bitwise.
                    let d = rel_dist(b, &solo);
                    prop_assert!(
                        d <= 1e-11,
                        "engine batched drifted {d:e} (family {}, n {n}, q {q})",
                        family.id()
                    );
                } else {
                    prop_assert_eq!(b, &solo, "{} batched must be bitwise solo", name);
                }
            }
        }
    }
}
