//! Pass-pipeline ablation — the CSE expression `(AᵀB)ᵀ(AᵀB)` executed
//! under each optimizer configuration.
//!
//! Expected shape: with CSE on, ≈ 2/3 of the no-CSE time; transpose
//! folding alone changes little (the transposes are O(n²)); `none`
//! executes the verbatim 3-GEMM trace.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_env;
use laab_expr::var;
use laab_framework::Framework;
use laab_graph::PassConfig;

fn bench(c: &mut Criterion) {
    let (n, env, ctx) = bench_env();
    let s = var("A").t() * var("B");
    let e2 = s.t() * s.clone();

    let configs: Vec<(&str, PassConfig)> = vec![
        ("all", PassConfig::all()),
        ("none", PassConfig::none()),
        ("no_cse", PassConfig { cse: false, ..PassConfig::all() }),
        ("no_transpose_fold", PassConfig { fold_transpose: false, ..PassConfig::all() }),
        ("no_scale_fusion", PassConfig { fuse_scale: false, ..PassConfig::all() }),
    ];

    let mut group = c.benchmark_group(format!("ablation_passes/n{n}"));
    for (label, passes) in configs {
        let fw = Framework::flow().with_passes(passes);
        let f = fw.function_from_expr(&e2, &ctx);
        group.bench_function(label, |b| b.iter(|| f.call(&env)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
