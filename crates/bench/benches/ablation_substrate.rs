//! Substrate ablation — throughput of the kernel suite across sizes.
//!
//! Validates the DESIGN.md claim that conclusions transfer across n: GEMM
//! GFLOP/s should be roughly flat from 128 upward (cache-blocked), and
//! TRMM/SYRK should track at ≈ half the GEMM time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use laab_dense::gen::OperandGen;
use laab_kernels::{flops, matmul, syrk, trmm, Trans, UpLo};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_substrate");
    for &n in &[64usize, 128, 256, 384] {
        let mut g = OperandGen::new(n as u64);
        let a = g.matrix::<f32>(n, n);
        let b = g.matrix::<f32>(n, n);
        let l = g.lower_triangular::<f32>(n);
        group.throughput(Throughput::Elements(flops::gemm(n, n, n)));
        group.bench_with_input(BenchmarkId::new("gemm", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, Trans::No, &b, Trans::No))
        });
        group.throughput(Throughput::Elements(flops::trmm(n, n)));
        group.bench_with_input(BenchmarkId::new("trmm", n), &n, |bch, _| {
            bch.iter(|| trmm(1.0f32, &l, UpLo::Lower, &b))
        });
        group.throughput(Throughput::Elements(flops::syrk(n, n)));
        group.bench_with_input(BenchmarkId::new("syrk", n), &n, |bch, _| {
            bch.iter(|| syrk(1.0f32, &a))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
