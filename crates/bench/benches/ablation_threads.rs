//! Thread-scaling ablation — GEMM and the fused tridiagonal product under
//! 1/2/4 kernel threads.
//!
//! The paper measures single-threaded; this ablation exercises the
//! persistent-pool parallel path (2-D tile grid for GEMM, row chunks for
//! the structured kernels). On a single-core host the extra threads only
//! add hand-off overhead — the interesting shape appears on multi-core
//! machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laab_dense::gen::OperandGen;
use laab_kernels::{matmul, set_num_threads, tridiag_matmul, Trans};

fn bench(c: &mut Criterion) {
    let n = laab_bench::bench_n();
    let mut g = OperandGen::new(11);
    let a = g.matrix::<f32>(n, n);
    let b = g.matrix::<f32>(n, n);
    let t = g.tridiagonal::<f32>(n);

    let mut group = c.benchmark_group(format!("ablation_threads/n{n}"));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("gemm", threads), &threads, |bch, &th| {
            set_num_threads(th);
            bch.iter(|| matmul(&a, Trans::No, &b, Trans::No));
            set_num_threads(1);
        });
        group.bench_with_input(
            BenchmarkId::new("tridiag_matmul", threads),
            &threads,
            |bch, &th| {
                set_num_threads(th);
                bch.iter(|| tridiag_matmul(&t, &b));
                set_num_threads(1);
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
