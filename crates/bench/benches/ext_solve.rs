//! Extension — property-aware `solve(A, b)` vs the structure-blind LU path.
//!
//! Expected shape: triangular/diagonal/orthogonal systems beat blind LU by
//! growing factors; SPD saves the 2× factorization FLOPs via Cholesky;
//! general systems tie (nothing to exploit).

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_n;
use laab_dense::gen::OperandGen;
use laab_expr::Props;
use laab_rewrite::solve_aware;

fn bench(c: &mut Criterion) {
    let n = bench_n();
    let mut g = OperandGen::new(31);
    let b = g.matrix::<f32>(n, 1);
    let mut general = g.matrix::<f32>(n, n);
    for i in 0..n {
        general[(i, i)] += 4.0;
    }
    let mut lower = g.lower_triangular::<f32>(n);
    for i in 0..n {
        lower[(i, i)] = lower[(i, i)].abs() + 1.0;
    }
    let spd = g.spd::<f32>(n);
    let diag = g.diagonal::<f32>(n).to_dense();

    let mut group = c.benchmark_group(format!("ext_solve/n{n}"));
    group.bench_function("general/blind_lu", |bch| {
        bch.iter(|| solve_aware(&general, Props::NONE, &b).unwrap())
    });
    group.bench_function("triangular/aware_trsm", |bch| {
        bch.iter(|| solve_aware(&lower, Props::LOWER_TRIANGULAR, &b).unwrap())
    });
    group.bench_function("triangular/blind_lu", |bch| {
        bch.iter(|| solve_aware(&lower, Props::NONE, &b).unwrap())
    });
    group.bench_function("spd/aware_cholesky", |bch| {
        bch.iter(|| solve_aware(&spd, Props::SPD, &b).unwrap())
    });
    group.bench_function("spd/blind_lu", |bch| {
        bch.iter(|| solve_aware(&spd, Props::NONE, &b).unwrap())
    });
    group.bench_function("diagonal/aware_scale", |bch| {
        bch.iter(|| solve_aware(&diag, Props::DIAGONAL, &b).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
