//! Fig. 1 — the three image-restoration variants, graph mode.
//!
//! Expected shape: variant 1 (contains the O(n³) GEMM) is an order of
//! magnitude slower than variants 2 and 3 (GEMV-only); variant 3 shaves
//! one GEMV off variant 2.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_env;
use laab_core::experiments::fig1::variants as fig1_variants;
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let (n, env, ctx) = bench_env();
    let flow = Framework::flow();
    let mut group = c.benchmark_group(format!("fig1/n{n}"));
    for (label, expr) in fig1_variants(n) {
        let f = flow.function_from_expr(&expr, &ctx);
        let short = label.split(':').next().unwrap().replace(' ', "_");
        group.bench_function(short, |b| b.iter(|| f.call(&env)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
