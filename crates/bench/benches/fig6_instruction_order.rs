//! Fig. 6 — `(AB)(CD)` under the two same-FLOP instruction orders.
//!
//! Expected shape: the orders tie on a single socket (the paper's point is
//! that they *can* diverge when memory effects dominate).

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_n;
use laab_dense::gen::OperandGen;
use laab_expr::eval::Env;
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let n = bench_n();
    let mut g = OperandGen::new(6);
    let env = Env::<f32>::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("C", g.matrix(n, n))
        .with("D", g.matrix(n, n));
    let flow = Framework::flow();

    let f_uv = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let cc = fb.input("C", n, n);
        let d = fb.input("D", n, n);
        let u = fb.matmul(a, b);
        let v = fb.matmul(cc, d);
        vec![fb.matmul(u, v)]
    });
    let f_vu = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let cc = fb.input("C", n, n);
        let d = fb.input("D", n, n);
        let v = fb.matmul(cc, d);
        let u = fb.matmul(a, b);
        vec![fb.matmul(u, v)]
    });

    let mut group = c.benchmark_group(format!("fig6/n{n}"));
    group.bench_function("order_U_then_V", |b| b.iter(|| f_uv.call(&env)));
    group.bench_function("order_V_then_U", |b| b.iter(|| f_vu.call(&env)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
