//! Fig. 7 — all five parenthesizations of a length-4 chain.
//!
//! Expected shape: measured time ranks the five orders the same way their
//! FLOP counts do; the DP choice is the fastest.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_n;
use laab_chain::enumerate_parenthesizations;
use laab_core::workloads::fig7_dims;
use laab_core::ExperimentConfig;
use laab_dense::gen::OperandGen;
use laab_expr::eval::Env;
use laab_expr::{var, Context};
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let n = bench_n();
    let cfg = ExperimentConfig { n, ..Default::default() };
    let dims = fig7_dims(&cfg);
    let names = ["A", "B", "C", "D"];
    let mut g = OperandGen::new(7);
    let mut env = Env::<f32>::new();
    let mut ctx = Context::new();
    for (i, name) in names.iter().enumerate() {
        env.insert(name, g.matrix(dims[i], dims[i + 1]));
        ctx = ctx.with(name, dims[i], dims[i + 1]);
    }
    let factors: Vec<_> = names.iter().map(|s| var(s)).collect();
    let flow = Framework::flow();

    let mut group = c.benchmark_group(format!("fig7/n{n}"));
    for tree in enumerate_parenthesizations(4) {
        let expr = tree.to_expr(&factors);
        let f = flow.function_from_expr(&expr, &ctx);
        let label = tree.render().replace(' ', "").replace('(', "L").replace(')', "R");
        group.bench_function(format!("{label}_{}MF", tree.cost(&dims) / 1_000_000), |b| {
            b.iter(|| f.call(&env))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
