//! GEMM engine vs the frozen seed kernel — the per-commit perf guardrail.
//!
//! Complements `laab bench` (which emits the machine-readable trajectory
//! report): this criterion bench tracks the same comparison in the
//! standard `cargo bench` workflow, at `LAAB_BENCH_N` (default 256), over
//! the shape families the engine overhaul targets — square, GEMV-shaped
//! and wide-short — plus the seed-kernel baseline on the square shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laab_dense::gen::OperandGen;
use laab_dense::Matrix;
use laab_kernels::{gemm, matmul, seed, set_num_threads, Trans};

fn bench(c: &mut Criterion) {
    let n = laab_bench::bench_n();
    let mut g = OperandGen::new(5);

    let mut group = c.benchmark_group(format!("gemm_engine/n{n}"));

    // Square f64: engine vs frozen seed kernel, single thread.
    let a = g.matrix::<f64>(n, n);
    let b = g.matrix::<f64>(n, n);
    group.bench_function("square/engine", |bch| {
        bch.iter(|| matmul(&a, Trans::No, &b, Trans::No));
    });
    group.bench_function("square/seed", |bch| {
        let mut c_out = Matrix::<f64>::zeros(n, n);
        bch.iter(|| seed::gemm_seed(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_out));
    });

    // Wide-short (previously serial) and GEMV-shaped, 1 vs 4 threads.
    let wa = g.matrix::<f64>(24, n);
    let wb = g.matrix::<f64>(n, 8 * n);
    let ta = g.matrix::<f64>(4 * n, n);
    let tb = g.matrix::<f64>(n, 8);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("wide_short", threads), &threads, |bch, &th| {
            set_num_threads(th);
            bch.iter(|| matmul(&wa, Trans::No, &wb, Trans::No));
            set_num_threads(1);
        });
        group.bench_with_input(BenchmarkId::new("gemv_shaped", threads), &threads, |bch, &th| {
            set_num_threads(th);
            bch.iter(|| matmul(&ta, Trans::No, &tb, Trans::No));
            set_num_threads(1);
        });
    }

    // Transposed operands cost the same as plain ones (packing absorbs
    // the strides) — keep that claim on the perf record.
    let mut c_out = Matrix::<f64>::zeros(n, n);
    group.bench_function("square/engine_at_b", |bch| {
        bch.iter(|| gemm(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &mut c_out));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
