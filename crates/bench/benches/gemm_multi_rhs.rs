//! Multi-RHS GEMM vs a loop of solo GEMV-shaped products — the kernel
//! half of the batched-serving lever, in the standard `cargo bench`
//! workflow (the machine-readable trajectory lives in `laab bench`'s
//! `summary.batch_gflops`).
//!
//! `A` is `n×n`; each right-hand side is `n×1`. The solo loop re-reads
//! all of `A` per product (memory-bound Level-2); the multi-RHS entry
//! packs each `A` panel once and streams the column-stacked batch
//! through the GEMM microkernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laab_dense::gen::OperandGen;
use laab_dense::Matrix;
use laab_kernels::{matmul_dispatch, matmul_multi_rhs, Trans};

fn bench(c: &mut Criterion) {
    let n = laab_bench::bench_n();
    let mut g = OperandGen::new(11);
    let a = g.matrix::<f64>(n, n);
    let parts: Vec<Matrix<f64>> = (0..32).map(|_| g.matrix::<f64>(n, 1)).collect();
    let refs: Vec<&Matrix<f64>> = parts.iter().collect();

    let mut group = c.benchmark_group(format!("gemm_multi_rhs/n{n}"));
    for &q in &[1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("solo_gemv_loop", q), &q, |bch, &q| {
            bch.iter(|| {
                for b in &refs[..q] {
                    std::hint::black_box(matmul_dispatch(1.0, &a, Trans::No, b, Trans::No));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("multi_rhs", q), &q, |bch, &q| {
            bch.iter(|| std::hint::black_box(matmul_multi_rhs(1.0, &a, Trans::No, &refs[..q])));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
