//! Table I — raw GEMM vs Eager vs Graph for `AᵀB` and `(AᵀB)ᵀ(AᵀB)`.
//!
//! Expected shape: all three back-ends tie on `AᵀB`; on the CSE expression
//! eager costs ≈ 1.5× graph (3 GEMMs vs 2).

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_env;
use laab_expr::var;
use laab_framework::{lower::eager_eval_expr, Framework};
use laab_kernels::{matmul, Trans};

fn bench(c: &mut Criterion) {
    let (n, env, ctx) = bench_env();
    let a = env.expect("A").clone();
    let b = env.expect("B").clone();
    let s = var("A").t() * var("B");
    let e2 = s.t() * s.clone();
    let flow = Framework::flow();

    let mut group = c.benchmark_group(format!("table1/n{n}"));
    group.bench_function("AtB/mkl_c", |bch| bch.iter(|| matmul(&a, Trans::Yes, &b, Trans::No)));
    group.bench_function("AtB/eager", |bch| bch.iter(|| eager_eval_expr(&s, &env)));
    let f_s = flow.function_from_expr(&s, &ctx);
    group.bench_function("AtB/graph", |bch| bch.iter(|| f_s.call(&env)));

    group.bench_function("E2/eager", |bch| bch.iter(|| eager_eval_expr(&e2, &env)));
    let f_e2 = flow.function_from_expr(&e2, &ctx);
    group.bench_function("E2/graph", |bch| bch.iter(|| f_e2.call(&env)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
