//! Table II — the four CSE test expressions in graph mode.
//!
//! Expected shape: `S ≈ E1`, `E2 ≈ 2×S`, `E3 ≈ 3×S`.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_env;
use laab_core::experiments::table2::rows;
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let (n, env, ctx) = bench_env();
    let flow = Framework::flow();
    let mut group = c.benchmark_group(format!("table2/n{n}"));
    for (i, (_label, expr, gemms)) in rows().into_iter().enumerate() {
        let f = flow.function_from_expr(&expr, &ctx);
        group.bench_function(format!("row{}_gemms{}", i + 1, gemms), |b| b.iter(|| f.call(&env)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
