//! Table III — matrix-chain evaluation: unparenthesized vs explicit vs
//! `multi_dot`.
//!
//! Expected shape: unparenthesized `HᵀHx` and `HᵀyxᵀH` are O(n³);
//! their explicit/multi_dot forms are O(n²). `yᵀHᵀH` is already optimal
//! left-to-right.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_env;
use laab_dense::Matrix;
use laab_expr::var;
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let (n, env, ctx) = bench_env();
    let flow = Framework::flow();
    let (h, x, y) = (var("H"), var("x"), var("y"));

    let cases = vec![
        ("HtHx_matmul", h.t() * h.clone() * x.clone()),
        ("HtHx_explicit", h.t() * (h.clone() * x.clone())),
        ("ytHtH_matmul", y.t() * h.t() * h.clone()),
        ("ytHtH_explicit", (y.t() * h.t()) * h.clone()),
        ("HtyxtH_matmul", h.t() * y.clone() * x.t() * h.clone()),
        ("HtyxtH_explicit", (h.t() * y.clone()) * (x.t() * h.clone())),
    ];

    let mut group = c.benchmark_group(format!("table3/n{n}"));
    for (label, expr) in cases {
        let f = flow.function_from_expr(&expr, &ctx);
        group.bench_function(label, |b| b.iter(|| f.call(&env)));
    }

    // multi_dot over the eager API (Torch profile).
    let torch = Framework::torch();
    let hm = env.expect("H").clone();
    let ht: Matrix<f32> = hm.transpose();
    let xm = env.expect("x").clone();
    group.bench_function("HtHx_multi_dot", |b| b.iter(|| laab_chain::multi_dot(&[&ht, &hm, &xm])));
    let _ = torch;
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
