//! Table IV — structured products: hand-coded kernels vs framework matmul
//! vs the specialized/aware paths.
//!
//! Expected shape: TRMM and SYRK at ≈ half the GEMM time; the tridiagonal
//! and diagonal products orders of magnitude below GEMM; `Flow optim`
//! (fused tridiagonal) at or below the SCAL sequence.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_n;
use laab_core::baselines::{diag_scal_sequence, tridiag_scal_sequence};
use laab_core::workloads::structured;
use laab_core::ExperimentConfig;
use laab_expr::var;
use laab_framework::Framework;
use laab_kernels::{matmul, syrk, trmm, Trans, UpLo};
use laab_rewrite::aware_eval;

fn bench(c: &mut Criterion) {
    let n = bench_n();
    let cfg = ExperimentConfig { n, ..Default::default() };
    let w = structured(&cfg);
    let a = w.env.expect("A").clone();
    let b = w.env.expect("B").clone();
    let l = w.env.expect("L").clone();
    let flow = Framework::flow();

    let mut group = c.benchmark_group(format!("table4/n{n}"));
    group.bench_function("AB/gemm", |bch| bch.iter(|| matmul(&a, Trans::No, &b, Trans::No)));
    group.bench_function("LB/trmm", |bch| bch.iter(|| trmm(1.0f32, &l, UpLo::Lower, &b)));
    group.bench_function("LB/gemm", |bch| bch.iter(|| matmul(&l, Trans::No, &b, Trans::No)));
    group.bench_function("AAt/syrk", |bch| bch.iter(|| syrk(1.0f32, &a)));
    group.bench_function("AAt/gemm", |bch| bch.iter(|| matmul(&a, Trans::No, &a, Trans::Yes)));
    group.bench_function("TB/scal_seq", |bch| bch.iter(|| tridiag_scal_sequence(&w.tri, &b)));
    let bt = flow.tensor(b.clone());
    group.bench_function("TB/tridiagonal_matmul", |bch| {
        bch.iter(|| flow.tridiagonal_matmul(&w.tri, &bt))
    });
    let t_dense = w.env.expect("T").clone();
    group.bench_function("TB/gemm", |bch| bch.iter(|| matmul(&t_dense, Trans::No, &b, Trans::No)));
    group.bench_function("DB/scal_seq", |bch| bch.iter(|| diag_scal_sequence(&w.diag, &b)));
    let lb = var("L") * var("B");
    group.bench_function("LB/aware", |bch| bch.iter(|| aware_eval(&lb, &w.env, &w.ctx)));
    let tb = var("T") * var("B");
    group.bench_function("TB/aware", |bch| bch.iter(|| aware_eval(&tb, &w.env, &w.ctx)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
