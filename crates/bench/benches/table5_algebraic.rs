//! Table V — algebraic manipulations: both sides of Eq. 9, Eq. 10 and the
//! blocked Eq. 11, executed as written.
//!
//! Expected shape: Eq. 9 LHS ≈ 2× RHS; Eq. 10 RHS ≫ LHS; Eq. 11 LHS ≈ 2× RHS.

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_env;
use laab_core::workloads::blocked_env;
use laab_core::ExperimentConfig;
use laab_expr::{block_diag, var, vcat};
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let (n, env, ctx) = bench_env();
    let flow = Framework::flow();
    let mut group = c.benchmark_group(format!("table5/n{n}"));

    let cases = vec![
        ("eq9_lhs", var("A") * var("B") + var("A") * var("C")),
        ("eq9_rhs", var("A") * (var("B") + var("C"))),
        ("eq10_lhs", var("A") * var("x") - var("H").t() * (var("H") * var("x"))),
        ("eq10_rhs", (var("A") - var("H").t() * var("H")) * var("x")),
    ];
    for (label, expr) in cases {
        let f = flow.function_from_expr(&expr, &ctx);
        group.bench_function(label, |b| b.iter(|| f.call(&env)));
    }

    let cfg = ExperimentConfig { n, ..Default::default() };
    let (benv, bctx) = blocked_env(&cfg);
    let eq11_lhs = block_diag(var("A1"), var("A2")) * vcat(var("B1"), var("B2"));
    let eq11_rhs = vcat(var("A1") * var("B1"), var("A2") * var("B2"));
    let fl = flow.function_from_expr(&eq11_lhs, &bctx);
    let fr = flow.function_from_expr(&eq11_rhs, &bctx);
    group.bench_function("eq11_lhs", |b| b.iter(|| fl.call(&benv)));
    group.bench_function("eq11_rhs", |b| b.iter(|| fr.call(&benv)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
