//! Table VI — code motion: the unrolled loop (naive vs hoisted) and
//! partial operand access (naive vs recommended).
//!
//! Expected shape: loop naive == loop recommended (LICM works via CSE);
//! partial access naive ≫ recommended (no slicing push-down).

use criterion::{criterion_group, criterion_main, Criterion};
use laab_bench::bench_n;
use laab_core::workloads::loop_env;
use laab_core::ExperimentConfig;
use laab_expr::{elem, var};
use laab_framework::Framework;

fn bench(c: &mut Criterion) {
    let n = bench_n();
    let cfg = ExperimentConfig { n, ..Default::default() };
    let env = loop_env(&cfg);
    let ctx = laab_core::workloads::square_ctx(&cfg);
    let flow = Framework::flow();
    let mut group = c.benchmark_group(format!("table6/n{n}"));

    let f_naive = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let mut outs = Vec::new();
        for i in 0..3 {
            let ab = fb.matmul(a, b);
            let v = fb.input(&format!("v{i}"), n, 1);
            let vt = fb.t(v);
            let outer = fb.matmul(v, vt);
            outs.push(fb.add(ab, outer));
        }
        outs
    });
    let f_reco = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let tmp = fb.matmul(a, b);
        let mut outs = Vec::new();
        for i in 0..3 {
            let v = fb.input(&format!("v{i}"), n, 1);
            let vt = fb.t(v);
            let outer = fb.matmul(v, vt);
            outs.push(fb.add(tmp, outer));
        }
        outs
    });
    group.bench_function("loop_naive", |b| b.iter(|| f_naive.call(&env)));
    group.bench_function("loop_reco", |b| b.iter(|| f_reco.call(&env)));

    let cases = vec![
        ("partial_sum_naive", elem(var("A") + var("B"), 2, 2)),
        ("partial_sum_reco", elem(var("A"), 2, 2) + elem(var("B"), 2, 2)),
        ("partial_prod_naive", elem(var("A") * var("B"), 2, 2)),
        ("partial_prod_reco", var("A").row(2) * var("B").col(2)),
    ];
    for (label, expr) in cases {
        let f = flow.function_from_expr(&expr, &ctx);
        group.bench_function(label, |b| b.iter(|| f.call(&env)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
