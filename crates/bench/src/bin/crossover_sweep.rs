//! Sweep the problem size and chart how the paper's gaps grow with n.
//!
//! The O(n³)-vs-O(n²) findings (chains, structured products, partial
//! access) have gaps that scale linearly in n, while the O(n³)-vs-O(n³)
//! findings (CSE, distributivity Eq. 9) have constant ratios. This sweep
//! makes that visible, printing one CSV-ish row per size:
//!
//! ```text
//! cargo run --release -p laab-bench --bin crossover_sweep -- [--sizes 128,256,512] [--reps 10]
//! ```

use laab_core::workloads::{square_ctx, square_env};
use laab_core::ExperimentConfig;
use laab_expr::var;
use laab_framework::Framework;
use laab_stats::{time_reps, TimingConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![96, 192, 384, 768]);
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let cfg_t = TimingConfig { reps, warmup: 2 };

    println!("# ratio of unoptimized/optimized time per finding, by n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "n", "chain(n/2~)", "cse(2.0)", "eq9(2.0)", "partial(n²/~)"
    );
    for n in sizes {
        let cfg =
            ExperimentConfig { n, timing: cfg_t, check_numerics: false, ..Default::default() };
        let env = square_env(&cfg);
        let ctx = square_ctx(&cfg);
        let flow = Framework::flow();

        // O(n) gap: chain association.
        let f_bad = flow.function_from_expr(&(var("H").t() * var("H") * var("x")), &ctx);
        let f_good = flow.function_from_expr(&(var("H").t() * (var("H") * var("x"))), &ctx);
        let chain = time_reps(cfg_t, || f_bad.call(&env)).min()
            / time_reps(cfg_t, || f_good.call(&env)).min();

        // Constant gap: CSE (E2 vs S).
        let s = var("A").t() * var("B");
        let f_s = flow.function_from_expr(&s, &ctx);
        let f_e2 = flow.function_from_expr(&(s.t() * s.clone()), &ctx);
        let cse =
            time_reps(cfg_t, || f_e2.call(&env)).min() / time_reps(cfg_t, || f_s.call(&env)).min();

        // Constant gap: distributivity Eq 9.
        let f_l = flow.function_from_expr(&(var("A") * var("B") + var("A") * var("C")), &ctx);
        let f_r = flow.function_from_expr(&(var("A") * (var("B") + var("C"))), &ctx);
        let eq9 =
            time_reps(cfg_t, || f_l.call(&env)).min() / time_reps(cfg_t, || f_r.call(&env)).min();

        // O(n²)-ish gap: partial sum access.
        let f_pn = flow.function_from_expr(&laab_expr::elem(var("A") + var("B"), 2, 2), &ctx);
        let f_pr = flow.function_from_expr(
            &(laab_expr::elem(var("A"), 2, 2) + laab_expr::elem(var("B"), 2, 2)),
            &ctx,
        );
        let partial =
            time_reps(cfg_t, || f_pn.call(&env)).min() / time_reps(cfg_t, || f_pr.call(&env)).min();

        println!("{n:>6} {chain:>14.1} {cse:>14.2} {eq9:>14.2} {partial:>14.0}");
    }
    println!("\nexpected: column 1 and 4 grow with n; columns 2 and 3 sit near 2.0 at every n.");
}
