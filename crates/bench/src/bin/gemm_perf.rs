use laab_dense::gen::OperandGen;
use laab_kernels::{matmul, Trans};
use std::time::Instant;

fn main() {
    for &n in &[256usize, 512, 768] {
        let mut g = OperandGen::new(1);
        let a = g.matrix::<f32>(n, n);
        let b = g.matrix::<f32>(n, n);
        let _ = matmul(&a, Trans::No, &b, Trans::No); // warmup
        let reps = if n <= 256 { 5 } else { 3 };
        let t0 = Instant::now();
        for _ in 0..reps {
            let c = matmul(&a, Trans::No, &b, Trans::No);
            std::hint::black_box(&c);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let gflops = 2.0 * (n as f64).powi(3) / dt / 1e9;
        println!("n={n}: {:.1} ms  {gflops:.2} GFLOP/s", dt * 1e3);
    }
}
