//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p laab-bench --bin paper_tables -- [--n N] [--reps R] \
//!     [--experiment ID]... [--markdown PATH] [--threads T]
//! ```
//!
//! With no arguments: all experiments at n = 512, min of 20 repetitions,
//! single-threaded (the paper's protocol), printed as plain-text tables.

use std::io::Write;

use laab_core::{experiments, ExperimentConfig, ExperimentResult};
use laab_stats::TimingConfig;

struct Args {
    n: usize,
    reps: usize,
    ids: Vec<String>,
    markdown: Option<String>,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args { n: 512, reps: 20, ids: Vec::new(), markdown: None, threads: 1 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => args.n = it.next().expect("--n N").parse().expect("invalid --n"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("invalid --reps"),
            "--experiment" => args.ids.push(it.next().expect("--experiment ID")),
            "--markdown" => args.markdown = Some(it.next().expect("--markdown PATH")),
            "--threads" => {
                args.threads = it.next().expect("--threads T").parse().expect("invalid --threads")
            }
            "--help" | "-h" => {
                eprintln!(
                    "paper_tables: regenerate the paper's evaluation tables\n\
                     \n  --n N            problem size (default 512; paper used 3000)\
                     \n  --reps R         timing repetitions (default 20, as in the paper)\
                     \n  --experiment ID  run only this experiment (fig1, table1..table6, fig6, fig7, ext_solve);\
                     \n                   repeatable\
                     \n  --markdown PATH  additionally write results as markdown\
                     \n  --threads T      kernel threads (default 1, the paper's setting)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    laab_kernels::set_num_threads(args.threads);
    let cfg = ExperimentConfig {
        n: args.n,
        timing: TimingConfig { reps: args.reps, warmup: 2 },
        ..Default::default()
    };

    println!(
        "LAAB paper tables — n = {}, min of {} repetitions, {} thread(s)\n",
        cfg.n, cfg.timing.reps, args.threads
    );

    type Runner = fn(&ExperimentConfig) -> ExperimentResult;
    let all: Vec<(&str, Runner)> = vec![
        ("fig1", experiments::fig1 as Runner),
        ("table1", experiments::table1),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
        ("fig7", experiments::fig7),
        ("table4", experiments::table4),
        ("table5", experiments::table5),
        ("fig6", experiments::fig6),
        ("table6", experiments::table6),
        ("ext_solve", experiments::ext_solve),
    ];

    let selected: Vec<&(&str, Runner)> = if args.ids.is_empty() {
        all.iter().collect()
    } else {
        all.iter().filter(|(id, _)| args.ids.iter().any(|w| w == id)).collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matched {:?}", args.ids);
        std::process::exit(2);
    }

    let mut md = String::from("# LAAB measured results\n\n");
    md.push_str(&format!(
        "Configuration: n = {}, min of {} repetitions, {} thread(s).\n\n",
        cfg.n, cfg.timing.reps, args.threads
    ));
    let mut failed = 0usize;
    for (id, run) in selected {
        let t0 = std::time::Instant::now();
        let result = run(&cfg);
        println!("{}", result.table);
        println!("{}", result.analysis);
        println!("Findings:");
        for c in &result.checks {
            println!("  [{}] {} — {}", if c.passed { "ok" } else { "!!" }, c.name, c.detail);
            if !c.passed {
                failed += 1;
            }
        }
        println!("  ({} finished in {:.1} s)\n", id, t0.elapsed().as_secs_f64());
        md.push_str(&result.to_markdown());
        md.push('\n');
    }

    if let Some(path) = args.markdown {
        let mut f = std::fs::File::create(&path).expect("cannot create markdown file");
        f.write_all(md.as_bytes()).expect("cannot write markdown file");
        println!("markdown written to {path}");
    }
    if failed > 0 {
        println!("{failed} finding(s) did NOT reproduce — see [!!] lines above");
        std::process::exit(1);
    }
    println!("all paper findings reproduced.");
}
