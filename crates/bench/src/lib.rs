//! # laab-bench — benchmark harness utilities
//!
//! Shared plumbing for the Criterion benches (one per paper table/figure)
//! and the `paper_tables` binary that regenerates the full evaluation
//! section in the paper's own format.
//!
//! Criterion benches run at a laptop-friendly default size; set
//! `LAAB_BENCH_N` to change it (e.g. `LAAB_BENCH_N=1024 cargo bench`).
//! The `paper_tables` binary accepts `--n`, `--reps` and `--experiment`
//! flags — see `cargo run --release -p laab-bench --bin paper_tables -- --help`.

#![deny(missing_docs)]

use laab_expr::eval::Env;
use laab_expr::Context;

/// Benchmark problem size: `LAAB_BENCH_N` or the default (256 — large
/// enough that GEMM dominates dispatch overhead, small enough that a full
/// `cargo bench` sweep finishes in minutes on one core).
pub fn bench_n() -> usize {
    std::env::var("LAAB_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// The standard square workload at [`bench_n`], plus its context.
pub fn bench_env() -> (usize, Env<f32>, Context) {
    let n = bench_n();
    let cfg = laab_core::ExperimentConfig { n, ..Default::default() };
    (n, laab_core::workloads::square_env(&cfg), laab_core::workloads::square_ctx(&cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_env_is_consistent() {
        let (n, env, ctx) = bench_env();
        assert_eq!(env.expect("A").shape(), (n, n));
        assert_eq!(ctx.expect("x").shape.rows, n);
    }
}
