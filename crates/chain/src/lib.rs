//! # laab-chain — matrix-chain parenthesization
//!
//! Experiment 2 of the paper: a product `A₁A₂…Aₘ` can be evaluated in
//! `Cₘ₋₁` (Catalan) different orders whose FLOP counts differ by orders of
//! magnitude, yet TF/PyT always evaluate left-to-right. This crate is the
//! optimization they are missing, plus the machinery to *demonstrate* that
//! they are missing it:
//!
//! * [`ParenTree`] — a parenthesization, convertible to an [`Expr`](laab_expr::Expr)
//!   product tree and costable against any dimension vector.
//! * [`optimal_parenthesization`] — the classic O(m³) dynamic program
//!   (what `torch.linalg.multi_dot` runs).
//! * [`enumerate_parenthesizations`] — all Catalan trees, used to
//!   regenerate the paper's Fig. 7 (the five orders of a 4-chain with
//!   their FLOP formulas) and to property-test DP optimality.
//! * [`multi_dot`] — executes a chain in the optimal order over
//!   `laab-kernels`, the `torch.linalg.multi_dot` analogue that the
//!   `Torch` framework profile exposes.

#![deny(missing_docs)]

mod multi_dot;
mod paren;

pub use multi_dot::{multi_dot, multi_dot_order};
pub use paren::{
    chain_dims, enumerate_parenthesizations, left_to_right, optimal_parenthesization,
    right_to_left, ParenTree,
};
