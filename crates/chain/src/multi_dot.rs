//! The `torch.linalg.multi_dot` analogue.

use laab_dense::{Matrix, Scalar};
use laab_kernels::{matmul_dispatch, Trans};

use crate::paren::{optimal_parenthesization, ParenTree};

/// The evaluation order `multi_dot` would use for these factor shapes
/// (exposed so callers can inspect/report it, as the paper's Fig. 5
/// discussion does).
pub fn multi_dot_order<T: Scalar>(mats: &[&Matrix<T>]) -> (u64, ParenTree) {
    assert!(!mats.is_empty(), "multi_dot of zero factors");
    let mut dims = Vec::with_capacity(mats.len() + 1);
    dims.push(mats[0].rows());
    for (i, m) in mats.iter().enumerate() {
        if i > 0 {
            assert_eq!(
                mats[i - 1].cols(),
                m.rows(),
                "multi_dot: factor {i} has {} rows, expected {}",
                m.rows(),
                mats[i - 1].cols()
            );
        }
        dims.push(m.cols());
    }
    optimal_parenthesization(&dims)
}

/// Evaluate the chain product `mats[0] · mats[1] · … · mats[m−1]` in the
/// FLOP-optimal order (dynamic programming), dispatching each intermediate
/// product to the cheapest kernel for its shape.
///
/// This is what `torch.linalg.multi_dot` does and what the `Torch` profile
/// of `laab-framework` exposes; TF has no equivalent (Table III's "-"
/// entries).
pub fn multi_dot<T: Scalar>(mats: &[&Matrix<T>]) -> Matrix<T> {
    let (_, tree) = multi_dot_order(mats);
    eval_tree(&tree, mats)
}

fn eval_tree<T: Scalar>(tree: &ParenTree, mats: &[&Matrix<T>]) -> Matrix<T> {
    match tree {
        ParenTree::Leaf(i) => mats[*i].clone(),
        ParenTree::Node(l, r) => {
            // Leaves feed the kernel directly (no clone); only internal
            // results materialize.
            let lv;
            let lref: &Matrix<T> = match &**l {
                ParenTree::Leaf(i) => mats[*i],
                node => {
                    lv = eval_tree(node, mats);
                    &lv
                }
            };
            let rv;
            let rref: &Matrix<T> = match &**r {
                ParenTree::Leaf(i) => mats[*i],
                node => {
                    rv = eval_tree(node, mats);
                    &rv
                }
            };
            matmul_dispatch(T::ONE, lref, Trans::No, rref, Trans::No)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;
    use laab_kernels::counters::{self, Kernel};
    use laab_kernels::reference;

    fn naive_chain(mats: &[&Matrix<f64>]) -> Matrix<f64> {
        let mut acc = mats[0].clone();
        for m in &mats[1..] {
            let c0 = Matrix::zeros(acc.rows(), m.cols());
            acc = reference::gemm_naive(1.0, &acc, Trans::No, m, Trans::No, 0.0, &c0);
        }
        acc
    }

    #[test]
    fn value_matches_left_to_right_reference() {
        let mut g = OperandGen::new(55);
        let a = g.matrix::<f64>(7, 9);
        let b = g.matrix::<f64>(9, 3);
        let c = g.matrix::<f64>(3, 11);
        let d = g.matrix::<f64>(11, 5);
        let mats = [&a, &b, &c, &d];
        let got = multi_dot(&mats);
        assert!(got.approx_eq(&naive_chain(&mats), 1e-12));
    }

    #[test]
    fn vector_chain_avoids_gemm() {
        // HᵀHx as multi_dot: the optimal order is two GEMVs (Table III).
        let n = 32;
        let mut g = OperandGen::new(56);
        let h = g.matrix::<f64>(n, n);
        let ht = h.transpose();
        let x = g.col_vector::<f64>(n);
        counters::reset();
        let r = multi_dot(&[&ht, &h, &x]);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 0, "optimal order never runs a GEMM");
        assert_eq!(s.calls(Kernel::Gemv), 2);
        assert!(r.approx_eq(&naive_chain(&[&ht, &h, &x]), 1e-12));
    }

    #[test]
    fn mixed_chain_uses_outer_product_order() {
        // Hᵀ y xᵀ H — optimal is (Hᵀy)(xᵀH) (the paper's Expression 7).
        let n = 16;
        let mut g = OperandGen::new(57);
        let ht = g.matrix::<f64>(n, n);
        let y = g.col_vector::<f64>(n);
        let xt = g.row_vector::<f64>(n);
        let h = g.matrix::<f64>(n, n);
        let (cost, tree) = multi_dot_order(&[&ht, &y, &xt, &h]);
        assert_eq!(tree.render(), "((A0 A1) (A2 A3))");
        assert_eq!(cost, 6 * (n as u64) * (n as u64));
        let r = multi_dot(&[&ht, &y, &xt, &h]);
        assert!(r.approx_eq(&naive_chain(&[&ht, &y, &xt, &h]), 1e-12));
    }

    #[test]
    fn single_factor_is_identity_operation() {
        let mut g = OperandGen::new(58);
        let a = g.matrix::<f64>(4, 6);
        assert_eq!(multi_dot(&[&a]), a);
    }

    #[test]
    #[should_panic(expected = "factor 1 has")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 4);
        let b = Matrix::<f64>::zeros(5, 6);
        let _ = multi_dot(&[&a, &b]);
    }
}
