//! Parenthesization trees, their costs, enumeration, and the DP optimum.

use laab_expr::{Context, Expr};

/// A parenthesization of the chain `A₀A₁…Aₘ₋₁`.
///
/// Leaves are factor indices; internal nodes are products. The in-order
/// traversal of leaves is always `0, 1, …, m−1` (matrix products cannot be
/// reordered, only re-associated).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParenTree {
    /// The `i`-th factor of the chain.
    Leaf(usize),
    /// The product of two sub-chains.
    Node(Box<ParenTree>, Box<ParenTree>),
}

impl ParenTree {
    /// Number of leaves (factors) under this tree.
    pub fn factors(&self) -> usize {
        match self {
            ParenTree::Leaf(_) => 1,
            ParenTree::Node(l, r) => l.factors() + r.factors(),
        }
    }

    /// `(first_dim, last_dim)` of the sub-chain, given the chain's dimension
    /// vector (`dims.len() == m + 1`; factor `i` has shape
    /// `dims[i] × dims[i+1]`).
    fn span(&self) -> (usize, usize) {
        match self {
            ParenTree::Leaf(i) => (*i, *i + 1),
            ParenTree::Node(l, r) => (l.span().0, r.span().1),
        }
    }

    /// FLOPs to evaluate the chain in this order: every product of an
    /// `a×b` by `b×c` intermediate costs `2abc` (the dense-kernel pricing
    /// used throughout the suite; with unit dimensions this collapses to
    /// the GEMV/DOT counts automatically).
    pub fn cost(&self, dims: &[usize]) -> u64 {
        match self {
            ParenTree::Leaf(_) => 0,
            ParenTree::Node(l, r) => {
                let (i, k) = l.span();
                let (_, j) = r.span();
                l.cost(dims) + r.cost(dims) + 2 * dims[i] as u64 * dims[k] as u64 * dims[j] as u64
            }
        }
    }

    /// Build the [`Expr`] product tree applying this parenthesization to
    /// the given factors.
    ///
    /// # Panics
    /// If the factor count differs from the leaf count.
    pub fn to_expr(&self, factors: &[Expr]) -> Expr {
        assert_eq!(
            self.factors(),
            factors.len(),
            "parenthesization is over {} factors, got {}",
            self.factors(),
            factors.len()
        );
        self.build(factors)
    }

    fn build(&self, factors: &[Expr]) -> Expr {
        match self {
            ParenTree::Leaf(i) => factors[*i].clone(),
            ParenTree::Node(l, r) => {
                Expr::Mul(Box::new(l.build(factors)), Box::new(r.build(factors)))
            }
        }
    }

    /// Render with explicit parentheses and generic factor names, e.g.
    /// `((A0 A1) A2)`.
    pub fn render(&self) -> String {
        match self {
            ParenTree::Leaf(i) => format!("A{i}"),
            ParenTree::Node(l, r) => format!("({} {})", l.render(), r.render()),
        }
    }
}

/// The left-to-right order `((A₀A₁)A₂)…` — the frameworks' default
/// (Experiment 2's finding).
pub fn left_to_right(m: usize) -> ParenTree {
    assert!(m >= 1);
    let mut t = ParenTree::Leaf(0);
    for i in 1..m {
        t = ParenTree::Node(Box::new(t), Box::new(ParenTree::Leaf(i)));
    }
    t
}

/// The right-to-left order `…(Aₘ₋₂(Aₘ₋₁))`.
pub fn right_to_left(m: usize) -> ParenTree {
    assert!(m >= 1);
    let mut t = ParenTree::Leaf(m - 1);
    for i in (0..m - 1).rev() {
        t = ParenTree::Node(Box::new(ParenTree::Leaf(i)), Box::new(t));
    }
    t
}

/// All `Cₘ₋₁` parenthesizations of an `m`-factor chain (Catalan many —
/// keep `m` small; the paper's Fig. 7 uses `m = 4`, giving 5).
pub fn enumerate_parenthesizations(m: usize) -> Vec<ParenTree> {
    assert!(m >= 1, "empty chain");
    assert!(m <= 12, "enumeration is Catalan-exponential; refusing m > 12");
    fn rec(lo: usize, hi: usize) -> Vec<ParenTree> {
        if hi - lo == 1 {
            return vec![ParenTree::Leaf(lo)];
        }
        let mut out = Vec::new();
        for split in lo + 1..hi {
            for l in rec(lo, split) {
                for r in rec(split, hi) {
                    out.push(ParenTree::Node(Box::new(l.clone()), Box::new(r)));
                }
            }
        }
        out
    }
    rec(0, m)
}

/// The classic O(m³) dynamic program: the minimum-FLOP parenthesization of
/// a chain with dimension vector `dims` (factor `i` is `dims[i]×dims[i+1]`).
/// Returns `(FLOPs, order)`.
pub fn optimal_parenthesization(dims: &[usize]) -> (u64, ParenTree) {
    let m = dims.len().checked_sub(1).expect("dims must have length m+1 >= 2");
    assert!(m >= 1, "dims must describe at least one factor");
    if m == 1 {
        return (0, ParenTree::Leaf(0));
    }
    // cost[i][j]: min FLOPs for the subchain [i, j) (j exclusive).
    let mut cost = vec![vec![0u64; m + 1]; m];
    let mut split = vec![vec![0usize; m + 1]; m];
    for len in 2..=m {
        for i in 0..=m - len {
            let j = i + len;
            let mut best = u64::MAX;
            let mut best_k = i + 1;
            for k in i + 1..j {
                let c =
                    cost[i][k] + cost[k][j] + 2 * dims[i] as u64 * dims[k] as u64 * dims[j] as u64;
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }
    fn build(split: &[Vec<usize>], i: usize, j: usize) -> ParenTree {
        if j - i == 1 {
            ParenTree::Leaf(i)
        } else {
            let k = split[i][j];
            ParenTree::Node(Box::new(build(split, i, k)), Box::new(build(split, k, j)))
        }
    }
    (cost[0][m], build(&split, 0, m))
}

/// Dimension vector of a product chain written as an [`Expr`]: flattens the
/// product tree into factors and reads their shapes from `ctx`. Returns
/// `None` when the expression is not a plain product of ≥ 2 factors.
pub fn chain_dims(expr: &Expr, ctx: &Context) -> Option<Vec<usize>> {
    let factors = expr.product_factors();
    if factors.len() < 2 {
        return None;
    }
    let mut dims = Vec::with_capacity(factors.len() + 1);
    for (i, f) in factors.iter().enumerate() {
        let s = f.try_shape(ctx).ok()?;
        if i == 0 {
            dims.push(s.rows);
        }
        dims.push(s.cols);
    }
    Some(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::var;

    /// Catalan numbers C₀..C₅ = 1, 1, 2, 5, 14, 42.
    #[test]
    fn enumeration_counts_are_catalan() {
        for (m, want) in [(1, 1), (2, 1), (3, 2), (4, 5), (5, 14), (6, 42)] {
            assert_eq!(enumerate_parenthesizations(m).len(), want, "m = {m}");
        }
    }

    #[test]
    fn dp_matches_brute_force() {
        // Deterministic pseudo-random dimension vectors.
        let mut state = 0x9E37u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 40 + 1) as usize
        };
        for m in 2..=6 {
            for _ in 0..20 {
                let dims: Vec<usize> = (0..=m).map(|_| next()).collect();
                let (dp_cost, dp_tree) = optimal_parenthesization(&dims);
                assert_eq!(dp_tree.cost(&dims), dp_cost, "tree cost consistent");
                let brute = enumerate_parenthesizations(m)
                    .into_iter()
                    .map(|t| t.cost(&dims))
                    .min()
                    .unwrap();
                assert_eq!(dp_cost, brute, "dims = {dims:?}");
            }
        }
    }

    #[test]
    fn paper_right_to_left_case() {
        // HᵀHx with n = 3000: dims [n, n, n, 1].
        let n = 3000;
        let dims = [n, n, n, 1];
        let (cost, tree) = optimal_parenthesization(&dims);
        assert_eq!(tree, right_to_left(3));
        // 2n² + 2n² FLOPs, as the paper states for Expression 5.
        assert_eq!(cost, 4 * (n as u64) * (n as u64));
        let ltr = left_to_right(3).cost(&dims);
        assert_eq!(ltr, 2 * (n as u64).pow(3) + 2 * (n as u64).pow(2));
    }

    #[test]
    fn paper_left_to_right_case() {
        // yᵀHᵀH: dims [1, n, n, n] — optimum is left-to-right.
        let n = 3000;
        let dims = [1, n, n, n];
        let (cost, tree) = optimal_parenthesization(&dims);
        assert_eq!(tree, left_to_right(3));
        assert_eq!(cost, 4 * (n as u64) * (n as u64));
    }

    #[test]
    fn paper_mixed_case() {
        // Hᵀ y xᵀ H: dims [n, n, 1, n, n] — optimum is (Hᵀy)(xᵀH).
        let n = 3000;
        let dims = [n, n, 1, n, n];
        let (cost, tree) = optimal_parenthesization(&dims);
        let want = ParenTree::Node(
            Box::new(ParenTree::Node(Box::new(ParenTree::Leaf(0)), Box::new(ParenTree::Leaf(1)))),
            Box::new(ParenTree::Node(Box::new(ParenTree::Leaf(2)), Box::new(ParenTree::Leaf(3)))),
        );
        assert_eq!(tree, want);
        // 2n² (Hᵀy) + 2n² (xᵀH) + 2n² (outer product) = 6n².
        assert_eq!(cost, 6 * (n as u64) * (n as u64));
    }

    #[test]
    fn to_expr_preserves_factor_order() {
        let t = right_to_left(3);
        let e = t.to_expr(&[var("A"), var("B"), var("x")]);
        assert_eq!(e.to_string(), "A (B x)");
        let l = left_to_right(3).to_expr(&[var("A"), var("B"), var("x")]);
        assert_eq!(l.to_string(), "A B x");
    }

    #[test]
    fn render_shows_parens() {
        assert_eq!(left_to_right(3).render(), "((A0 A1) A2)");
        assert_eq!(right_to_left(3).render(), "(A0 (A1 A2))");
    }

    #[test]
    fn chain_dims_reads_context() {
        let ctx = laab_expr::Context::new().with("A", 3, 4).with("B", 4, 5).with("x", 5, 1);
        let e = var("A") * var("B") * var("x");
        assert_eq!(chain_dims(&e, &ctx), Some(vec![3, 4, 5, 1]));
        assert_eq!(chain_dims(&var("A"), &ctx), None);
        // Transposed factors are opaque (their shape is still read).
        let e2 = var("B").t() * var("A").t();
        assert_eq!(chain_dims(&e2, &ctx), Some(vec![5, 4, 3]));
    }

    #[test]
    fn fig7_five_orders_of_a_4_chain() {
        // The paper's Fig. 7 lists the 5 parenthesizations of ABCD with
        // costs 2·(…) each; check our enumeration covers exactly the five
        // and that cost formulas match the figure's structure.
        let trees = enumerate_parenthesizations(4);
        assert_eq!(trees.len(), 5);
        let renders: Vec<String> = trees.iter().map(|t| t.render()).collect();
        for want in [
            "(((A0 A1) A2) A3)",
            "((A0 A1) (A2 A3))",
            "((A0 (A1 A2)) A3)",
            "(A0 ((A1 A2) A3))",
            "(A0 (A1 (A2 A3)))",
        ] {
            assert!(renders.contains(&want.to_string()), "missing {want}: {renders:?}");
        }
        // (AB)(CD) on dims [a,b,c,d,e]: 2abc + 2cde + 2ace.
        let dims = [2u64, 3, 4, 5, 6];
        let udims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
        let abcd = ParenTree::Node(
            Box::new(ParenTree::Node(Box::new(ParenTree::Leaf(0)), Box::new(ParenTree::Leaf(1)))),
            Box::new(ParenTree::Node(Box::new(ParenTree::Leaf(2)), Box::new(ParenTree::Leaf(3)))),
        );
        let want = 2 * dims[0] * dims[1] * dims[2]
            + 2 * dims[2] * dims[3] * dims[4]
            + 2 * dims[0] * dims[2] * dims[4];
        assert_eq!(abcd.cost(&udims), want);
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn enumeration_refuses_huge_chains() {
        let _ = enumerate_parenthesizations(13);
    }
}
