//! Hand-coded baselines: the paper's "MKL-C" and "SciPy BLAS" columns.
//!
//! These are what a domain expert writes when bypassing the frameworks —
//! direct calls into the kernel substrate, one call per mathematical step.
//! The SCAL-sequence implementations of the structured products follow the
//! paper's Experiment 3 exactly: the tridiagonal product "re-written as a
//! sequence of scaling operations (using the SCAL kernel) applied to every
//! row of B" — i.e. one kernel dispatch *per row*, which is precisely the
//! overhead TF's fused `tridiagonal_matmul` then beats.

use laab_dense::{Diagonal, Matrix, Scalar, Tridiagonal};
use laab_kernels::{axpy, scal};

/// Tridiagonal product `T·B` as the SciPy user writes it: for every output
/// row, copy + `SCAL` the central diagonal's contribution, then two `AXPY`
/// updates for the neighbours. `6n·m` FLOPs across `≈ 3n` kernel calls.
pub fn tridiag_scal_sequence<T: Scalar>(t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = t.n();
    assert_eq!(b.rows(), n, "tridiag_scal_sequence: dimension mismatch");
    let m = b.cols();
    let mut c = Matrix::zeros(n, m);
    for i in 0..n {
        // C[i,:] = main[i] * B[i,:]
        c.row_mut(i).copy_from_slice(b.row(i));
        scal(t.main[i], c.row_mut(i));
        // C[i,:] += sub[i-1] * B[i-1,:]
        if i > 0 {
            axpy(t.sub[i - 1], b.row(i - 1), c.row_mut(i));
        }
        // C[i,:] += sup[i] * B[i+1,:]
        if i + 1 < n {
            axpy(t.sup[i], b.row(i + 1), c.row_mut(i));
        }
    }
    c
}

/// Diagonal product `D·B` as a per-row `SCAL` sequence (`n` kernel calls,
/// `n·m` FLOPs).
pub fn diag_scal_sequence<T: Scalar>(d: &Diagonal<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = d.n();
    assert_eq!(b.rows(), n, "diag_scal_sequence: dimension mismatch");
    let mut c = b.clone();
    for i in 0..n {
        scal(d.d[i], c.row_mut(i));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;
    use laab_kernels::counters::{self, Kernel};
    use laab_kernels::reference;

    #[test]
    fn tridiag_scal_sequence_matches_reference() {
        let mut g = OperandGen::new(101);
        let t = g.tridiagonal::<f64>(20);
        let b = g.matrix::<f64>(20, 12);
        let got = tridiag_scal_sequence(&t, &b);
        assert!(got.approx_eq(&reference::tridiag_matmul_naive(&t, &b), 1e-13));
    }

    #[test]
    fn tridiag_sequence_issues_per_row_kernels() {
        let n = 16;
        let mut g = OperandGen::new(102);
        let t = g.tridiagonal::<f64>(n);
        let b = g.matrix::<f64>(n, n);
        let (_, c) = counters::measure(|| tridiag_scal_sequence(&t, &b));
        assert_eq!(c.calls(Kernel::Scal), n as u64);
        assert_eq!(c.calls(Kernel::Axpy), 2 * (n as u64 - 1));
        assert_eq!(c.calls(Kernel::Gemm), 0);
    }

    #[test]
    fn diag_scal_sequence_matches_reference() {
        let mut g = OperandGen::new(103);
        let d = g.diagonal::<f64>(15);
        let b = g.matrix::<f64>(15, 9);
        let got = diag_scal_sequence(&d, &b);
        assert!(got.approx_eq(&reference::diag_matmul_naive(&d, &b), 1e-14));
        let (_, c) = counters::measure(|| diag_scal_sequence(&d, &b));
        assert_eq!(c.calls(Kernel::Scal), 15);
    }
}
