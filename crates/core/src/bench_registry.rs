//! The registry of machine-readable benchmark reports this workspace
//! emits.
//!
//! Four harnesses produce `BENCH_*.json` artifacts that CI uploads per
//! PR; perf-trajectory tooling (and humans) discover them here instead of
//! grepping workflows. Each entry names the report's schema tag, the
//! artifact CI uploads, and the CLI invocation that regenerates it.
//! Crates owning a schema assert their tag against this table in tests,
//! so the registry cannot silently drift.

use crate::gemm_bench::GEMM_REPORT_SCHEMA;
use crate::runner::REPORT_SCHEMA;

/// One machine-readable benchmark report format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Registry name (matches the CLI subcommand).
    pub name: &'static str,
    /// Schema tag embedded in every document of this format.
    pub schema: &'static str,
    /// The artifact filename CI uploads.
    pub artifact: &'static str,
    /// CLI invocation that regenerates the artifact.
    pub command: &'static str,
    /// What the report measures.
    pub description: &'static str,
}

/// Schema tag of `laab-serve`'s report. Mirrored here (rather than
/// imported) because `laab-core` sits below `laab-serve` in the crate
/// graph; `laab-serve`'s tests assert the two constants stay equal.
/// `v7`: the `deferred` record — tape lengths, flush reasons, fused vs
/// unfused op counts, the modeled dispatch-vs-compute split per family,
/// the fusion-on/off A/B, and engine-vs-tape equivalence probe counts.
/// (`v6` added the optimizer A/B: `opt_levels`, `opt_families`,
/// cross-level probe counts, and the `saturation_budget_hits` e-graph
/// fallback count; `v5` the overload sweep through a bounded backlog
/// with request deadlines.)
pub const SERVE_SCHEMA: &str = "laab-serve-bench-v7";

/// Schema tag of `laab loadgen`'s client-side report. Mirrored for the
/// same reason as [`SERVE_SCHEMA`]; `laab-serve`'s tests hold the pair
/// equal. `v3`: trace replay — the arrival process can be
/// `replay:<file>` (recorded inter-arrival gaps), and the report names
/// the source trace and its gap percentiles. (`v2` added per-run
/// rejection classes (`busy`/`expired`/`failed`), retry counts,
/// pressure flushes, and offered-vs-goodput rates on top of v1's RTT
/// percentiles, queue delay, and bitwise mismatch count.)
pub const LOADGEN_SCHEMA: &str = "laab-loadgen-v3";

/// Every benchmark report format, in CLI order.
pub const BENCHES: [BenchSpec; 4] = [
    BenchSpec {
        name: "run",
        schema: REPORT_SCHEMA,
        artifact: "BENCH_smoke.json",
        command: "laab run --quick --json --out BENCH_smoke.json",
        description: "paper experiments: timing tables, kernel counts, finding checks",
    },
    BenchSpec {
        name: "bench",
        schema: GEMM_REPORT_SCHEMA,
        artifact: "BENCH_gemm.json",
        command: "laab bench --quick --out BENCH_gemm.json",
        description: "GEMM engine GFLOP/s trajectory vs the frozen seed kernel",
    },
    BenchSpec {
        name: "serve",
        schema: SERVE_SCHEMA,
        artifact: "BENCH_serve.json",
        command: "laab serve --smoke --opt egraph --backends engine,seed --out BENCH_serve.json",
        description:
            "plan-cache serving throughput + backend/optimizer A/B: per-backend req/s, p50/p99, \
             hit rate, egraph-vs-passes cost and latency",
    },
    BenchSpec {
        name: "loadgen",
        schema: LOADGEN_SCHEMA,
        artifact: "BENCH_loadgen.json",
        command: "laab loadgen --addr unix:/tmp/laab.sock --smoke --out BENCH_loadgen.json",
        description:
            "client-side serving latency over the socket: RTT p50/p99, queue delay, bitwise check",
    },
];

/// Look up a report format by registry name.
pub fn find(name: &str) -> Option<&'static BenchSpec> {
    BENCHES.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for spec in &BENCHES {
            let found = find(spec.name).expect("every entry resolves");
            assert_eq!(found, spec);
            assert!(spec.schema.starts_with("laab-"), "schema tag convention");
            assert!(spec.artifact.starts_with("BENCH_") && spec.artifact.ends_with(".json"));
            assert!(spec.command.contains(spec.name));
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn registry_matches_the_owning_crates() {
        assert_eq!(find("run").unwrap().schema, REPORT_SCHEMA);
        assert_eq!(find("bench").unwrap().schema, GEMM_REPORT_SCHEMA);
        // laab-serve's own test asserts SERVE_SCHEMA == SERVE_REPORT_SCHEMA
        // (the dependency points the other way).
    }
}
