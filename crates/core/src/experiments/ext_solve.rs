//! Extension experiment — property exploitation in linear-system solving.
//!
//! The paper's conclusion names "exploitation of properties in the solution
//! of linear systems" as the natural follow-up. This experiment runs the
//! Table IV methodology on `solve(A, x) : A·x = b`: the same system is
//! solved structure-blind (the frameworks' behaviour — always the general
//! LU path) and property-aware (`laab_rewrite::solve_aware`), for each
//! structure of `A`.
//!
//! Expected shape: triangular solves at O(n²·m) beat LU by the O(n) factor;
//! Cholesky halves the LU factorization FLOPs (n³/3 vs 2n³/3); diagonal and
//! orthogonal systems collapse to O(n·m) / one GEMM.

use laab_dense::gen::OperandGen;
use laab_dense::Matrix;
use laab_expr::Props;
use laab_kernels::counters::Kernel;
use laab_rewrite::{solve_aware, SolvePath};
use laab_stats::{fmt_secs, Table};

use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_ratio, check_slower, counted, describe_counts, time};

/// Run the solver-extension experiment.
pub fn ext_solve(cfg: &ExperimentConfig) -> ExperimentResult {
    let n = cfg.n;
    let mut g = OperandGen::new(cfg.seed.wrapping_add(11));
    let rhs = g.matrix::<f32>(n, 1);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    // Coefficient matrices, one per structure.
    let mut general = g.matrix::<f32>(n, n);
    for i in 0..n {
        general[(i, i)] += 4.0; // keep LU well-conditioned in f32
    }
    let mut lower = g.lower_triangular::<f32>(n);
    for i in 0..n {
        lower[(i, i)] = lower[(i, i)].abs() + 1.0;
    }
    let spd = g.spd::<f32>(n);
    let diag = g.diagonal::<f32>(n).to_dense();
    let ortho = g.orthogonal::<f32>(n);

    let mut table = Table::new(
        format!("Extension: solve(A, b) with property dispatch, n = {n}"),
        &["Structure of A", "blind (LU) [s]", "aware [s]", "aware path", "speedup"],
    );
    let mut analysis = Table::new(
        "Extension analysis: kernel traffic per path",
        &["Structure", "blind kernels", "aware kernels"],
    );

    let rows: Vec<(&str, &Matrix<f32>, Props, SolvePath)> = vec![
        ("general", &general, Props::NONE, SolvePath::Lu),
        ("lower triangular", &lower, Props::LOWER_TRIANGULAR, SolvePath::Triangular),
        ("SPD", &spd, Props::SPD, SolvePath::Cholesky),
        ("diagonal", &diag, Props::DIAGONAL, SolvePath::Diagonal),
        ("orthogonal", &ortho, Props::ORTHOGONAL, SolvePath::Orthogonal),
    ];

    let mut blind_times = Vec::new();
    let mut aware_times = Vec::new();
    for (label, a, props, want_path) in &rows {
        // Correctness: residual against the right-hand side.
        let ((x, path), aware_counts) =
            counted(|| solve_aware(*a, *props, &rhs).expect("solvable system"));
        let residual =
            laab_kernels::matmul(a, laab_kernels::Trans::No, &x, laab_kernels::Trans::No)
                .rel_dist(&rhs);
        checks.push(CheckOutcome {
            name: format!("{label}: aware path is {} with small residual", want_path.name()),
            passed: path == *want_path && residual < 5e-2,
            detail: format!("path {:?}, relative residual {residual:.2e}", path),
            timing: false,
        });
        let ((_, blind_path), blind_counts) =
            counted(|| solve_aware(*a, Props::NONE, &rhs).expect("solvable system"));
        checks.push(CheckOutcome {
            name: format!("{label}: structure-blind solve takes the LU path"),
            passed: blind_path == SolvePath::Lu,
            detail: format!("path {:?}", blind_path),
            timing: false,
        });

        let t_blind = time(cfg, || solve_aware(*a, Props::NONE, &rhs).unwrap());
        let t_aware = time(cfg, || solve_aware(*a, *props, &rhs).unwrap());
        table.push_row(vec![
            label.to_string(),
            fmt_secs(t_blind.min()),
            fmt_secs(t_aware.min()),
            want_path.name().to_string(),
            format!("{:.1}x", t_blind.min() / t_aware.min()),
        ]);
        analysis.push_row(vec![
            label.to_string(),
            describe_counts(&blind_counts),
            describe_counts(&aware_counts),
        ]);
        blind_times.push(t_blind);
        aware_times.push(t_aware);

        if *want_path == SolvePath::Cholesky {
            checks.push(CheckOutcome {
                name: "SPD: Cholesky factors at half the LU FLOPs".into(),
                passed: (2 * aware_counts.flops(Kernel::Potrf))
                    .abs_diff(blind_counts.flops(Kernel::Getrf))
                    <= 2,
                detail: format!(
                    "POTRF {} vs GETRF {}",
                    aware_counts.flops(Kernel::Potrf),
                    blind_counts.flops(Kernel::Getrf)
                ),
                timing: false,
            });
        }
    }

    // Timing shape: awareness never loses, and wins big on structure.
    check_ratio(
        &mut checks,
        "general: aware == blind (no structure to exploit)",
        &aware_times[0],
        &blind_times[0],
        0.8,
        1.25,
    );
    check_slower(
        &mut checks,
        "lower triangular: blind LU ≫ TRSM",
        &blind_times[1],
        &aware_times[1],
        2.0,
    );
    // Cholesky's trailing updates are short rows (half the row on average),
    // which vectorize worse than LU's full-row AXPYs; the 2× FLOP advantage
    // only dominates once n is large enough for the O(n³) term to swamp the
    // shared O(n²) solves. The FLOP halving itself is asserted exactly above.
    let spd_bound = if cfg.n >= 384 { 1.15 } else { 0.85 };
    check_slower(
        &mut checks,
        "SPD: blind LU not faster than Cholesky (FLOP halving shows at scale)",
        &blind_times[2],
        &aware_times[2],
        spd_bound,
    );
    check_slower(
        &mut checks,
        "diagonal: blind LU ≫ row scaling",
        &blind_times[3],
        &aware_times[3],
        10.0,
    );
    check_slower(
        &mut checks,
        "orthogonal: blind LU ≫ one transposed product",
        &blind_times[4],
        &aware_times[4],
        1.5,
    );
    table.note("the structure-blind column is what a framework without property knowledge pays (cf. Table IV for products)");

    ExperimentResult {
        id: "ext_solve".into(),
        title: "Extension: property-aware linear-system solving".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_solve_reproduces_expected_shape() {
        let cfg = ExperimentConfig::quick(96);
        let r = ext_solve(&cfg);
        assert_eq!(r.table.rows.len(), 5);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
