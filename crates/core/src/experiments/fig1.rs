//! Fig. 1 — the image-restoration expression in three algebraic variants.
//!
//! `y ← Hᵀy + (I − HᵀH)x` (variant 1, as the physics reads) is rewritten
//! via distributivity and associativity into variant 2
//! (`Hᵀy + x − Hᵀ(Hx)`) and variant 3 (`Hᵀ(y − Hx) + x`). Variant 1 pays
//! an O(n³) GEMM; variants 2 and 3 are three resp. two GEMVs. The
//! experiment reproduces the figure's timings and additionally reports what
//! the `laab-rewrite` engine finds when handed variant 1.

use laab_expr::eval::eval;
use laab_expr::{identity, var, Expr};
use laab_framework::Framework;
use laab_rewrite::{optimize_expr, CostKind};
use laab_stats::{fmt_secs, Table};

use crate::workloads::{square_ctx, square_env};
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_slower, check_value, counted, describe_counts, time};

/// The three variants of the paper's Fig. 1.
pub fn variants(n: usize) -> Vec<(&'static str, Expr)> {
    let (h, x, y) = (var("H"), var("x"), var("y"));
    vec![
        (
            "Variant 1: Hᵀy + (I − HᵀH)x",
            h.t() * y.clone() + (identity(n) - h.t() * h.clone()) * x.clone(),
        ),
        (
            "Variant 2: Hᵀy + x − Hᵀ(Hx)",
            h.t() * y.clone() + x.clone() - h.t() * (h.clone() * x.clone()),
        ),
        ("Variant 3: Hᵀ(y − Hx) + x", h.t() * (y.clone() - h.clone() * x.clone()) + x.clone()),
    ]
}

/// Run the Fig. 1 experiment.
pub fn fig1(cfg: &ExperimentConfig) -> ExperimentResult {
    let env = square_env(cfg);
    let ctx = square_ctx(cfg);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let mut table = Table::new(
        format!("Fig 1: Image-restoration variants (n = {})", cfg.n),
        &["Variant", "Flow graph [s]", "Torch graph [s]", "FLOPs (naive model)"],
    );
    let mut analysis = Table::new(
        "Fig 1 analysis: kernel traffic per variant (graph mode)",
        &["Variant", "Kernels"],
    );

    let flow = Framework::flow();
    let torch = Framework::torch();
    let oracle = eval(&variants(cfg.n)[0].1, &env);

    let mut sampled = Vec::new();
    for (label, expr) in variants(cfg.n) {
        let f_flow = flow.function_from_expr(&expr, &ctx);
        let f_torch = torch.function_from_expr(&expr, &ctx);
        let (out, counts) = counted(|| f_flow.call(&env));
        check_value(cfg, &mut checks, label, &out[0], &oracle);

        let t_flow = time(cfg, || f_flow.call(&env));
        let t_torch = time(cfg, || f_torch.call(&env));
        let flops = laab_expr::cost::naive_cost(&expr, &ctx);
        table.push_row(vec![
            label.to_string(),
            fmt_secs(t_flow.min()),
            fmt_secs(t_torch.min()),
            format!("{:.1} MFLOP", flops as f64 / 1e6),
        ]);
        analysis.push_row(vec![label.to_string(), describe_counts(&counts)]);
        sampled.push(t_flow);
    }

    // The paper's finding: variants 2 and 3 (no matrix-matrix product) are
    // significantly faster than variant 1.
    check_slower(
        &mut checks,
        "variant 1 ≫ variant 2 (GEMM vs GEMVs)",
        &sampled[0],
        &sampled[1],
        3.0,
    );
    check_slower(&mut checks, "variant 1 ≫ variant 3", &sampled[0], &sampled[2], 3.0);
    // Variant 3 does one fewer GEMV than variant 2.
    let r23 = sampled[1].min() / sampled[2].min();
    checks.push(CheckOutcome::ratio("variant 2 / variant 3 ≈ 3/2 GEMVs", r23, 0.95, 2.5));

    // What the rewriter finds from variant 1.
    let found = optimize_expr(&variants(cfg.n)[0].1, &ctx, CostKind::NaiveShared);
    table.note(format!(
        "laab-rewrite from variant 1: `{}` at {:.1} MFLOP (explored {} variants, {:.0}x fewer FLOPs)",
        found.best,
        found.best_cost as f64 / 1e6,
        found.explored,
        found.speedup()
    ));
    let v3_cost = laab_expr::cost::naive_cost(&variants(cfg.n)[2].1, &ctx);
    checks.push(CheckOutcome {
        name: "rewriter reaches variant-3 cost from variant 1".into(),
        passed: found.best_cost <= v3_cost,
        detail: format!("found {} vs variant-3 {}", found.best_cost, v3_cost),
        timing: false,
    });

    ExperimentResult {
        id: "fig1".into(),
        title: "Image restoration variants (Fig 1)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(96);
        let r = fig1(&cfg);
        assert_eq!(r.table.rows.len(), 3);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
