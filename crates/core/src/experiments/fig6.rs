//! Fig. 6 — same-FLOP variants with different instruction order.
//!
//! `(AB)(CD)` computed as `U := AB; V := CD; Y := UV` versus
//! `V := CD; U := AB; Y := UV`: identical FLOPs, different instruction
//! order — the paper's discussion point that equal FLOP counts do not
//! always imply equal execution time (memory/cache effects). On a single
//! socket with operands far larger than L2 the two orders should be
//! statistically indistinguishable; the experiment verifies exactly that
//! (and that the FLOP counts match to the last operation).

use laab_dense::gen::OperandGen;
use laab_expr::eval::Env;
use laab_framework::Framework;
use laab_stats::{fmt_secs, Table};

use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_indistinguishable, counted, describe_counts, time};

/// Run the Fig. 6 experiment.
pub fn fig6(cfg: &ExperimentConfig) -> ExperimentResult {
    let n = cfg.n;
    let mut g = OperandGen::new(cfg.seed.wrapping_add(6));
    let env = Env::<f32>::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("C", g.matrix(n, n))
        .with("D", g.matrix(n, n));
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let flow = Framework::flow();

    // Variant 1: U = A@B; V = C@D; Y = U@V (trace order fixes execution
    // order — the executor runs nodes in topological/trace order).
    let f1 = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let c = fb.input("C", n, n);
        let d = fb.input("D", n, n);
        let u = fb.matmul(a, b);
        let v = fb.matmul(c, d);
        vec![fb.matmul(u, v)]
    });
    // Variant 2: V first, then U.
    let f2 = flow.function(|fb| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let c = fb.input("C", n, n);
        let d = fb.input("D", n, n);
        let v = fb.matmul(c, d);
        let u = fb.matmul(a, b);
        vec![fb.matmul(u, v)]
    });

    let (o1, c1) = counted(|| f1.call(&env));
    let (o2, c2) = counted(|| f2.call(&env));
    checks.push(CheckOutcome {
        name: "identical kernel traffic in both orders".into(),
        passed: c1 == c2,
        detail: format!("v1: {}; v2: {}", c1.describe(), c2.describe()),
        timing: false,
    });
    checks.push(CheckOutcome {
        name: "identical results".into(),
        passed: o1[0].approx_eq(&o2[0], super::F32_TOL),
        detail: format!("relative distance {:.2e}", o1[0].rel_dist(&o2[0])),
        timing: false,
    });

    let t1 = time(cfg, || f1.call(&env));
    let t2 = time(cfg, || f2.call(&env));
    check_indistinguishable(
        cfg,
        &mut checks,
        "same FLOPs, different order: indistinguishable on one socket",
        &t1,
        &t2,
    );

    let mut table = Table::new(
        format!("Fig 6: instruction order for (AB)(CD), n = {}", cfg.n),
        &["Variant", "Order", "Flow [s]"],
    );
    table.push_row(vec!["Variant 1".into(), "U=AB; V=CD; Y=UV".into(), fmt_secs(t1.min())]);
    table.push_row(vec!["Variant 2".into(), "V=CD; U=AB; Y=UV".into(), fmt_secs(t2.min())]);
    table.note("equal FLOP counts need not imply equal time when memory effects dominate (paper Sec. III-B); on this substrate the orders tie");

    let mut analysis = Table::new("Fig 6 analysis", &["Variant", "Kernels"]);
    analysis.push_row(vec!["Variant 1".into(), describe_counts(&c1)]);
    analysis.push_row(vec!["Variant 2".into(), describe_counts(&c2)]);

    ExperimentResult {
        id: "fig6".into(),
        title: "Same-FLOP instruction orders (Fig 6)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(96);
        let r = fig6(&cfg);
        assert_eq!(r.table.rows.len(), 2);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
