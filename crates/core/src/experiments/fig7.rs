//! Fig. 7 — all five parenthesizations of a length-4 chain.
//!
//! The figure lists the five orders of `A·B·C·D` with their FLOP formulas;
//! the dynamic program picks the minimum. This experiment regenerates the
//! figure: every order is enumerated, priced analytically, executed, and
//! timed; the checks assert that the DP choice has the minimum FLOP count
//! and is (within noise) the fastest measured order.

use laab_chain::{enumerate_parenthesizations, optimal_parenthesization};
use laab_dense::gen::OperandGen;
use laab_expr::eval::{eval, Env};
use laab_expr::{var, Context};
use laab_framework::Framework;
use laab_stats::{fmt_secs, Table};

use crate::workloads::fig7_dims;
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_value, counted, describe_counts, time};

/// Run the Fig. 7 experiment.
pub fn fig7(cfg: &ExperimentConfig) -> ExperimentResult {
    let dims = fig7_dims(cfg);
    let names = ["A", "B", "C", "D"];
    let mut g = OperandGen::new(cfg.seed.wrapping_add(7));
    let mut env = Env::<f32>::new();
    let mut ctx = Context::new();
    for (i, name) in names.iter().enumerate() {
        env.insert(name, g.matrix(dims[i], dims[i + 1]));
        ctx = ctx.with(name, dims[i], dims[i + 1]);
    }
    let factors: Vec<_> = names.iter().map(|n| var(n)).collect();
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let flow = Framework::flow();
    let (dp_cost, dp_tree) = optimal_parenthesization(&dims);

    let mut table = Table::new(
        format!(
            "Fig 7: the 5 parenthesizations of ABCD, shapes {}x{} {}x{} {}x{} {}x{}",
            dims[0], dims[1], dims[1], dims[2], dims[2], dims[3], dims[3], dims[4]
        ),
        &["Order", "FLOPs", "Flow [s]", "DP choice"],
    );
    let mut analysis = Table::new("Fig 7 analysis", &["Order", "Kernels"]);

    let oracle = eval(&laab_chain::left_to_right(4).to_expr(&factors), &env);
    let mut best_flops = u64::MAX;
    let mut dp_time = f64::NAN;
    let mut min_time = f64::INFINITY;

    for tree in enumerate_parenthesizations(4) {
        let expr = tree.to_expr(&factors);
        let flops = tree.cost(&dims);
        best_flops = best_flops.min(flops);
        let f = flow.function_from_expr(&expr, &ctx);
        let (out, counts) = counted(|| f.call(&env));
        check_value(cfg, &mut checks, &tree.render(), &out[0], &oracle);
        let t = time(cfg, || f.call(&env));
        let is_dp = tree == dp_tree;
        if is_dp {
            dp_time = t.min();
        }
        min_time = min_time.min(t.min());
        table.push_row(vec![
            tree.render(),
            format!("{:.1} MFLOP", flops as f64 / 1e6),
            fmt_secs(t.min()),
            if is_dp { "◀ optimal".into() } else { String::new() },
        ]);
        analysis.push_row(vec![tree.render(), describe_counts(&counts)]);
    }

    checks.push(CheckOutcome {
        name: "DP picks the minimum-FLOP order".into(),
        passed: dp_cost == best_flops,
        detail: format!("DP {dp_cost} vs enumerated minimum {best_flops}"),
        timing: false,
    });
    checks.push(CheckOutcome {
        name: "the DP order is (near-)fastest in wall-clock".into(),
        passed: dp_time <= min_time * 1.30,
        detail: format!("DP {:.2e} s vs fastest {:.2e} s", dp_time, min_time),
        timing: true,
    });
    table.note(format!(
        "dynamic program selects {} at {:.1} MFLOP",
        dp_tree.render(),
        dp_cost as f64 / 1e6
    ));

    ExperimentResult {
        id: "fig7".into(),
        title: "Variants for a matrix chain of length 4 (Fig 7)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(128);
        let r = fig7(&cfg);
        assert_eq!(r.table.rows.len(), 5);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
