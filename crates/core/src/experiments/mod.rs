//! The experiments, one module per paper artifact.

pub mod ext_solve;
pub mod fig1;
pub mod fig6;
pub mod fig7;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

pub use ext_solve::ext_solve;
pub use fig1::fig1;
pub use fig6::fig6;
pub use fig7::fig7;
pub use table1::table1;
pub use table2::table2;
pub use table3::table3;
pub use table4::table4;
pub use table5::table5;
pub use table6::table6;

use laab_dense::Matrix;
use laab_kernels::counters::{self, Snapshot};
use laab_stats::{bootstrap_compare, time_reps, Samples, Verdict};

use crate::{CheckOutcome, ExperimentConfig};

/// Numerical tolerance for cross-validating variants in `f32` at benchmark
/// sizes (different evaluation orders reassociate sums).
pub(crate) const F32_TOL: f64 = 1e-2;

/// Time a closure under the experiment's protocol.
pub(crate) fn time<R>(cfg: &ExperimentConfig, f: impl FnMut() -> R) -> Samples {
    time_reps(cfg.timing, f)
}

/// Run once, returning the value and the kernel counters it recorded.
pub(crate) fn counted<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    counters::measure(f)
}

/// Format a counter snapshot for the analysis tables: kernel calls plus
/// total MFLOPs.
pub(crate) fn describe_counts(s: &Snapshot) -> String {
    format!("{} | {:.1} MFLOP", s.describe(), s.total_flops() as f64 / 1e6)
}

/// Add a numerical-equivalence check (when `cfg.check_numerics`).
pub(crate) fn check_value(
    cfg: &ExperimentConfig,
    checks: &mut Vec<CheckOutcome>,
    label: &str,
    got: &Matrix<f32>,
    want: &Matrix<f32>,
) {
    if !cfg.check_numerics {
        return;
    }
    let dist = if got.shape() == want.shape() { got.rel_dist(want) } else { f64::INFINITY };
    checks.push(CheckOutcome {
        name: format!("{label}: numerically equivalent"),
        passed: dist <= F32_TOL,
        detail: format!("relative distance {dist:.2e}"),
        timing: false,
    });
}

/// Add a bootstrap-indistinguishability check ("no statistically
/// significant difference", Table I).
pub(crate) fn check_indistinguishable(
    cfg: &ExperimentConfig,
    checks: &mut Vec<CheckOutcome>,
    name: &str,
    a: &Samples,
    b: &Samples,
) {
    let c = bootstrap_compare(a, b, 2000, cfg.seed);
    // Treat "within 15% either way" as reproducing an ≈ claim even when the
    // bootstrap resolves a tiny-but-consistent difference (single-machine
    // timings are far less noisy than cross-machine ones).
    let close = c.speedup > 0.85 && c.speedup < 1.18;
    // At quick sizes whole variants finish in microseconds; an absolute
    // difference at timer-resolution scale is dispatch noise, not an
    // algorithmic gap, however consistently the bootstrap resolves it.
    let tiny = c.diff_ci.0.abs().max(c.diff_ci.1.abs()) < 2e-5;
    checks.push(CheckOutcome {
        name: name.to_string(),
        passed: matches!(c.verdict, Verdict::Indistinguishable) || close || tiny,
        detail: format!(
            "min ratio {:.3}, CI of diff [{:+.2e}, {:+.2e}] s, verdict {:?}",
            c.speedup, c.diff_ci.0, c.diff_ci.1, c.verdict
        ),
        timing: true,
    });
}

/// Add a check that `slow` takes at least `lo`× and at most `hi`× the time
/// of `fast` (paper claims like "approximately 2× higher").
pub(crate) fn check_ratio(
    checks: &mut Vec<CheckOutcome>,
    name: &str,
    slow: &Samples,
    fast: &Samples,
    lo: f64,
    hi: f64,
) {
    let r = slow.min() / fast.min();
    checks.push(CheckOutcome::ratio(name, r, lo, hi));
}

/// Add a check that `slow` is significantly slower than `fast` by at least
/// `min_ratio`× (claims like "significantly greater").
pub(crate) fn check_slower(
    checks: &mut Vec<CheckOutcome>,
    name: &str,
    slow: &Samples,
    fast: &Samples,
    min_ratio: f64,
) {
    let r = slow.min() / fast.min();
    checks.push(CheckOutcome {
        name: name.to_string(),
        passed: r >= min_ratio,
        detail: format!("min ratio {r:.1} (expected ≥ {min_ratio:.1})"),
        timing: true,
    });
}
