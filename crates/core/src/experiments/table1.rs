//! Table I — raw kernel ("MKL-C") vs Eager vs Graph mode.
//!
//! Row 1 (`AᵀB`) confirms the frameworks link to the optimized kernels:
//! all three columns must be statistically indistinguishable. Row 2
//! (`(AᵀB)ᵀ(AᵀB)`) exposes the mode gap: eager recomputes the common
//! subexpression (3 GEMMs), graph mode deduplicates it (2 GEMMs), giving
//! the paper's ≈1.5× eager/graph ratio.

use laab_expr::eval::eval;
use laab_expr::var;
use laab_framework::{lower::eager_eval_expr, Framework};
use laab_kernels::counters::Kernel;
use laab_kernels::{matmul, Trans};
use laab_stats::{fmt_secs, Table};

use crate::workloads::{square_ctx, square_env};
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_indistinguishable, check_ratio, check_value, counted, describe_counts, time};

/// Run the Table I experiment.
pub fn table1(cfg: &ExperimentConfig) -> ExperimentResult {
    let env = square_env(cfg);
    let ctx = square_ctx(cfg);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let a = env.expect("A").clone();
    let b = env.expect("B").clone();

    let s = var("A").t() * var("B");
    let e2 = s.t() * s.clone();

    let flow = Framework::flow();
    let torch = Framework::torch();

    let mut table = Table::new(
        format!("Table I: execution time [s] for n = {}", cfg.n),
        &["Expression", "MKL-C", "Eager (Flow/Torch)", "Graph (Flow/Torch)"],
    );
    let mut analysis =
        Table::new("Table I analysis: kernel traffic", &["Expression", "Mode", "Kernels"]);

    // ---- Row 1: AᵀB ----
    let t_raw = time(cfg, || matmul(&a, Trans::Yes, &b, Trans::No));
    let t_eager = time(cfg, || eager_eval_expr(&s, &env));
    let f_flow = flow.function_from_expr(&s, &ctx);
    let f_torch = torch.function_from_expr(&s, &ctx);
    let t_graph_flow = time(cfg, || f_flow.call(&env));
    let t_graph_torch = time(cfg, || f_torch.call(&env));

    let oracle_s = eval(&s, &env);
    let (eager_out, eager_counts) = counted(|| eager_eval_expr(&s, &env));
    check_value(cfg, &mut checks, "AᵀB eager", &eager_out, &oracle_s);
    let (graph_out, graph_counts) = counted(|| f_flow.call(&env));
    check_value(cfg, &mut checks, "AᵀB graph", &graph_out[0], &oracle_s);

    table.push_row(vec![
        "AᵀB".into(),
        fmt_secs(t_raw.min()),
        format!("{} / {}", fmt_secs(t_eager.min()), fmt_secs(t_eager.min())),
        format!("{} / {}", fmt_secs(t_graph_flow.min()), fmt_secs(t_graph_torch.min())),
    ]);
    analysis.push_row(vec!["AᵀB".into(), "eager".into(), describe_counts(&eager_counts)]);
    analysis.push_row(vec!["AᵀB".into(), "graph".into(), describe_counts(&graph_counts)]);

    check_indistinguishable(
        cfg,
        &mut checks,
        "AᵀB: eager == raw GEMM (frameworks link to the kernels)",
        &t_raw,
        &t_eager,
    );
    check_indistinguishable(cfg, &mut checks, "AᵀB: graph == raw GEMM", &t_raw, &t_graph_flow);
    checks.push(CheckOutcome {
        name: "AᵀB is a single GEMM in both modes (transpose folded)".into(),
        passed: eager_counts.calls(Kernel::Gemm) == 1
            && graph_counts.calls(Kernel::Gemm) == 1
            && eager_counts.calls(Kernel::Transpose) == 0
            && graph_counts.calls(Kernel::Transpose) == 0,
        detail: format!("eager: {}; graph: {}", eager_counts.describe(), graph_counts.describe()),
        timing: false,
    });

    // ---- Row 2: (AᵀB)ᵀ(AᵀB) ----
    let t_eager2 = time(cfg, || eager_eval_expr(&e2, &env));
    let f2_flow = flow.function_from_expr(&e2, &ctx);
    let f2_torch = torch.function_from_expr(&e2, &ctx);
    let t_graph2_flow = time(cfg, || f2_flow.call(&env));
    let t_graph2_torch = time(cfg, || f2_torch.call(&env));

    let oracle2 = eval(&e2, &env);
    let (eager2_out, eager2_counts) = counted(|| eager_eval_expr(&e2, &env));
    check_value(cfg, &mut checks, "E2 eager", &eager2_out, &oracle2);
    let (graph2_out, graph2_counts) = counted(|| f2_flow.call(&env));
    check_value(cfg, &mut checks, "E2 graph", &graph2_out[0], &oracle2);

    table.push_row(vec![
        "(AᵀB)ᵀ(AᵀB)".into(),
        "-".into(),
        format!("{} / {}", fmt_secs(t_eager2.min()), fmt_secs(t_eager2.min())),
        format!("{} / {}", fmt_secs(t_graph2_flow.min()), fmt_secs(t_graph2_torch.min())),
    ]);
    analysis.push_row(vec!["(AᵀB)ᵀ(AᵀB)".into(), "eager".into(), describe_counts(&eager2_counts)]);
    analysis.push_row(vec!["(AᵀB)ᵀ(AᵀB)".into(), "graph".into(), describe_counts(&graph2_counts)]);

    checks.push(CheckOutcome {
        name: "E2: eager runs 3 GEMMs, graph runs 2 (CSE)".into(),
        passed: eager2_counts.calls(Kernel::Gemm) == 3 && graph2_counts.calls(Kernel::Gemm) == 2,
        detail: format!(
            "eager {} / graph {}",
            eager2_counts.calls(Kernel::Gemm),
            graph2_counts.calls(Kernel::Gemm)
        ),
        timing: false,
    });
    check_ratio(
        &mut checks,
        "E2: eager ≈ 1.5× graph (paper: 1.25 s vs 0.78 s)",
        &t_eager2,
        &t_graph2_flow,
        1.25,
        1.8,
    );

    table.note(format!(
        "decorator (trace+optimize) overhead: Flow {:.1e} s, Torch {:.1e} s",
        f2_flow.build_time().as_secs_f64(),
        f2_torch.build_time().as_secs_f64()
    ));

    ExperimentResult {
        id: "table1".into(),
        title: "Graph mode vs Eager mode (Table I)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(128);
        let r = table1(&cfg);
        assert_eq!(r.table.rows.len(), 2);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
