//! Table II — common-subexpression elimination (Experiment 1).
//!
//! `S = AᵀB` occurs twice in each test expression. The paper's findings,
//! all reproduced as checks here:
//!
//! * `E1 = AᵀB + AᵀB` costs the same as `S` (CSE + scaling fused into the
//!   GEMM's alpha);
//! * `E2 = (AᵀB)ᵀ(AᵀB)` costs ≈ 2× `S` (CSE finds the duplicate subtree);
//! * `E3 = (AᵀB)ᵀAᵀB` costs ≈ 3× `S` (the flat chain has no duplicate
//!   *subtree*, so DAG-based CSE fails — the paper's central observation).

use laab_expr::eval::eval;
use laab_expr::{var, Expr};
use laab_framework::Framework;
use laab_kernels::counters::Kernel;
use laab_stats::{fmt_secs, Table};

use crate::workloads::{square_ctx, square_env};
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_ratio, check_value, counted, describe_counts, time};

/// The four rows of Table II: (label, expression, expected GEMM count in
/// graph mode).
pub fn rows() -> Vec<(&'static str, Expr, u64)> {
    let s = var("A").t() * var("B");
    vec![
        ("AᵀB", s.clone(), 1),
        ("AᵀB + AᵀB", s.clone() + s.clone(), 1),
        ("(AᵀB)ᵀ(AᵀB)", s.t() * s.clone(), 2),
        ("(AᵀB)ᵀAᵀB", s.t() * var("A").t() * var("B"), 3),
    ]
}

/// Run the Table II experiment.
pub fn table2(cfg: &ExperimentConfig) -> ExperimentResult {
    let env = square_env(cfg);
    let ctx = square_ctx(cfg);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let flow = Framework::flow();
    let torch = Framework::torch();

    let mut table = Table::new(
        format!("Table II: CSE test expressions, graph mode, n = {}", cfg.n),
        &["#", "Expression", "Flow [s]", "Torch [s]"],
    );
    let mut analysis = Table::new(
        "Table II analysis: kernel traffic (graph mode)",
        &["Expression", "Kernels", "GEMMs expected"],
    );

    let mut samples = Vec::new();
    for (i, (label, expr, want_gemms)) in rows().into_iter().enumerate() {
        let f_flow = flow.function_from_expr(&expr, &ctx);
        let f_torch = torch.function_from_expr(&expr, &ctx);
        let (out, counts) = counted(|| f_flow.call(&env));
        check_value(cfg, &mut checks, label, &out[0], &eval(&expr, &env));
        checks.push(CheckOutcome {
            name: format!("{label}: {want_gemms} GEMM(s) after graph optimization"),
            passed: counts.calls(Kernel::Gemm) == want_gemms,
            detail: counts.describe(),
            timing: false,
        });
        let t_flow = time(cfg, || f_flow.call(&env));
        let t_torch = time(cfg, || f_torch.call(&env));
        table.push_row(vec![
            (i + 1).to_string(),
            label.to_string(),
            fmt_secs(t_flow.min()),
            fmt_secs(t_torch.min()),
        ]);
        analysis.push_row(vec![
            label.to_string(),
            describe_counts(&counts),
            want_gemms.to_string(),
        ]);
        samples.push(t_flow);
    }

    // Timing-level findings.
    check_ratio(&mut checks, "E1 ≈ S (scaling absorbed)", &samples[1], &samples[0], 0.85, 1.25);
    check_ratio(
        &mut checks,
        "E2 ≈ 2× S (CSE catches the parenthesized form)",
        &samples[2],
        &samples[0],
        1.6,
        2.5,
    );
    // Upper bound leaves ~50% headroom: three GEMMs accumulate three times
    // the small-n dispatch jitter, and the finding only needs E3 to sit
    // clearly above E2's ≈2× band.
    check_ratio(
        &mut checks,
        "E3 ≈ 3× S (CSE misses the flat chain)",
        &samples[3],
        &samples[0],
        2.5,
        4.5,
    );

    ExperimentResult {
        id: "table2".into(),
        title: "Common Sub-expression Elimination (Table II)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(128);
        let r = table2(&cfg);
        assert_eq!(r.table.rows.len(), 4);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
