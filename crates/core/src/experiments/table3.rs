//! Table III — matrix-chain evaluation (Experiment 2).
//!
//! Three chains whose optimal orders are right-to-left, left-to-right, and
//! mixed. The frameworks' `matmul` evaluates whatever association the user
//! wrote (left-to-right when unparenthesized); only `Torch`'s `multi_dot`
//! re-associates. Findings reproduced as checks:
//!
//! * `HᵀHx` unparenthesized is O(n³); `Hᵀ(Hx)` is O(n²);
//! * `yᵀHᵀH` unparenthesized equals its explicit left-to-right form
//!   (the default *is* left-to-right);
//! * `HᵀyxᵀH` needs the mixed order `(Hᵀy)(xᵀH)`;
//! * `multi_dot` matches the best parenthesization everywhere.

use laab_expr::eval::eval;
use laab_expr::{var, Expr};
use laab_framework::{Framework, Function};
use laab_kernels::counters::Kernel;
use laab_stats::{fmt_secs, Samples, Table};

use crate::workloads::{square_ctx, square_env};
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{
    check_indistinguishable, check_ratio, check_slower, check_value, counted, describe_counts, time,
};

struct Row {
    label: &'static str,
    expr: Expr,
    /// Factors for the multi_dot column (None → the "-" cells).
    multi_dot: Option<Vec<Expr>>,
    /// Expected (GEMM, GEMV) calls in graph mode.
    want: (u64, u64),
}

fn rows() -> Vec<Row> {
    let (h, x, y) = (var("H"), var("x"), var("y"));
    vec![
        Row {
            label: "HᵀHx (matmul)",
            expr: h.t() * h.clone() * x.clone(),
            multi_dot: Some(vec![h.t(), h.clone(), x.clone()]),
            want: (1, 1),
        },
        Row {
            label: "Hᵀ(Hx)",
            expr: h.t() * (h.clone() * x.clone()),
            multi_dot: None,
            want: (0, 2),
        },
        Row {
            label: "yᵀHᵀH (matmul)",
            expr: y.t() * h.t() * h.clone(),
            multi_dot: Some(vec![y.t(), h.t(), h.clone()]),
            want: (0, 2),
        },
        Row {
            label: "(yᵀHᵀ)H", expr: (y.t() * h.t()) * h.clone(), multi_dot: None, want: (0, 2)
        },
        Row {
            label: "HᵀyxᵀH (matmul)",
            expr: h.t() * y.clone() * x.t() * h.clone(),
            multi_dot: Some(vec![h.t(), y.clone(), x.t(), h.clone()]),
            want: (2, 1),
        },
        Row {
            label: "(Hᵀy)(xᵀH)",
            expr: (h.t() * y.clone()) * (x.t() * h.clone()),
            multi_dot: None,
            want: (1, 2),
        },
    ]
}

/// Run the Table III experiment.
pub fn table3(cfg: &ExperimentConfig) -> ExperimentResult {
    let env = square_env(cfg);
    let ctx = square_ctx(cfg);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let flow = Framework::flow();
    let torch = Framework::torch();

    let mut table = Table::new(
        format!("Table III: matrix chains, graph mode, n = {}", cfg.n),
        &["Expression", "Flow matmul [s]", "Torch matmul [s]", "Torch multi_dot [s]"],
    );
    let mut analysis =
        Table::new("Table III analysis: kernel traffic (graph mode)", &["Expression", "Kernels"]);

    let mut matmul_times: Vec<Samples> = Vec::new();
    let mut multidot_times: Vec<Option<Samples>> = Vec::new();

    for row in rows() {
        let f_flow = flow.function_from_expr(&row.expr, &ctx);
        let f_torch = torch.function_from_expr(&row.expr, &ctx);
        let (out, counts) = counted(|| f_flow.call(&env));
        check_value(cfg, &mut checks, row.label, &out[0], &eval(&row.expr, &env));
        checks.push(CheckOutcome {
            name: format!("{}: {} GEMM / {} GEMV in graph mode", row.label, row.want.0, row.want.1),
            passed: counts.calls(Kernel::Gemm) == row.want.0
                && counts.calls(Kernel::Gemv) == row.want.1,
            detail: counts.describe(),
            timing: false,
        });

        let t_flow = time(cfg, || f_flow.call(&env));
        let t_torch = time(cfg, || f_torch.call(&env));

        let md: Option<(Function, Samples)> = row.multi_dot.as_ref().map(|factors| {
            let factors = factors.clone();
            let ctx2 = ctx.clone();
            let f = torch.function(move |fb| {
                let gts: Vec<_> = factors
                    .iter()
                    .map(|e| laab_framework::lower::trace_expr(fb, e, &ctx2))
                    .collect();
                vec![fb.multi_dot(&gts)]
            });
            let t = time(cfg, || f.call(&env));
            (f, t)
        });

        table.push_row(vec![
            row.label.to_string(),
            fmt_secs(t_flow.min()),
            fmt_secs(t_torch.min()),
            md.as_ref().map(|(_, t)| fmt_secs(t.min())).unwrap_or_else(|| "-".into()),
        ]);
        analysis.push_row(vec![row.label.to_string(), describe_counts(&counts)]);

        if let Some((f, _)) = &md {
            let (md_out, md_counts) = counted(|| f.call(&env));
            check_value(
                cfg,
                &mut checks,
                &format!("{} multi_dot", row.label),
                &md_out[0],
                &eval(&row.expr, &env),
            );
            analysis
                .push_row(vec![format!("{} multi_dot", row.label), describe_counts(&md_counts)]);
        }
        matmul_times.push(t_flow);
        multidot_times.push(md.map(|(_, t)| t));
    }

    // The paper's qualitative findings.
    check_slower(
        &mut checks,
        "HᵀHx unparenthesized ≫ Hᵀ(Hx) (no automatic re-association)",
        &matmul_times[0],
        &matmul_times[1],
        3.0,
    );
    check_indistinguishable(
        cfg,
        &mut checks,
        "yᵀHᵀH == (yᵀHᵀ)H (default evaluation is left-to-right)",
        &matmul_times[2],
        &matmul_times[3],
    );
    check_slower(
        &mut checks,
        "HᵀyxᵀH unparenthesized ≫ (Hᵀy)(xᵀH)",
        &matmul_times[4],
        &matmul_times[5],
        3.0,
    );
    if let Some(md) = &multidot_times[0] {
        check_ratio(
            &mut checks,
            "multi_dot(Hᵀ,H,x) ≈ explicit Hᵀ(Hx)",
            md,
            &matmul_times[1],
            0.4,
            1.7,
        );
    }
    if let Some(md) = &multidot_times[4] {
        // Both sides are O(n²); at small n the µs-scale times jitter, so the
        // band is generous — the analytical table pins the kernel equality.
        check_ratio(
            &mut checks,
            "multi_dot(Hᵀ,y,xᵀ,H) ≈ explicit mixed order",
            md,
            &matmul_times[5],
            0.4,
            1.7,
        );
    }

    ExperimentResult {
        id: "table3".into(),
        title: "Optimization of Matrix Chains (Table III)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(160);
        let r = table3(&cfg);
        assert_eq!(r.table.rows.len(), 6);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
