//! Table IV — exploiting matrix properties (Experiment 3).
//!
//! Five products whose left operand carries exploitable structure. The
//! hand-coded ("SciPy BLAS") column calls the specialized kernels directly;
//! the frameworks' `matmul` columns ignore the structure (always GEMM);
//! `Flow`'s `tridiagonal_matmul` is the one manual escape hatch (and is
//! "n.a." on `Torch`). An extra `aware` column shows `laab-rewrite`'s
//! property dispatch recovering the hand-coded performance automatically —
//! the optimization the paper's discussion asks the frameworks to add.

use laab_expr::eval::eval;
use laab_expr::var;
use laab_framework::Framework;
use laab_kernels::counters::Kernel;
use laab_kernels::{matmul, syrk, trmm, Trans, UpLo};
use laab_rewrite::aware_eval;
use laab_stats::{fmt_secs, Samples, Table};

use crate::baselines::{diag_scal_sequence, tridiag_scal_sequence};
use crate::workloads::structured;
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_indistinguishable, check_slower, check_value, counted, time};

/// Run the Table IV experiment.
pub fn table4(cfg: &ExperimentConfig) -> ExperimentResult {
    let w = structured(cfg);
    let (env, ctx) = (&w.env, &w.ctx);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let a = env.expect("A").clone();
    let b = env.expect("B").clone();
    let l = env.expect("L").clone();

    let flow = Framework::flow();
    let torch = Framework::torch();

    let mut table = Table::new(
        format!("Table IV: exploiting matrix properties, n = {}", cfg.n),
        &[
            "Expr",
            "SciPy BLAS [s]",
            "Flow matmul [s]",
            "Flow optim [s]",
            "Torch matmul [s]",
            "Torch optim [s]",
            "LAAB aware [s]",
        ],
    );
    let mut analysis = Table::new(
        "Table IV analysis: dispatch per column",
        &["Expr", "SciPy kernel", "Framework kernel", "Aware kernel"],
    );

    struct RowOut {
        scipy: Samples,
        fw_matmul: Samples,
        aware: Samples,
    }
    let mut outs: Vec<RowOut> = Vec::new();

    // Row helper: [expr label, scipy closure, framework expr, aware expr].
    // Rows are written out longhand — each has a distinct baseline kernel.

    // ---- AB (reference row: no structure) ----
    {
        let expr = var("A") * var("B");
        let oracle = eval(&expr, env);
        let scipy = time(cfg, || matmul(&a, Trans::No, &b, Trans::No));
        let f_flow = flow.function_from_expr(&expr, &ctx.clone());
        let f_torch = torch.function_from_expr(&expr, &ctx.clone());
        let t_flow = time(cfg, || f_flow.call(env));
        let t_torch = time(cfg, || f_torch.call(env));
        let t_aware = time(cfg, || aware_eval(&expr, env, ctx));
        let (av, _) = counted(|| aware_eval(&expr, env, ctx));
        check_value(cfg, &mut checks, "AB aware", &av, &oracle);
        table.push_row(vec![
            "AB".into(),
            fmt_secs(scipy.min()),
            fmt_secs(t_flow.min()),
            "n.a.".into(),
            fmt_secs(t_torch.min()),
            "n.a.".into(),
            fmt_secs(t_aware.min()),
        ]);
        analysis.push_row(vec!["AB".into(), "GEMM".into(), "GEMM".into(), "GEMM".into()]);
        outs.push(RowOut { scipy, fw_matmul: t_flow, aware: t_aware });
    }

    // ---- LB (lower triangular → TRMM) ----
    {
        let expr = var("L") * var("B");
        let oracle = eval(&expr, env);
        let scipy = time(cfg, || trmm(1.0f32, &l, UpLo::Lower, &b));
        let f_flow = flow.function_from_expr(&expr, &ctx.clone());
        let f_torch = torch.function_from_expr(&expr, &ctx.clone());
        let t_flow = time(cfg, || f_flow.call(env));
        let t_torch = time(cfg, || f_torch.call(env));
        let t_aware = time(cfg, || aware_eval(&expr, env, ctx));
        let (av, ac) = counted(|| aware_eval(&expr, env, ctx));
        check_value(cfg, &mut checks, "LB aware", &av, &oracle);
        checks.push(CheckOutcome {
            name: "LB: aware dispatch uses TRMM".into(),
            passed: ac.calls(Kernel::Trmm) == 1 && ac.calls(Kernel::Gemm) == 0,
            detail: ac.describe(),
            timing: false,
        });
        table.push_row(vec![
            "LB".into(),
            fmt_secs(scipy.min()),
            fmt_secs(t_flow.min()),
            "n.a.".into(),
            fmt_secs(t_torch.min()),
            "n.a.".into(),
            fmt_secs(t_aware.min()),
        ]);
        analysis.push_row(vec!["LB".into(), "TRMM".into(), "GEMM".into(), "TRMM".into()]);
        outs.push(RowOut { scipy, fw_matmul: t_flow, aware: t_aware });
    }

    // ---- AAᵀ (symmetric output → SYRK) ----
    {
        let expr = var("A") * var("A").t();
        let oracle = eval(&expr, env);
        let scipy = time(cfg, || syrk(1.0f32, &a));
        let f_flow = flow.function_from_expr(&expr, &ctx.clone());
        let f_torch = torch.function_from_expr(&expr, &ctx.clone());
        let t_flow = time(cfg, || f_flow.call(env));
        let t_torch = time(cfg, || f_torch.call(env));
        let t_aware = time(cfg, || aware_eval(&expr, env, ctx));
        let (av, ac) = counted(|| aware_eval(&expr, env, ctx));
        check_value(cfg, &mut checks, "AAᵀ aware", &av, &oracle);
        checks.push(CheckOutcome {
            name: "AAᵀ: aware dispatch uses SYRK".into(),
            passed: ac.calls(Kernel::Syrk) == 1 && ac.calls(Kernel::Gemm) == 0,
            detail: ac.describe(),
            timing: false,
        });
        table.push_row(vec![
            "AAᵀ".into(),
            fmt_secs(scipy.min()),
            fmt_secs(t_flow.min()),
            "n.a.".into(),
            fmt_secs(t_torch.min()),
            "n.a.".into(),
            fmt_secs(t_aware.min()),
        ]);
        analysis.push_row(vec!["AAᵀ".into(), "SYRK".into(), "GEMM".into(), "SYRK".into()]);
        outs.push(RowOut { scipy, fw_matmul: t_flow, aware: t_aware });
    }

    // ---- TB (tridiagonal → SCAL sequence / tridiagonal_matmul) ----
    {
        let expr = var("T") * var("B");
        let oracle = eval(&expr, env);
        let tri = w.tri.clone();
        let scipy = time(cfg, || tridiag_scal_sequence(&tri, &b));
        let f_flow = flow.function_from_expr(&expr, &ctx.clone());
        let f_torch = torch.function_from_expr(&expr, &ctx.clone());
        let t_flow = time(cfg, || f_flow.call(env));
        let t_torch = time(cfg, || f_torch.call(env));
        // Flow's specialized method (eager, fused, parallelizable).
        let bt = flow.tensor(b.clone());
        let t_optim = time(cfg, || flow.tridiagonal_matmul(&tri, &bt));
        let t_aware = time(cfg, || aware_eval(&expr, env, ctx));
        let (av, ac) = counted(|| aware_eval(&expr, env, ctx));
        check_value(cfg, &mut checks, "TB aware", &av, &oracle);
        checks.push(CheckOutcome {
            name: "TB: aware dispatch uses the tridiagonal kernel".into(),
            passed: ac.calls(Kernel::TridiagMatmul) == 1 && ac.calls(Kernel::Gemm) == 0,
            detail: ac.describe(),
            timing: false,
        });
        check_slower(
            &mut checks,
            "TB: framework matmul ≫ SCAL sequence (O(n³) vs O(n²))",
            &t_flow,
            &scipy,
            2.0,
        );
        checks.push(CheckOutcome {
            name: "TB: tridiagonal_matmul at least as fast as the SCAL sequence".into(),
            passed: t_optim.min() <= scipy.min() * 1.10,
            detail: format!("optim {} vs scipy {}", fmt_secs(t_optim.min()), fmt_secs(scipy.min())),
            timing: true,
        });
        table.push_row(vec![
            "TB".into(),
            fmt_secs(scipy.min()),
            fmt_secs(t_flow.min()),
            fmt_secs(t_optim.min()),
            fmt_secs(t_torch.min()),
            "n.a.".into(),
            fmt_secs(t_aware.min()),
        ]);
        analysis.push_row(vec![
            "TB".into(),
            "SCAL×n + AXPY×2(n−1)".into(),
            "GEMM".into(),
            "TRIDIAG_MM (fused)".into(),
        ]);
        outs.push(RowOut { scipy, fw_matmul: t_flow, aware: t_aware });
    }

    // ---- DB (diagonal → SCAL sequence) ----
    {
        let expr = var("D") * var("B");
        let oracle = eval(&expr, env);
        let diag = w.diag.clone();
        let scipy = time(cfg, || diag_scal_sequence(&diag, &b));
        let f_flow = flow.function_from_expr(&expr, &ctx.clone());
        let f_torch = torch.function_from_expr(&expr, &ctx.clone());
        let t_flow = time(cfg, || f_flow.call(env));
        let t_torch = time(cfg, || f_torch.call(env));
        let dt = diag.to_tridiagonal();
        let bt = flow.tensor(b.clone());
        let t_optim = time(cfg, || flow.tridiagonal_matmul(&dt, &bt));
        let t_aware = time(cfg, || aware_eval(&expr, env, ctx));
        let (av, ac) = counted(|| aware_eval(&expr, env, ctx));
        check_value(cfg, &mut checks, "DB aware", &av, &oracle);
        checks.push(CheckOutcome {
            name: "DB: aware dispatch uses the diagonal kernel".into(),
            passed: ac.calls(Kernel::DiagMatmul) == 1 && ac.calls(Kernel::Gemm) == 0,
            detail: ac.describe(),
            timing: false,
        });
        check_slower(&mut checks, "DB: framework matmul ≫ SCAL sequence", &t_flow, &scipy, 3.0);
        table.push_row(vec![
            "DB".into(),
            fmt_secs(scipy.min()),
            fmt_secs(t_flow.min()),
            fmt_secs(t_optim.min()),
            fmt_secs(t_torch.min()),
            "n.a.".into(),
            fmt_secs(t_aware.min()),
        ]);
        analysis.push_row(vec![
            "DB".into(),
            "SCAL×n".into(),
            "GEMM".into(),
            "TRIDIAG_MM (fused)".into(),
        ]);
        outs.push(RowOut { scipy, fw_matmul: t_flow, aware: t_aware });
    }

    // Cross-row findings.
    check_indistinguishable(
        cfg,
        &mut checks,
        "AB: hand-coded GEMM == framework matmul",
        &outs[0].scipy,
        &outs[0].fw_matmul,
    );
    // The paper sees ≈1.7× at n = 3000; at small n the O(n²) portions of
    // TRMM/SYRK (zeroing, symmetrizing) eat into the 2× FLOP advantage, so
    // the bound is size-aware.
    let tri_bound = if cfg.n >= 384 { 1.35 } else { 1.02 };
    check_slower(
        &mut checks,
        "LB: framework matmul slower than TRMM (paper: ≈1.7×)",
        &outs[1].fw_matmul,
        &outs[1].scipy,
        tri_bound,
    );
    check_slower(
        &mut checks,
        "AAᵀ: framework matmul slower than SYRK (paper: ≈1.7×)",
        &outs[2].fw_matmul,
        &outs[2].scipy,
        tri_bound,
    );
    // Aware dispatch must recover (or beat) the hand-coded kernel. For the
    // structured rows the fused kernels legitimately beat the per-row SCAL
    // sequences (fewer memory passes, no per-row dispatch), so only an
    // upper bound applies there.
    for (i, (label, lo)) in
        [("AB", 0.6), ("LB", 0.5), ("AAᵀ", 0.5), ("TB", 0.05), ("DB", 0.05)].iter().enumerate()
    {
        let r = outs[i].aware.min() / outs[i].scipy.min();
        checks.push(CheckOutcome::ratio(
            format!("{label}: aware dispatch matches or beats hand-coded kernel"),
            r,
            *lo,
            1.6,
        ));
    }
    table.note(
        "n.a. = the framework offers no specialized method the user could call (paper Table IV)",
    );

    ExperimentResult {
        id: "table4".into(),
        title: "Exploiting Matrix Properties (Table IV)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(160);
        let r = table4(&cfg);
        assert_eq!(r.table.rows.len(), 5);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
