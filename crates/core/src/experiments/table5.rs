//! Table V — algebraic manipulation (Experiment 4).
//!
//! Three identities the frameworks never apply:
//!
//! * Eq. 9: `AB + AC = A(B+C)` — factoring halves the GEMM count;
//! * Eq. 10: `Ax − Hᵀ(Hx) = (A − HᵀH)x` — here the *left* side is the
//!   cheap one (three GEMVs vs one GEMM): fewer multiplications ≠ fewer
//!   FLOPs;
//! * Eq. 11: `blkdiag(A₁,A₂)·[B₁;B₂] = [A₁B₁; A₂B₂]` — the blocked
//!   product halves the FLOPs.
//!
//! Each side is executed as written (graph mode); the checks assert the
//! paper's ratios, and notes report what `laab-rewrite` finds.

use laab_expr::eval::eval;
use laab_expr::{block_diag, var, vcat, Expr};
use laab_framework::Framework;
use laab_rewrite::{optimize_expr, CostKind};
use laab_stats::{fmt_secs, Samples, Table};

use crate::workloads::{blocked_env, square_ctx, square_env};
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_ratio, check_slower, check_value, counted, describe_counts, time};

/// Run the Table V experiment.
pub fn table5(cfg: &ExperimentConfig) -> ExperimentResult {
    let env = square_env(cfg);
    let ctx = square_ctx(cfg);
    let (benv, bctx) = blocked_env(cfg);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let flow = Framework::flow();
    let torch = Framework::torch();

    let mut table = Table::new(
        format!("Table V: algebraic manipulations, graph mode, n = {}", cfg.n),
        &["Property", "Side", "Flow [s]", "Torch [s]"],
    );
    let mut analysis =
        Table::new("Table V analysis: kernel traffic (graph mode, Flow)", &["Case", "Kernels"]);

    let mut run_pair = |name: &str,
                        lhs: &Expr,
                        rhs: &Expr,
                        env: &laab_expr::eval::Env<f32>,
                        ctx: &laab_expr::Context,
                        checks: &mut Vec<CheckOutcome>|
     -> (Samples, Samples) {
        let oracle = eval(lhs, env);
        let fl = flow.function_from_expr(lhs, ctx);
        let fr = flow.function_from_expr(rhs, ctx);
        let tl_torch = torch.function_from_expr(lhs, ctx);
        let tr_torch = torch.function_from_expr(rhs, ctx);

        let (lv, lc) = counted(|| fl.call(env));
        let (rv, rc) = counted(|| fr.call(env));
        check_value(cfg, checks, &format!("{name} LHS"), &lv[0], &oracle);
        check_value(cfg, checks, &format!("{name} RHS"), &rv[0], &oracle);

        let t_lhs = time(cfg, || fl.call(env));
        let t_rhs = time(cfg, || fr.call(env));
        let t_lhs_torch = time(cfg, || tl_torch.call(env));
        let t_rhs_torch = time(cfg, || tr_torch.call(env));

        table.push_row(vec![
            name.to_string(),
            "LHS".into(),
            fmt_secs(t_lhs.min()),
            fmt_secs(t_lhs_torch.min()),
        ]);
        table.push_row(vec![
            name.to_string(),
            "RHS".into(),
            fmt_secs(t_rhs.min()),
            fmt_secs(t_rhs_torch.min()),
        ]);
        analysis.push_row(vec![format!("{name} LHS"), describe_counts(&lc)]);
        analysis.push_row(vec![format!("{name} RHS"), describe_counts(&rc)]);
        (t_lhs, t_rhs)
    };

    // ---- Eq. 9: AB + AC vs A(B+C) ----
    let eq9_lhs = var("A") * var("B") + var("A") * var("C");
    let eq9_rhs = var("A") * (var("B") + var("C"));
    let (t9l, t9r) = run_pair("Distributivity Eq 9", &eq9_lhs, &eq9_rhs, &env, &ctx, &mut checks);
    check_ratio(&mut checks, "Eq 9: LHS ≈ 2× RHS (two GEMMs vs one)", &t9l, &t9r, 1.6, 2.5);

    // ---- Eq. 10: Ax − Hᵀ(Hx) vs (A − HᵀH)x ----
    let eq10_lhs = var("A") * var("x") - var("H").t() * (var("H") * var("x"));
    let eq10_rhs = (var("A") - var("H").t() * var("H")) * var("x");
    let (t10l, t10r) =
        run_pair("Distributivity Eq 10", &eq10_lhs, &eq10_rhs, &env, &ctx, &mut checks);
    check_slower(
        &mut checks,
        "Eq 10: RHS ≫ LHS (fewer products but more FLOPs; paper ≈40×)",
        &t10r,
        &t10l,
        5.0,
    );

    // ---- Eq. 11: blocked matrices ----
    let eq11_lhs = block_diag(var("A1"), var("A2")) * vcat(var("B1"), var("B2"));
    let eq11_rhs = vcat(var("A1") * var("B1"), var("A2") * var("B2"));
    let (t11l, t11r) =
        run_pair("Blocked matrices Eq 11", &eq11_lhs, &eq11_rhs, &benv, &bctx, &mut checks);
    check_ratio(&mut checks, "Eq 11: LHS ≈ 2× RHS (2n³ vs n³ FLOPs)", &t11l, &t11r, 1.5, 2.6);

    // What the rewriter does with each expensive side.
    let r9 = optimize_expr(&eq9_lhs, &ctx, CostKind::NaiveShared);
    let r10 = optimize_expr(&eq10_rhs, &ctx, CostKind::NaiveShared);
    let r11 = optimize_expr(&eq11_lhs, &bctx, CostKind::NaiveShared);
    table.note(format!(
        "laab-rewrite on Eq 9 LHS: `{}` ({:.0}× fewer FLOPs)",
        r9.best,
        r9.speedup()
    ));
    table.note(format!(
        "laab-rewrite on Eq 10 RHS: `{}` ({:.0}× fewer FLOPs)",
        r10.best,
        r10.speedup()
    ));
    table.note(format!(
        "laab-rewrite on Eq 11 LHS: `{}` ({:.1}× fewer FLOPs)",
        r11.best,
        r11.speedup()
    ));
    checks.push(CheckOutcome {
        name: "rewriter factors Eq 9".into(),
        passed: r9.best_cost < laab_expr::cost::naive_cost(&eq9_lhs, &ctx),
        detail: format!("{} → {}", r9.original_cost, r9.best_cost),
        timing: false,
    });
    checks.push(CheckOutcome {
        name: "rewriter distributes Eq 10 (RHS → LHS shape)".into(),
        passed: r10.speedup() > 5.0,
        detail: format!("speedup {:.1}", r10.speedup()),
        timing: false,
    });
    checks.push(CheckOutcome {
        name: "rewriter splits the blocked product (Eq 11)".into(),
        passed: r11.best == eq11_rhs,
        detail: format!("found `{}`", r11.best),
        timing: false,
    });

    ExperimentResult {
        id: "table5".into(),
        title: "Algebraic Manipulation (Table V)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(160);
        let r = table5(&cfg);
        assert_eq!(r.table.rows.len(), 6);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
