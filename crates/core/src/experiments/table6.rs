//! Table VI — code motion (Experiment 5).
//!
//! Two findings with opposite sign:
//!
//! * **Loop-invariant code motion works**: the naive loop that recomputes
//!   `A·B` in every (unrolled) iteration optimizes to the same graph as the
//!   hand-hoisted version — CSE over the unrolled trace *is* LICM.
//! * **Partial operand access does not**: `(A+B)[2,2]` pays the full O(n²)
//!   sum and `(A·B)[2,2]` the full O(n³) product; the recommended
//!   `A[2,2]+B[2,2]` / `dot(A[2,:], B[:,2])` forms are orders of magnitude
//!   faster, and the frameworks never rewrite one into the other.

use laab_expr::eval::eval;
use laab_expr::{elem, var};
use laab_framework::Framework;
use laab_kernels::counters::Kernel;
use laab_stats::{fmt_secs, Table};

use crate::workloads::{loop_env, square_ctx};
use crate::{CheckOutcome, ExperimentConfig, ExperimentResult};

use super::{check_indistinguishable, check_slower, check_value, counted, describe_counts, time};

/// Run the Table VI experiment.
pub fn table6(cfg: &ExperimentConfig) -> ExperimentResult {
    let n = cfg.n;
    let env = loop_env(cfg);
    let ctx = square_ctx(cfg);
    let mut checks: Vec<CheckOutcome> = Vec::new();

    let flow = Framework::flow();
    let torch = Framework::torch();

    let mut table = Table::new(
        format!("Table VI: code motion, graph mode, n = {}", cfg.n),
        &["Property", "Flow naive [s]", "Flow reco [s]", "Torch naive [s]", "Torch reco [s]"],
    );
    let mut analysis =
        Table::new("Table VI analysis: kernel traffic (graph mode, Flow)", &["Case", "Kernels"]);

    // ---- Loop-invariant code motion ----
    // naive: Y_i = A@B + v_i v_iᵀ  with A@B re-traced inside the loop;
    // recommended: tmp = A@B hoisted before the loop.
    let build_naive = |fb: &mut laab_framework::FuncBuilder| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let mut outs = Vec::new();
        for i in 0..3 {
            let ab = fb.matmul(a, b); // re-traced every iteration
            let v = fb.input(&format!("v{i}"), n, 1);
            let vt = fb.t(v);
            let outer = fb.matmul(v, vt);
            outs.push(fb.add(ab, outer));
        }
        outs
    };
    let build_reco = |fb: &mut laab_framework::FuncBuilder| {
        let a = fb.input("A", n, n);
        let b = fb.input("B", n, n);
        let tmp = fb.matmul(a, b); // hoisted
        let mut outs = Vec::new();
        for i in 0..3 {
            let v = fb.input(&format!("v{i}"), n, 1);
            let vt = fb.t(v);
            let outer = fb.matmul(v, vt);
            outs.push(fb.add(tmp, outer));
        }
        outs
    };
    let f_naive = flow.function(build_naive);
    let f_reco = flow.function(build_reco);
    let ft_naive = torch.function(build_naive);
    let ft_reco = torch.function(build_reco);

    let (nv, nc) = counted(|| f_naive.call(&env));
    let (rv, rc) = counted(|| f_reco.call(&env));
    if cfg.check_numerics {
        for i in 0..3 {
            check_value(cfg, &mut checks, &format!("loop iteration {i}"), &nv[i], &rv[i]);
        }
    }
    checks.push(CheckOutcome {
        name: "LICM: naive loop optimizes to the hoisted graph (1 GEMM + 3 outer products)".into(),
        passed: nc.calls(Kernel::Gemm) == rc.calls(Kernel::Gemm)
            && f_naive.graph().matmul_count() == 4,
        detail: format!("naive: {}; reco: {}", nc.describe(), rc.describe()),
        timing: false,
    });
    let t_naive = time(cfg, || f_naive.call(&env));
    let t_reco = time(cfg, || f_reco.call(&env));
    let tt_naive = time(cfg, || ft_naive.call(&env));
    let tt_reco = time(cfg, || ft_reco.call(&env));
    check_indistinguishable(
        cfg,
        &mut checks,
        "LICM: naive == recommended (the frameworks DO hoist)",
        &t_naive,
        &t_reco,
    );
    table.push_row(vec![
        "Loop-inv code motion".into(),
        fmt_secs(t_naive.min()),
        fmt_secs(t_reco.min()),
        fmt_secs(tt_naive.min()),
        fmt_secs(tt_reco.min()),
    ]);
    analysis.push_row(vec!["loop naive".into(), describe_counts(&nc)]);
    analysis.push_row(vec!["loop reco".into(), describe_counts(&rc)]);

    // ---- Partial operand access: sum ----
    let sum_naive = elem(var("A") + var("B"), 2, 2);
    let sum_reco = elem(var("A"), 2, 2) + elem(var("B"), 2, 2);
    let fsn = flow.function_from_expr(&sum_naive, &ctx);
    let fsr = flow.function_from_expr(&sum_reco, &ctx);
    let tsn_torch = torch.function_from_expr(&sum_naive, &ctx);
    let tsr_torch = torch.function_from_expr(&sum_reco, &ctx);
    let (snv, snc) = counted(|| fsn.call(&env));
    let (srv, src) = counted(|| fsr.call(&env));
    check_value(cfg, &mut checks, "partial sum", &snv[0], &eval(&sum_naive, &env));
    check_value(cfg, &mut checks, "partial sum reco", &srv[0], &eval(&sum_naive, &env));
    checks.push(CheckOutcome {
        name: "partial sum: naive pays full O(n²) GEADD, reco pays O(1)".into(),
        passed: snc.flops(Kernel::GeAdd) >= (n * n) as u64 && src.flops(Kernel::GeAdd) <= 4,
        detail: format!("naive: {}; reco: {}", snc.describe(), src.describe()),
        timing: false,
    });
    let t_sn = time(cfg, || fsn.call(&env));
    let t_sr = time(cfg, || fsr.call(&env));
    let tt_sn = time(cfg, || tsn_torch.call(&env));
    let tt_sr = time(cfg, || tsr_torch.call(&env));
    check_slower(
        &mut checks,
        "partial sum: naive ≫ recommended (no slicing push-down)",
        &t_sn,
        &t_sr,
        2.0,
    );
    table.push_row(vec![
        "Partial-op access (sum)".into(),
        fmt_secs(t_sn.min()),
        fmt_secs(t_sr.min()),
        fmt_secs(tt_sn.min()),
        fmt_secs(tt_sr.min()),
    ]);
    analysis.push_row(vec!["partial sum naive".into(), describe_counts(&snc)]);
    analysis.push_row(vec!["partial sum reco".into(), describe_counts(&src)]);

    // ---- Partial operand access: product ----
    let prod_naive = elem(var("A") * var("B"), 2, 2);
    let prod_reco = var("A").row(2) * var("B").col(2);
    let fpn = flow.function_from_expr(&prod_naive, &ctx);
    let fpr = flow.function_from_expr(&prod_reco, &ctx);
    let tpn_torch = torch.function_from_expr(&prod_naive, &ctx);
    let tpr_torch = torch.function_from_expr(&prod_reco, &ctx);
    let (pnv, pnc) = counted(|| fpn.call(&env));
    let (prv, prc) = counted(|| fpr.call(&env));
    check_value(cfg, &mut checks, "partial product", &pnv[0], &eval(&prod_naive, &env));
    check_value(cfg, &mut checks, "partial product reco", &prv[0], &eval(&prod_naive, &env));
    checks.push(CheckOutcome {
        name: "partial product: naive runs a GEMM, reco runs a DOT".into(),
        passed: pnc.calls(Kernel::Gemm) == 1
            && prc.calls(Kernel::Dot) == 1
            && prc.calls(Kernel::Gemm) == 0,
        detail: format!("naive: {}; reco: {}", pnc.describe(), prc.describe()),
        timing: false,
    });
    let t_pn = time(cfg, || fpn.call(&env));
    let t_pr = time(cfg, || fpr.call(&env));
    let tt_pn = time(cfg, || tpn_torch.call(&env));
    let tt_pr = time(cfg, || tpr_torch.call(&env));
    check_slower(
        &mut checks,
        "partial product: naive ≫ recommended (paper: 0.39 s vs 2e-3 s)",
        &t_pn,
        &t_pr,
        10.0,
    );
    table.push_row(vec![
        "Partial-op access (product)".into(),
        fmt_secs(t_pn.min()),
        fmt_secs(t_pr.min()),
        fmt_secs(tt_pn.min()),
        fmt_secs(tt_pr.min()),
    ]);
    analysis.push_row(vec!["partial product naive".into(), describe_counts(&pnc)]);
    analysis.push_row(vec!["partial product reco".into(), describe_counts(&prc)]);

    ExperimentResult {
        id: "table6".into(),
        title: "Code Motion (Table VI)".into(),
        table,
        analysis,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_reproduces_paper_shape() {
        let cfg = ExperimentConfig::quick(160);
        let r = table6(&cfg);
        assert_eq!(r.table.rows.len(), 3);
        for c in r.asserted_checks() {
            assert!(c.passed, "failed check: {} — {}", c.name, c.detail);
        }
    }
}
