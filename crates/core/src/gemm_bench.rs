//! `laab bench` — the GEMM-engine performance trajectory.
//!
//! The paper's central measurements are ratios of wall-clock GEMM-family
//! timings, so the reproduction is only as credible as its kernels are
//! fast. This module measures the execution engine's GFLOP/s on the
//! canonical shape families — square (256–2048), GEMV-shaped (tall, thin
//! right-hand side), and wide-short (the shape the pre-overhaul engine ran
//! serially) — at 1 and N threads, and emits a machine-readable
//! `BENCH_gemm.json` ([`GEMM_REPORT_SCHEMA`]) that CI uploads per PR.
//!
//! Three summary numbers anchor the trajectory:
//!
//! * `speedup_vs_seed` — single-thread GFLOP/s on the anchor shape
//!   (1024³ `f64`; 256³ under `--quick`) relative to the frozen PR-1
//!   kernel ([`laab_kernels::seed`]), measured in-process under identical
//!   build flags;
//! * `f32_over_f64` — single-thread `f32` over `f64` engine GFLOP/s on
//!   the anchor shape (measured in the same interleave), tracking the
//!   f32/f64 kernel gap: `f32` has twice the SIMD lanes, so the ratio
//!   approaches 2 at microkernel parity and a sustained slide below it
//!   means the `f32` path has fallen behind (the ROADMAP f32 item); and
//! * `wide_short_parallel_speedup` — N-thread over 1-thread time on the
//!   wide-short shape, which the old rows-only split could not
//!   parallelize at all; and
//! * `batch_gflops` — the multi-RHS anchor: a GEMV-shaped product at
//!   batch 1/8/32 (batch 1 = the solo GEMV dispatch, larger batches the
//!   [`laab_kernels::gemm_multi_rhs`] entry), measured in the same
//!   interleave — the kernel-level trajectory behind `laab serve`'s
//!   batched execution.
//!
//! Like every timing in the suite, the numbers are *recorded*
//! unconditionally but *asserted* only under `LAAB_STRICT_TIMING=1`
//! (shared CI runners are too noisy for hard bands).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use laab_dense::gen::OperandGen;
use laab_dense::Matrix;
use laab_kernels::{gemm, matmul_dispatch, matmul_multi_rhs, seed, set_num_threads, Trans};

/// Schema tag of the `BENCH_gemm.json` report, bumped on breaking
/// changes. `v3`: adds the multi-RHS anchor (`batch_sizes`,
/// `batch_gflops` — the GEMV-shaped product at batch 1/8/32, measured in
/// the same interleave).
pub const GEMM_REPORT_SCHEMA: &str = "laab-gemm-bench-v3";

/// Configuration for one bench run.
#[derive(Debug, Clone)]
pub struct GemmBenchConfig {
    /// Timed repetitions per shape (best-of).
    pub reps: usize,
    /// Discarded warmup runs per shape.
    pub warmup: usize,
    /// Thread count for the N-thread measurements; `0` means "detected
    /// hardware parallelism".
    pub threads: usize,
    /// Shrink every shape for CI smoke runs.
    pub quick: bool,
    /// Operand seed.
    pub seed: u64,
}

impl Default for GemmBenchConfig {
    fn default() -> Self {
        Self { reps: 5, warmup: 1, threads: 0, quick: false, seed: 0x1AAB }
    }
}

impl GemmBenchConfig {
    /// The resolved N-thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// One `(shape, dtype, thread-count)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmShapeRecord {
    /// Shape-family name (`"square1024"`, `"gemv_shaped"`, `"wide_short"`).
    pub name: String,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Element type (BLAS-style `"f32"`/`"f64"`).
    pub dtype: String,
    /// Threads used for this measurement.
    pub threads: usize,
    /// Best wall-clock seconds over the timed repetitions.
    pub best_secs: f64,
    /// `2mnk / best_secs / 1e9`.
    pub gflops: f64,
}

/// Summary ratios anchoring the perf trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmSummary {
    /// Anchor shape name (`"square1024"` or `"square256"` under quick).
    pub anchor: String,
    /// Frozen seed-kernel single-thread GFLOP/s on the anchor shape.
    pub seed_gflops: f64,
    /// Engine single-thread GFLOP/s on the anchor shape.
    pub engine_gflops: f64,
    /// `engine_gflops / seed_gflops` (acceptance: ≥ 2 on capable runners).
    pub speedup_vs_seed: f64,
    /// Engine single-thread `f32` GFLOP/s on the anchor shape, measured
    /// in the same interleave as the `f64` rows.
    pub f32_engine_gflops: f64,
    /// `f32_engine_gflops / engine_gflops` — the f32/f64 kernel gap
    /// (→ 2 at SIMD lane-width parity; a sustained slide below ~1.5 on
    /// AVX2-class hardware flags the f32 microkernels lagging).
    pub f32_over_f64: f64,
    /// Wide-short shape: 1-thread time over N-thread time (> 1 shows the
    /// previously-serial shape now parallelizes).
    pub wide_short_parallel_speedup: f64,
    /// Batch sizes of the multi-RHS anchor rows (`[1, 8, 32]`): a
    /// GEMV-shaped product `A·x` with `batch` stacked right-hand sides.
    pub batch_sizes: Vec<usize>,
    /// Effective GFLOP/s at each batch size, measured interleaved
    /// (batch 1 is the solo GEMV dispatch — the memory-bound Level-2
    /// floor; larger batches amortize the `A` traffic through the
    /// multi-RHS GEMM entry, so the trajectory climbs toward the
    /// compute-bound GEMM rate — the serving layer's batching lever).
    pub batch_gflops: Vec<f64>,
    /// Threads used for the N-thread measurements.
    pub threads: usize,
}

/// The full machine-readable report (`BENCH_gemm.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmReport {
    /// Format tag ([`GEMM_REPORT_SCHEMA`]).
    pub schema: String,
    /// Whether the quick protocol was used.
    pub quick: bool,
    /// Timed repetitions per shape.
    pub reps: usize,
    /// Operand seed.
    pub seed: u64,
    /// Every measurement, in execution order.
    pub shapes: Vec<GemmShapeRecord>,
    /// Trajectory anchors.
    pub summary: GemmSummary,
}

impl GemmReport {
    /// Serialize as pretty-printed JSON (the on-disk `BENCH_gemm.json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("GemmReport serializes infallibly")
    }

    /// Parse a report back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let report: GemmReport = serde_json::from_str(text)?;
        if report.schema != GEMM_REPORT_SCHEMA {
            return Err(serde_json::Error(format!(
                "unsupported report schema `{}` (expected `{GEMM_REPORT_SCHEMA}`)",
                report.schema
            )));
        }
        Ok(report)
    }

    /// One-row-per-measurement overview for terminal output.
    pub fn summary_table(&self) -> laab_stats::Table {
        let mut t = laab_stats::Table::new(
            format!(
                "GEMM engine (best of {} reps; {}× vs seed kernel on {})",
                self.reps,
                round2(self.summary.speedup_vs_seed),
                self.summary.anchor
            ),
            &["shape", "m", "n", "k", "dtype", "threads", "GFLOP/s"],
        );
        for r in &self.shapes {
            t.push_row(vec![
                r.name.clone(),
                r.m.to_string(),
                r.n.to_string(),
                r.k.to_string(),
                r.dtype.clone(),
                r.threads.to_string(),
                format!("{:.2}", r.gflops),
            ]);
        }
        t
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// The shape families of one protocol: `(name, m, n, k)`.
fn shapes(quick: bool) -> Vec<(&'static str, usize, usize, usize)> {
    if quick {
        vec![
            ("square128", 128, 128, 128),
            ("square256", 256, 256, 256),
            ("gemv_shaped", 1024, 8, 1024),
            ("wide_short", 24, 2048, 256),
        ]
    } else {
        vec![
            ("square256", 256, 256, 256),
            ("square512", 512, 512, 512),
            ("square1024", 1024, 1024, 1024),
            ("square2048", 2048, 2048, 2048),
            ("gemv_shaped", 4096, 8, 4096),
            ("wide_short", 24, 8192, 384),
        ]
    }
}

/// Best-of-`reps` wall time of `f` after `warmup` discarded runs.
fn best_secs(reps: usize, warmup: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64 / secs / 1e9
}

/// Run the full protocol and collect the report.
///
/// Temporarily adjusts the global kernel thread count; restores 1 thread
/// (the paper's default) before returning.
pub fn run(cfg: &GemmBenchConfig) -> GemmReport {
    let n_threads = cfg.resolved_threads();
    let mut records = Vec::new();
    let mut wide_short_t1 = f64::NAN;
    let mut wide_short_tn = f64::NAN;
    let mut g = OperandGen::new(cfg.seed);

    for (name, m, n, k) in shapes(cfg.quick) {
        let a = g.matrix::<f64>(m, k);
        let b = g.matrix::<f64>(k, n);
        let mut c = Matrix::<f64>::zeros(m, n);
        for threads in thread_settings(n_threads) {
            set_num_threads(threads);
            let secs = best_secs(cfg.reps, cfg.warmup, || {
                gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            });
            if name == "wide_short" {
                if threads == 1 {
                    wide_short_t1 = secs;
                } else {
                    wide_short_tn = secs;
                }
            }
            records.push(GemmShapeRecord {
                name: name.to_string(),
                m,
                n,
                k,
                dtype: "f64".to_string(),
                threads,
                best_secs: secs,
                gflops: gflops(m, n, k, secs),
            });
        }
    }
    set_num_threads(1);

    // dtype coverage: one f32 square at single thread.
    {
        let n = if cfg.quick { 256 } else { 1024 };
        let a = g.matrix::<f32>(n, n);
        let b = g.matrix::<f32>(n, n);
        let mut c = Matrix::<f32>::zeros(n, n);
        let secs = best_secs(cfg.reps, cfg.warmup, || {
            gemm(1.0f32, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
        });
        records.push(GemmShapeRecord {
            name: format!("square{n}"),
            m: n,
            n,
            k: n,
            dtype: "f32".to_string(),
            threads: 1,
            best_secs: secs,
            gflops: gflops(n, n, n, secs),
        });
    }

    // Anchor comparisons, single thread: engine vs the frozen seed
    // kernel (f64), and engine f32 vs engine f64 — the f32/f64 kernel
    // gap. The repetitions interleave all three kernels so transient
    // machine load hits every measurement equally — the ratios are far
    // more stable than back-to-back best-of runs on a shared box.
    let anchor_n = if cfg.quick { 256 } else { 1024 };
    let anchor = format!("square{anchor_n}");
    let (engine_gflops, seed_gflops, f32_engine_gflops) = {
        let a = g.matrix::<f64>(anchor_n, anchor_n);
        let b = g.matrix::<f64>(anchor_n, anchor_n);
        let mut c = Matrix::<f64>::zeros(anchor_n, anchor_n);
        let a32 = g.matrix::<f32>(anchor_n, anchor_n);
        let b32 = g.matrix::<f32>(anchor_n, anchor_n);
        let mut c32 = Matrix::<f32>::zeros(anchor_n, anchor_n);
        let (mut engine_best, mut seed_best, mut f32_best) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for rep in 0..cfg.warmup + cfg.reps.max(1) {
            let t0 = Instant::now();
            gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            let engine_secs = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            seed::gemm_seed(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            let seed_secs = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            gemm(1.0f32, &a32, Trans::No, &b32, Trans::No, 0.0, &mut c32);
            let f32_secs = t0.elapsed().as_secs_f64();
            if rep >= cfg.warmup {
                engine_best = engine_best.min(engine_secs);
                seed_best = seed_best.min(seed_secs);
                f32_best = f32_best.min(f32_secs);
            }
        }
        (
            gflops(anchor_n, anchor_n, anchor_n, engine_best),
            gflops(anchor_n, anchor_n, anchor_n, seed_best),
            gflops(anchor_n, anchor_n, anchor_n, f32_best),
        )
    };

    // Multi-RHS anchor: the GEMV-shaped product at batch 1/8/32, single
    // thread, all three batch sizes interleaved per repetition (the same
    // protocol as the seed ratio — transient load hits every batch size
    // equally, so the amortization trajectory is stable on a noisy box).
    // Batch 1 runs the solo dispatch (GEMV), exactly what a non-batching
    // server executes per request; batches 8/32 run the multi-RHS entry.
    const BATCH_SIZES: [usize; 3] = [1, 8, 32];
    let mr_n = if cfg.quick { 256 } else { 2048 };
    let batch_gflops: Vec<f64> = {
        let a = g.matrix::<f64>(mr_n, mr_n);
        let parts: Vec<Matrix<f64>> =
            (0..*BATCH_SIZES.last().unwrap()).map(|_| g.matrix::<f64>(mr_n, 1)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        let mut best = [f64::INFINITY; BATCH_SIZES.len()];
        for rep in 0..cfg.warmup + cfg.reps.max(1) {
            for (bi, &q) in BATCH_SIZES.iter().enumerate() {
                let t0 = Instant::now();
                if q == 1 {
                    std::hint::black_box(matmul_dispatch(1.0, &a, Trans::No, refs[0], Trans::No));
                } else {
                    std::hint::black_box(matmul_multi_rhs(1.0, &a, Trans::No, &refs[..q]));
                }
                let secs = t0.elapsed().as_secs_f64();
                if rep >= cfg.warmup {
                    best[bi] = best[bi].min(secs);
                }
            }
        }
        for (&q, &secs) in BATCH_SIZES.iter().zip(&best) {
            records.push(GemmShapeRecord {
                name: format!("multi_rhs_b{q}"),
                m: mr_n,
                n: q,
                k: mr_n,
                dtype: "f64".to_string(),
                threads: 1,
                best_secs: secs,
                gflops: gflops(mr_n, q, mr_n, secs),
            });
        }
        BATCH_SIZES.iter().zip(&best).map(|(&q, &secs)| gflops(mr_n, q, mr_n, secs)).collect()
    };

    let wide_short_parallel_speedup =
        if wide_short_tn.is_finite() { wide_short_t1 / wide_short_tn } else { 1.0 };

    GemmReport {
        schema: GEMM_REPORT_SCHEMA.to_string(),
        quick: cfg.quick,
        reps: cfg.reps,
        seed: cfg.seed,
        shapes: records,
        summary: GemmSummary {
            anchor,
            seed_gflops,
            engine_gflops,
            speedup_vs_seed: engine_gflops / seed_gflops,
            f32_engine_gflops,
            f32_over_f64: f32_engine_gflops / engine_gflops,
            wide_short_parallel_speedup,
            batch_sizes: BATCH_SIZES.to_vec(),
            batch_gflops,
            threads: n_threads,
        },
    }
}

/// `[1]` on single-core machines, `[1, N]` otherwise.
fn thread_settings(n_threads: usize) -> Vec<usize> {
    if n_threads > 1 {
        vec![1, n_threads]
    } else {
        vec![1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GemmBenchConfig {
        // Deliberately minuscule: correctness of the plumbing, not timing.
        GemmBenchConfig { reps: 1, warmup: 0, threads: 2, quick: true, seed: 7 }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run(&tiny_cfg());
        let back = GemmReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(back, report);
        assert_eq!(report.schema, GEMM_REPORT_SCHEMA);
    }

    #[test]
    fn report_covers_every_shape_family_and_both_thread_counts() {
        let report = run(&tiny_cfg());
        for family in ["square128", "square256", "gemv_shaped", "wide_short"] {
            assert!(
                report.shapes.iter().any(|r| r.name == family && r.dtype == "f64"),
                "missing family {family}"
            );
        }
        assert!(report.shapes.iter().any(|r| r.threads == 2), "missing N-thread records");
        assert!(report.shapes.iter().any(|r| r.dtype == "f32"), "missing f32 coverage");
        assert!(report.shapes.iter().all(|r| r.gflops > 0.0 && r.best_secs > 0.0));
        assert!(report.summary.seed_gflops > 0.0 && report.summary.engine_gflops > 0.0);
        // The multi-RHS anchor rides the interleave at batch 1/8/32.
        assert_eq!(report.summary.batch_sizes, vec![1, 8, 32]);
        assert_eq!(report.summary.batch_gflops.len(), 3);
        assert!(report.summary.batch_gflops.iter().all(|&g| g > 0.0 && g.is_finite()));
        for q in [1usize, 8, 32] {
            let name = format!("multi_rhs_b{q}");
            let rec = report.shapes.iter().find(|r| r.name == name).expect("multi-RHS record");
            assert_eq!((rec.n, rec.threads), (q, 1));
        }
        // The f32 anchor rides the same interleave as the seed ratio.
        assert!(report.summary.f32_engine_gflops > 0.0, "missing f32 anchor");
        assert!(
            report.summary.f32_over_f64 > 0.0 && report.summary.f32_over_f64.is_finite(),
            "f32/f64 gap must be a finite ratio, got {}",
            report.summary.f32_over_f64
        );
        // (No assert on num_threads() here: sibling tests run() concurrently
        // and legitimately hold the process-global count at 2 mid-flight.)
    }

    #[test]
    fn bad_schema_is_rejected() {
        let mut report = run(&GemmBenchConfig { threads: 1, ..tiny_cfg() });
        report.schema = "laab-gemm-bench-v0".into();
        assert!(GemmReport::from_json(&report.to_json()).is_err());
    }

    #[test]
    fn strict_timing_bands() {
        // Timing-sensitive: asserted only under LAAB_STRICT_TIMING=1 (and
        // always at full protocol there — quick shapes are too small for
        // stable ratios on shared runners).
        if std::env::var("LAAB_STRICT_TIMING").as_deref() != Ok("1") {
            return;
        }
        let report = run(&GemmBenchConfig::default());
        assert!(
            report.summary.speedup_vs_seed >= 2.0,
            "engine vs seed on {}: {:.2}x < 2x",
            report.summary.anchor,
            report.summary.speedup_vs_seed
        );
        if report.summary.threads > 1 {
            assert!(
                report.summary.wide_short_parallel_speedup > 1.0,
                "wide-short parallel speedup {:.2}x not > 1x",
                report.summary.wide_short_parallel_speedup
            );
        }
    }
}
