//! # laab-core — the Linear Algebra Awareness Benchmark suite
//!
//! The paper's primary contribution, reproduced as a library: one function
//! per table/figure of the evaluation section, each returning an
//! [`ExperimentResult`] containing
//!
//! * a **timing table** in the paper's format (minimum of R repetitions,
//!   single-threaded by default),
//! * an **analytical table** of kernel calls and FLOPs recorded by the
//!   substrate's instrumentation (the deterministic counterpart of every
//!   timing claim — this is what the test-suite asserts), and
//! * a list of **checks**: the paper's qualitative findings ("the execution
//!   time for `E1` is close to that for `S`", "the frameworks do not choose
//!   the optimal parenthesization", …) evaluated against the measured data
//!   with bootstrap significance tests.
//!
//! | Function | Paper artifact |
//! |----------|---------------|
//! | [`experiments::fig1`](fn@experiments::fig1) | Fig. 1 — image-restoration variants |
//! | [`experiments::table1`](fn@experiments::table1) | Table I — MKL-C vs Eager vs Graph |
//! | [`experiments::table2`](fn@experiments::table2) | Table II — common-subexpression elimination |
//! | [`experiments::table3`](fn@experiments::table3) | Table III — matrix-chain evaluation |
//! | [`experiments::table4`](fn@experiments::table4) | Table IV — matrix properties |
//! | [`experiments::table5`](fn@experiments::table5) | Table V — algebraic manipulation |
//! | [`experiments::table6`](fn@experiments::table6) | Table VI — code motion |
//! | [`experiments::fig6`](fn@experiments::fig6) | Fig. 6 — same-FLOP instruction orders |
//! | [`experiments::fig7`](fn@experiments::fig7) | Fig. 7 — the five orders of a 4-chain |

#![deny(missing_docs)]

pub mod baselines;
pub mod bench_registry;
pub mod experiments;
pub mod gemm_bench;
pub mod runner;
pub mod workloads;

use laab_stats::{Table, TimingConfig};
use serde::{Deserialize, Serialize};

/// Global experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Problem size (the paper uses n = 3000; the default here is sized for
    /// a laptop-class single core — conclusions are n-independent ratios).
    pub n: usize,
    /// Timing protocol (paper: min of 20 repetitions).
    pub timing: TimingConfig,
    /// Operand seed.
    pub seed: u64,
    /// Cross-validate every variant numerically against the oracle before
    /// timing it.
    pub check_numerics: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { n: 512, timing: TimingConfig::default(), seed: 0x1AAB, check_numerics: true }
    }
}

impl ExperimentConfig {
    /// Quick configuration for tests and smoke runs.
    pub fn quick(n: usize) -> Self {
        Self { n, timing: TimingConfig::quick(), ..Self::default() }
    }
}

/// One qualitative finding of the paper, re-evaluated on measured data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// What the paper claims (short form).
    pub name: String,
    /// Whether our measurement reproduces it.
    pub passed: bool,
    /// Supporting numbers (ratios, CIs).
    pub detail: String,
    /// `true` when the check compares wall-clock measurements, which jitter
    /// under CPU contention (e.g. parallel test runs). Deterministic checks
    /// (kernel counts, FLOPs, numerics, rewriter output) are `false` and
    /// are the ones the test suite asserts unconditionally.
    pub timing: bool,
}

impl CheckOutcome {
    fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        Self { name: name.into(), passed, detail: detail.into(), timing: false }
    }

    /// A check that the wall-clock `ratio` lies within `[lo, hi]`.
    pub fn ratio(name: impl Into<String>, ratio: f64, lo: f64, hi: f64) -> Self {
        Self {
            timing: true,
            ..Self::new(
                name,
                ratio >= lo && ratio <= hi,
                format!("ratio = {ratio:.2} (expected in [{lo:.2}, {hi:.2}])"),
            )
        }
    }
}

/// `true` when `LAAB_STRICT_TIMING` is set: test assertions then also cover
/// the timing-sensitive checks, not just the deterministic ones. Leave it
/// unset on shared/parallel machines where wall-clock bands jitter.
pub fn strict_timing() -> bool {
    std::env::var_os("LAAB_STRICT_TIMING").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The outcome of one experiment (one table or figure of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Stable identifier (`"table2"`, `"fig1"`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Timing table (paper format).
    pub table: Table,
    /// Kernel-call / FLOP table (deterministic).
    pub analysis: Table,
    /// The paper's findings, re-checked.
    pub checks: Vec<CheckOutcome>,
}

impl ExperimentResult {
    /// `true` when every check reproduced the paper's finding.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The checks tests assert on: always the deterministic ones, plus the
    /// timing-sensitive ones when [`strict_timing`] is enabled.
    pub fn asserted_checks(&self) -> impl Iterator<Item = &CheckOutcome> {
        let strict = strict_timing();
        self.checks.iter().filter(move |c| !c.timing || strict)
    }

    /// Render the full result (both tables + checks) as markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("## {} ({})\n\n", self.title, self.id);
        s.push_str(&self.table.to_markdown());
        s.push('\n');
        s.push_str(&self.analysis.to_markdown());
        s.push_str("\n**Paper findings re-checked:**\n\n");
        for c in &self.checks {
            s.push_str(&format!(
                "- [{}] {} — {}\n",
                if c.passed { "x" } else { " " },
                c.name,
                c.detail
            ));
        }
        s
    }
}

/// Run the complete suite in paper order.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<ExperimentResult> {
    vec![
        experiments::fig1(cfg),
        experiments::table1(cfg),
        experiments::table2(cfg),
        experiments::table3(cfg),
        experiments::fig7(cfg),
        experiments::table4(cfg),
        experiments::table5(cfg),
        experiments::fig6(cfg),
        experiments::table6(cfg),
        experiments::ext_solve(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_protocol() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.timing.reps, 20);
        assert!(cfg.check_numerics);
    }

    #[test]
    fn check_outcome_ratio_bounds() {
        assert!(CheckOutcome::ratio("r", 2.0, 1.5, 2.5).passed);
        assert!(!CheckOutcome::ratio("r", 3.0, 1.5, 2.5).passed);
        let c = CheckOutcome::ratio("r", 2.0, 1.5, 2.5);
        assert!(c.detail.contains("2.00"));
    }

    #[test]
    fn experiment_result_markdown() {
        let r = ExperimentResult {
            id: "t".into(),
            title: "T".into(),
            table: Table::new("timings", &["a"]),
            analysis: Table::new("analysis", &["a"]),
            checks: vec![CheckOutcome::new("claim", true, "ok")],
        };
        let md = r.to_markdown();
        assert!(md.contains("## T (t)"));
        assert!(md.contains("- [x] claim"));
        assert!(r.all_checks_pass());
    }
}
