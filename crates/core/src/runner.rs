//! The experiment runner behind the `laab` CLI: a registry of the paper's
//! experiments by stable name, a configurable execution loop, and a
//! machine-readable JSON report (`BENCH_*.json`) for perf-trajectory
//! tooling.
//!
//! ```
//! use laab_core::runner::{self, Experiment};
//! use laab_core::ExperimentConfig;
//!
//! let cfg = ExperimentConfig::quick(48);
//! let plan = runner::parse_experiments(&["table2".into()]).unwrap();
//! let report = runner::run(&cfg, &plan);
//! assert_eq!(report.experiments[0].id, "table2");
//! let json = report.to_json();
//! let back = runner::RunReport::from_json(&json).unwrap();
//! assert_eq!(back, report);
//! ```

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::{experiments, ExperimentConfig, ExperimentResult};
use laab_stats::Table;

/// Schema tag embedded in every report, bumped on breaking JSON changes.
pub const REPORT_SCHEMA: &str = "laab-bench-v1";

/// One runnable paper experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the paper's table/figure names
pub enum Experiment {
    Fig1,
    Table1,
    Table2,
    Table3,
    Table4,
    Table5,
    Table6,
    Fig6,
    Fig7,
    ExtSolve,
}

impl Experiment {
    /// Every experiment, in the paper's presentation order (the order
    /// [`crate::run_all`] uses).
    pub const ALL: [Experiment; 10] = [
        Experiment::Fig1,
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Table3,
        Experiment::Fig7,
        Experiment::Table4,
        Experiment::Table5,
        Experiment::Fig6,
        Experiment::Table6,
        Experiment::ExtSolve,
    ];

    /// Stable identifier used on the CLI and in JSON (`"table2"`, …).
    pub fn id(self) -> &'static str {
        match self {
            Experiment::Fig1 => "fig1",
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Table4 => "table4",
            Experiment::Table5 => "table5",
            Experiment::Table6 => "table6",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::ExtSolve => "ext_solve",
        }
    }

    /// Short human description (what the paper artifact shows).
    pub fn describe(self) -> &'static str {
        match self {
            Experiment::Fig1 => "Fig. 1 — image-restoration variants",
            Experiment::Table1 => "Table I — MKL-C vs Eager vs Graph",
            Experiment::Table2 => "Table II — common-subexpression elimination",
            Experiment::Table3 => "Table III — matrix-chain evaluation",
            Experiment::Table4 => "Table IV — matrix properties",
            Experiment::Table5 => "Table V — algebraic manipulation",
            Experiment::Table6 => "Table VI — code motion",
            Experiment::Fig6 => "Fig. 6 — same-FLOP instruction orders",
            Experiment::Fig7 => "Fig. 7 — the five orders of a 4-chain",
            Experiment::ExtSolve => "Extension — linear-system solve strategies",
        }
    }

    /// Resolve a CLI/JSON name (case-insensitive) to an experiment.
    pub fn from_name(name: &str) -> Result<Self, UnknownExperiment> {
        let lower = name.to_ascii_lowercase();
        Experiment::ALL
            .into_iter()
            .find(|e| e.id() == lower)
            .ok_or_else(|| UnknownExperiment { name: name.to_string() })
    }

    /// Execute this experiment under `cfg`.
    pub fn run(self, cfg: &ExperimentConfig) -> ExperimentResult {
        match self {
            Experiment::Fig1 => experiments::fig1(cfg),
            Experiment::Table1 => experiments::table1(cfg),
            Experiment::Table2 => experiments::table2(cfg),
            Experiment::Table3 => experiments::table3(cfg),
            Experiment::Table4 => experiments::table4(cfg),
            Experiment::Table5 => experiments::table5(cfg),
            Experiment::Table6 => experiments::table6(cfg),
            Experiment::Fig6 => experiments::fig6(cfg),
            Experiment::Fig7 => experiments::fig7(cfg),
            Experiment::ExtSolve => experiments::ext_solve(cfg),
        }
    }
}

/// Error for a name that matches no experiment. Its `Display` lists every
/// valid name so CLI users see the menu.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment {
    /// The offending input.
    pub name: String,
}

impl std::fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let valid: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
        write!(f, "unknown experiment `{}` (valid: {})", self.name, valid.join(", "))
    }
}

impl std::error::Error for UnknownExperiment {}

/// Resolve a list of CLI names into an execution plan.
///
/// An empty list means "everything, in paper order". Duplicates are kept
/// (running an experiment twice is a legitimate stability check); unknown
/// names are rejected with the full menu in the error.
pub fn parse_experiments(names: &[String]) -> Result<Vec<Experiment>, UnknownExperiment> {
    if names.is_empty() {
        return Ok(Experiment::ALL.to_vec());
    }
    names.iter().map(|n| Experiment::from_name(n)).collect()
}

/// One executed experiment inside a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Stable experiment id (`"table2"`, …).
    pub id: String,
    /// Wall-clock seconds the whole experiment took (all variants,
    /// including warmups and numeric cross-validation).
    pub wall_secs: f64,
    /// How many paper findings reproduced.
    pub checks_passed: usize,
    /// Total paper findings evaluated.
    pub checks_total: usize,
    /// The full result: timing table, analysis table, per-check detail.
    pub result: ExperimentResult,
}

/// A machine-readable benchmark run: configuration + every result, in
/// execution order. This is the `BENCH_*.json` format the perf-trajectory
/// tooling consumes; see [`REPORT_SCHEMA`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Format tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Problem size `n`.
    pub n: usize,
    /// Timed repetitions per variant.
    pub reps: usize,
    /// Warmup runs per variant.
    pub warmup: usize,
    /// Operand seed.
    pub seed: u64,
    /// Whether numeric cross-validation ran.
    pub check_numerics: bool,
    /// The executed experiments, in order.
    pub experiments: Vec<RunRecord>,
}

impl RunReport {
    /// Serialize as pretty-printed JSON (the on-disk `BENCH_*.json` form).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serializes infallibly")
    }

    /// Parse a report back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let report: RunReport = serde_json::from_str(text)?;
        if report.schema != REPORT_SCHEMA {
            return Err(serde_json::Error(format!(
                "unsupported report schema `{}` (expected `{REPORT_SCHEMA}`)",
                report.schema
            )));
        }
        Ok(report)
    }

    /// `true` when every executed experiment reproduced every finding.
    pub fn all_checks_pass(&self) -> bool {
        self.experiments.iter().all(|r| r.checks_passed == r.checks_total)
    }

    /// A one-row-per-experiment overview table for terminal output.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            format!("LAAB run summary (n = {}, min of {} reps)", self.n, self.reps),
            &["experiment", "wall [s]", "checks"],
        );
        for r in &self.experiments {
            t.push_row(vec![
                r.id.clone(),
                format!("{:.2}", r.wall_secs),
                format!("{}/{}", r.checks_passed, r.checks_total),
            ]);
        }
        t
    }
}

/// Execute `plan` under `cfg`, collecting a [`RunReport`].
///
/// Equivalent to [`run_with`] with a no-op observer.
pub fn run(cfg: &ExperimentConfig, plan: &[Experiment]) -> RunReport {
    run_with(cfg, plan, |_, _| {})
}

/// Execute `plan` under `cfg`, invoking `observer` with each result as it
/// completes (the CLI uses this to stream tables while the run continues).
pub fn run_with(
    cfg: &ExperimentConfig,
    plan: &[Experiment],
    mut observer: impl FnMut(Experiment, &RunRecord),
) -> RunReport {
    let mut records = Vec::with_capacity(plan.len());
    for &exp in plan {
        let t0 = Instant::now();
        let result = exp.run(cfg);
        let wall_secs = t0.elapsed().as_secs_f64();
        let record = RunRecord {
            id: result.id.clone(),
            wall_secs,
            checks_passed: result.checks.iter().filter(|c| c.passed).count(),
            checks_total: result.checks.len(),
            result,
        };
        observer(exp, &record);
        records.push(record);
    }
    RunReport {
        schema: REPORT_SCHEMA.to_string(),
        n: cfg.n,
        reps: cfg.timing.reps,
        warmup: cfg.timing.warmup,
        seed: cfg.seed,
        check_numerics: cfg.check_numerics,
        experiments: records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_parses_back_to_itself() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_name(e.id()).unwrap(), e);
            assert_eq!(Experiment::from_name(&e.id().to_ascii_uppercase()).unwrap(), e);
        }
    }

    #[test]
    fn unknown_names_are_rejected_with_menu() {
        let err = Experiment::from_name("table9").unwrap_err();
        assert_eq!(err.name, "table9");
        let msg = err.to_string();
        assert!(msg.contains("unknown experiment `table9`"));
        assert!(msg.contains("table1"));
        assert!(msg.contains("ext_solve"));

        assert!(parse_experiments(&["table1".into(), "nope".into()]).is_err());
    }

    #[test]
    fn empty_plan_means_all_in_paper_order() {
        let plan = parse_experiments(&[]).unwrap();
        assert_eq!(plan, Experiment::ALL.to_vec());
    }

    #[test]
    fn explicit_plan_preserves_order_and_duplicates() {
        let plan = parse_experiments(&["table3".into(), "fig1".into(), "table3".into()]).unwrap();
        assert_eq!(plan, vec![Experiment::Table3, Experiment::Fig1, Experiment::Table3]);
    }
}
