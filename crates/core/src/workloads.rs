//! Operand environments for the experiments.
//!
//! Every experiment draws its operands from a seeded generator so that runs
//! are reproducible and the eager/graph/hand-coded columns all see the same
//! data. Precision is `f32`, the frameworks' default (paper, footnote 3).

use laab_dense::gen::OperandGen;
use laab_dense::{Diagonal, Tridiagonal};
use laab_expr::eval::Env;
use laab_expr::{Context, Props};

use crate::ExperimentConfig;

/// The standard square workload: `A, B, C, H ∈ Rⁿˣⁿ`, `x, y ∈ Rⁿ`.
pub fn square_env(cfg: &ExperimentConfig) -> Env<f32> {
    let n = cfg.n;
    let mut g = OperandGen::new(cfg.seed);
    Env::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("C", g.matrix(n, n))
        .with("H", g.matrix(n, n))
        .with("x", g.matrix(n, 1))
        .with("y", g.matrix(n, 1))
}

/// Context for [`square_env`] (no properties — general matrices).
pub fn square_ctx(cfg: &ExperimentConfig) -> Context {
    let n = cfg.n;
    Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with("C", n, n)
        .with("H", n, n)
        .with("x", n, 1)
        .with("y", n, 1)
}

/// Structured operands for Experiment 3 (Table IV): a lower-triangular `L`,
/// a tridiagonal `T`, a diagonal `D` (compact forms returned alongside the
/// dense environment bindings).
pub struct StructuredWorkload {
    /// Environment binding `A`, `B`, `L`, `T`, `D` (all dense).
    pub env: Env<f32>,
    /// Context declaring the structures.
    pub ctx: Context,
    /// Compact tridiagonal form of `T`.
    pub tri: Tridiagonal<f32>,
    /// Compact diagonal form of `D`.
    pub diag: Diagonal<f32>,
}

/// Build the Table IV workload.
pub fn structured(cfg: &ExperimentConfig) -> StructuredWorkload {
    let n = cfg.n;
    let mut g = OperandGen::new(cfg.seed.wrapping_add(1));
    let a = g.matrix::<f32>(n, n);
    let b = g.matrix::<f32>(n, n);
    let l = g.lower_triangular::<f32>(n);
    let tri = g.tridiagonal::<f32>(n);
    let diag = g.diagonal::<f32>(n);
    let env = Env::new()
        .with("A", a)
        .with("B", b)
        .with("L", l)
        .with("T", tri.to_dense())
        .with("D", diag.to_dense());
    let ctx = Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with_props("L", n, n, Props::LOWER_TRIANGULAR)
        .with_props("T", n, n, Props::TRIDIAGONAL)
        .with_props("D", n, n, Props::DIAGONAL);
    StructuredWorkload { env, ctx, tri, diag }
}

/// Blocked operands for Table V / Eq. 11: `A1, A2 ∈ R^(n/2×n/2)`,
/// `B1, B2 ∈ R^(n/2×n)`.
pub fn blocked_env(cfg: &ExperimentConfig) -> (Env<f32>, Context) {
    let n = cfg.n & !1; // even
    let h = n / 2;
    let mut g = OperandGen::new(cfg.seed.wrapping_add(2));
    let (a1, a2, b1, b2) = g.blocked_operands::<f32>(n);
    let env = Env::new().with("A1", a1).with("A2", a2).with("B1", b1).with("B2", b2);
    let ctx = Context::new().with("A1", h, h).with("A2", h, h).with("B1", h, n).with("B2", h, n);
    (env, ctx)
}

/// Loop-workload vectors for Table VI: `v1, v2, v3 ∈ Rⁿ` on top of
/// [`square_env`].
pub fn loop_env(cfg: &ExperimentConfig) -> Env<f32> {
    let mut env = square_env(cfg);
    let mut g = OperandGen::new(cfg.seed.wrapping_add(3));
    for i in 0..3 {
        env.insert(&format!("v{i}"), g.matrix(cfg.n, 1));
    }
    env
}

/// The mixed-size 4-chain of Fig. 7: sizes chosen so that all five
/// parenthesizations have clearly distinct FLOP counts and the optimum is
/// the mixed order.
pub fn fig7_dims(cfg: &ExperimentConfig) -> Vec<usize> {
    let n = cfg.n;
    // A: n×n, B: n×n/4, C: n/4×n, D: n×n/8  →  dims [n, n, n/4, n, n/8]
    vec![n, n, n / 4, n, n / 8]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environments_are_reproducible() {
        let cfg = ExperimentConfig::quick(16);
        let e1 = square_env(&cfg);
        let e2 = square_env(&cfg);
        assert_eq!(e1.expect("A"), e2.expect("A"));
        assert_eq!(e1.expect("x").shape(), (16, 1));
    }

    #[test]
    fn structured_bindings_match_compact_forms() {
        let cfg = ExperimentConfig::quick(12);
        let w = structured(&cfg);
        assert_eq!(w.env.expect("T"), &w.tri.to_dense());
        assert_eq!(w.env.expect("D"), &w.diag.to_dense());
        assert!(w.ctx.expect("L").props.contains(Props::LOWER_TRIANGULAR));
        assert!(w.ctx.expect("T").props.contains(Props::TRIDIAGONAL));
        assert!(w.ctx.expect("D").props.contains(Props::DIAGONAL));
    }

    #[test]
    fn blocked_shapes_are_conformal() {
        let cfg = ExperimentConfig::quick(10);
        let (env, ctx) = blocked_env(&cfg);
        assert_eq!(env.expect("A1").shape(), (5, 5));
        assert_eq!(env.expect("B1").shape(), (5, 10));
        assert_eq!(ctx.expect("A2").shape.rows, 5);
    }

    #[test]
    fn fig7_dims_are_distinct() {
        let cfg = ExperimentConfig::quick(64);
        let dims = fig7_dims(&cfg);
        assert_eq!(dims.len(), 5);
        let trees = laab_chain::enumerate_parenthesizations(4);
        let costs: Vec<u64> = trees.iter().map(|t| t.cost(&dims)).collect();
        let mut unique = costs.clone();
        unique.sort();
        unique.dedup();
        assert!(unique.len() >= 3, "orders should have distinct costs: {costs:?}");
    }
}
