//! # laab-deferred — the lazy, fusing accelerator-model backend
//!
//! The three synchronous backends (`engine`/`seed`/`reference`) all
//! execute a node the moment the executor reaches it. Real accelerator
//! runtimes do not: dispatch is *deferred* — ops queue on a tape, and a
//! flush launches whole groups at once, paying one kernel-launch latency
//! per **group** rather than per op. In that regime fusion is the whole
//! game: every op a flush can merge into an already-paid launch is a
//! dispatch saved, which is exactly the overhead TF/PyTorch eager mode
//! cannot recover and graph mode can (the source paper's Sec. III gap,
//! magnified by accelerator launch costs).
//!
//! This crate registers a fourth backend, `deferred`, that models the
//! regime explicitly:
//!
//! * [`execute_plan`] — the whole-plan tape executor. Kernel-backed nodes
//!   do not run; they append [`DeferredOp`]s to a per-plan tape. A flush
//!   — triggered by output materialization, tape capacity, or a barrier
//!   (a host op that needs a queued value) — runs a fusion pass over the
//!   queued ops, then executes the resulting groups on the live engine
//!   kernels, charging one modeled dispatch latency per group.
//! * [`DeferredBackend`] — the same cost model behind the per-node
//!   [`Backend`] trait, which is what the *batched* graph executor
//!   dispatches. Its [`Backend::matmul_batched`] coalesces a whole
//!   admission window into one dispatch group (fusion on) or pays one
//!   launch per request (fusion off).
//!
//! The two layers are deliberately the same mechanism at two
//! granularities: the flush queue coalesces ops *within* one request the
//! way the serve admission window coalesces requests *across* the wire —
//! both turn q queued same-signature executions into one launch, and
//! both fall back to per-item execution when the signatures differ. See
//! the fusion rules on [`execute_plan`].
//!
//! ## What fusion changes, numerically
//!
//! Grouping alone never changes a bit: the fused sweep runs the identical
//! engine kernels in the identical order, it just charges fewer launches.
//! Two rules actually alter kernels and carry documented ULP bounds:
//! scale-folding (a `Scale` stealing an in-group GEMM folds into the GEMM
//! `alpha`) and same-LHS GEMM coalescing (executed through the engine's
//! column-stacked multi-RHS path, the same drift its request batching
//! already documents).

#![deny(missing_docs)]

mod tape;

use std::cell::Cell;
use std::time::Instant;

use laab_backend::{registry, Backend, BackendId, Registration};
use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_kernels::Trans;

pub use tape::{execute_plan, DeferredOp};

/// The registry name of the deferred backend.
pub const BACKEND_NAME: &str = "deferred";

/// Knobs of the accelerator cost model, resolved per execution via
/// [`current_tuning`] (a scoped [`with_tuning`] override, else the
/// defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Modeled kernel-launch latency, charged once per *flush group* (not
    /// per op) — the `--dispatch-us` knob. The charge is a real busy-wait
    /// so fusion wins show up in wall-clock, and it is accounted
    /// deterministically: `dispatch_ns == groups × this`.
    pub dispatch_ns: u64,
    /// Tape length that forces a [`FlushReason::Capacity`] flush.
    pub capacity: usize,
    /// Whether the flush pass fuses at all. Off, every op is its own
    /// dispatch group (the eager-accelerator strawman the A/B measures
    /// against); values stay bitwise-identical to `engine`.
    pub fuse: bool,
}

impl Default for Tuning {
    fn default() -> Self {
        // 5 µs is a deliberately small constant on the low end of real
        // measured GPU launch latencies — large enough that fusing a
        // handful of ops is visible in wall-clock, small enough that a
        // smoke serve run stays fast.
        Tuning { dispatch_ns: 5_000, capacity: 32, fuse: true }
    }
}

/// Why the tape flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The tape reached [`Tuning::capacity`].
    Capacity,
    /// An output fetch needed a queued value.
    Materialize,
    /// A host (data-movement) op needed a queued value before the sweep
    /// could continue.
    Barrier,
}

/// Per-execution accounting of the deferred cost model, accumulated into
/// a thread-local and drained with [`take_run_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Ops that went through the tape (or the per-node trait surface).
    pub tape_ops: u64,
    /// Longest tape observed at a flush.
    pub max_tape_len: u64,
    /// Flushes forced by tape capacity.
    pub flush_capacity: u64,
    /// Flushes forced by output materialization.
    pub flush_materialize: u64,
    /// Flushes forced by a host-op barrier.
    pub flush_barrier: u64,
    /// Dispatch groups launched (each paid one [`Tuning::dispatch_ns`]).
    pub groups: u64,
    /// Ops that shared a launch with at least one other op (or folded
    /// away entirely).
    pub fused_ops: u64,
    /// Ops that paid a launch of their own.
    pub unfused_ops: u64,
    /// Modeled launch time charged, exactly `groups ×` the configured
    /// [`Tuning::dispatch_ns`].
    pub dispatch_ns: u64,
    /// Measured wall time inside the engine kernels.
    pub compute_ns: u64,
}

impl RunStats {
    /// Total flushes across all three reasons.
    pub fn flushes(&self) -> u64 {
        self.flush_capacity + self.flush_materialize + self.flush_barrier
    }

    /// Fold another run into this one (the serve harness aggregates per
    /// family this way; `max_tape_len` takes the max, everything else
    /// sums).
    pub fn merge(&mut self, o: &RunStats) {
        self.tape_ops += o.tape_ops;
        self.max_tape_len = self.max_tape_len.max(o.max_tape_len);
        self.flush_capacity += o.flush_capacity;
        self.flush_materialize += o.flush_materialize;
        self.flush_barrier += o.flush_barrier;
        self.groups += o.groups;
        self.fused_ops += o.fused_ops;
        self.unfused_ops += o.unfused_ops;
        self.dispatch_ns += o.dispatch_ns;
        self.compute_ns += o.compute_ns;
    }
}

thread_local! {
    static TUNING_OVERRIDE: Cell<Option<Tuning>> = const { Cell::new(None) };
    static RUN_STATS: Cell<RunStats> = const { Cell::new(RunStats::default_const()) };
}

impl RunStats {
    const fn default_const() -> RunStats {
        RunStats {
            tape_ops: 0,
            max_tape_len: 0,
            flush_capacity: 0,
            flush_materialize: 0,
            flush_barrier: 0,
            groups: 0,
            fused_ops: 0,
            unfused_ops: 0,
            dispatch_ns: 0,
            compute_ns: 0,
        }
    }
}

/// The tuning the next deferred execution on this thread will use: the
/// innermost [`with_tuning`] scope, or [`Tuning::default`].
pub fn current_tuning() -> Tuning {
    TUNING_OVERRIDE.with(|t| t.get()).unwrap_or_default()
}

/// Run `f` with `tuning` as this thread's deferred cost model. Scoped and
/// re-entrant; the previous override is restored on exit. Thread-local on
/// purpose: the serve harness executes interleaved fused/unfused legs on
/// worker threads, and a process-global knob would race.
pub fn with_tuning<R>(tuning: Tuning, f: impl FnOnce() -> R) -> R {
    let prev = TUNING_OVERRIDE.with(|t| t.replace(Some(tuning)));
    struct Restore(Option<Tuning>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TUNING_OVERRIDE.with(|t| t.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Drain this thread's accumulated [`RunStats`] (and reset them to zero).
/// Deferred executions are synchronous on the calling thread, so calling
/// this right after an execution observes exactly that execution (plus
/// anything un-drained before it).
pub fn take_run_stats() -> RunStats {
    RUN_STATS.with(|s| s.replace(RunStats::default()))
}

pub(crate) fn stats_add(f: impl FnOnce(&mut RunStats)) {
    RUN_STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

/// Busy-wait for the modeled launch latency. A sleep would be at the
/// mercy of the scheduler's wake-up granularity; a calibrated spin keeps
/// the charge deterministic enough that fused-vs-unfused wall-clock
/// deltas are attributable.
pub(crate) fn dispatch_wait(ns: u64) {
    if ns == 0 {
        return;
    }
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Account one dispatch group around a kernel closure: spin for the
/// modeled launch latency, time the kernel, book both halves.
pub(crate) fn dispatched_group<R>(
    tuning: Tuning,
    ops: u64,
    fused: bool,
    f: impl FnOnce() -> R,
) -> R {
    dispatch_wait(tuning.dispatch_ns);
    let t0 = Instant::now();
    let r = f();
    let compute = t0.elapsed().as_nanos() as u64;
    stats_add(|s| {
        s.groups += 1;
        s.dispatch_ns += tuning.dispatch_ns;
        s.compute_ns += compute;
        if fused {
            s.fused_ops += ops;
        } else {
            s.unfused_ops += ops;
        }
    });
    r
}

/// The deferred backend's per-node [`Backend`] surface.
///
/// This is what the registry hands out and what the *batched* graph
/// executor dispatches: each call is one engine kernel behind one modeled
/// launch. The one place the per-node surface can fuse is
/// [`Backend::matmul_batched`] — the admission window's multi-RHS hook —
/// where fusion collapses the whole window into a single dispatch group
/// (the cross-request granularity of the same mechanism
/// [`execute_plan`]'s flush pass applies within a request). With fusion
/// off every right-hand side pays its own launch and lowers through the
/// engine's solo dispatch, bitwise-identical per entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeferredBackend;

impl<T: Scalar> Backend<T> for DeferredBackend {
    fn id(&self) -> BackendId {
        BackendId::of(BACKEND_NAME)
    }

    fn matmul(&self, alpha: T, a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
        let t = current_tuning();
        stats_add(|s| s.tape_ops += 1);
        dispatched_group(t, 1, false, || laab_kernels::matmul_dispatch(alpha, a, ta, b, tb))
    }

    fn matmul_batched(
        &self,
        alpha: T,
        a: &Matrix<T>,
        ta: Trans,
        bs: &[&Matrix<T>],
    ) -> Vec<Matrix<T>> {
        let t = current_tuning();
        stats_add(|s| s.tape_ops += bs.len() as u64);
        if t.fuse && bs.len() >= 2 {
            // One launch for the whole window — the engine decides
            // stacked-vs-loop *inside* the launch, exactly as its own
            // batched entry does, so values match `engine` batched.
            dispatched_group(t, bs.len() as u64, true, || {
                laab_backend::EngineBackend.matmul_batched(alpha, a, ta, bs)
            })
        } else {
            // Unfused: one launch per right-hand side, solo dispatch —
            // bitwise the engine's per-item fallback.
            bs.iter()
                .map(|b| {
                    dispatched_group(t, 1, false, || {
                        laab_kernels::matmul_dispatch(alpha, a, ta, b, Trans::No)
                    })
                })
                .collect()
        }
    }

    fn geadd(&self, alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
        let t = current_tuning();
        stats_add(|s| s.tape_ops += 1);
        dispatched_group(t, 1, false, || laab_kernels::geadd(alpha, a, beta, b))
    }

    fn geadd_assign(&self, alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>) {
        let t = current_tuning();
        stats_add(|s| s.tape_ops += 1);
        dispatched_group(t, 1, false, || laab_kernels::geadd_assign(alpha, a, beta, b))
    }

    fn scale_assign(&self, alpha: T, x: &mut Matrix<T>) {
        let t = current_tuning();
        stats_add(|s| s.tape_ops += 1);
        dispatched_group(t, 1, false, || laab_kernels::gescale_assign(alpha, x))
    }

    fn tridiag_matmul(&self, t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
        let tun = current_tuning();
        stats_add(|s| s.tape_ops += 1);
        dispatched_group(tun, 1, false, || laab_kernels::tridiag_matmul(t, b))
    }
}

static DEFERRED_REG: Registration = Registration::new(
    "deferred",
    "lazy accelerator model: op tape + flush-time fusion + per-group dispatch latency (engine kernels underneath)",
    Some(&DeferredBackend),
    Some(&DeferredBackend),
);

/// Register the `deferred` backend process-wide (idempotent — callers
/// race freely; first registration wins and later calls are no-ops).
/// Returns the registration either way.
pub fn ensure_registered() -> &'static Registration {
    let _ = registry::register(&DEFERRED_REG);
    registry::find(BACKEND_NAME).expect("deferred registration is permanent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_backend::EngineBackend;
    use laab_dense::gen::OperandGen;

    #[test]
    fn registration_is_idempotent_and_resolves_both_dtypes() {
        let reg = ensure_registered();
        assert_eq!(reg.name(), "deferred");
        let again = ensure_registered();
        assert_eq!(reg.name(), again.name());
        assert!(reg.resolve::<f32>().is_some());
        let be = reg.resolve::<f64>().expect("f64 entry point");
        assert_eq!(be.id().name(), "deferred");
        assert!(registry::names().contains(&"deferred"));
    }

    #[test]
    fn tuning_scopes_nest_and_restore() {
        assert_eq!(current_tuning(), Tuning::default());
        let inner = with_tuning(Tuning { dispatch_ns: 1, capacity: 2, fuse: false }, || {
            let outer = current_tuning();
            let nested =
                with_tuning(Tuning { dispatch_ns: 9, ..outer }, || current_tuning().dispatch_ns);
            (outer, nested)
        });
        assert_eq!(inner.0.dispatch_ns, 1);
        assert_eq!(inner.1, 9);
        assert_eq!(current_tuning(), Tuning::default(), "override restored");
    }

    #[test]
    fn per_node_calls_match_engine_and_charge_per_op() {
        let mut g = OperandGen::new(3);
        let a = g.matrix::<f64>(12, 9);
        let b = g.matrix::<f64>(9, 7);
        let tuning = Tuning { dispatch_ns: 100, capacity: 32, fuse: true };
        let _ = take_run_stats();
        let got = with_tuning(tuning, || {
            Backend::<f64>::matmul(&DeferredBackend, 1.5, &a, Trans::No, &b, Trans::No)
        });
        let want = EngineBackend.matmul(1.5, &a, Trans::No, &b, Trans::No);
        assert_eq!(got, want, "deferred per-node values are the engine's, bit for bit");
        let s = take_run_stats();
        assert_eq!((s.tape_ops, s.groups, s.unfused_ops, s.fused_ops), (1, 1, 1, 0));
        assert_eq!(s.dispatch_ns, 100, "dispatch accounted exactly groups x configured");
    }

    #[test]
    fn batched_window_is_one_group_fused_and_q_groups_unfused() {
        let mut g = OperandGen::new(19);
        // 80x80 f64 is past the engine's L1 cutoff, so the fused window
        // genuinely stacks.
        let h = g.matrix::<f64>(80, 80);
        let parts: Vec<Matrix<f64>> = (0..6).map(|_| g.matrix::<f64>(80, 1)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();

        let fused_t = Tuning { dispatch_ns: 50, capacity: 32, fuse: true };
        let _ = take_run_stats();
        let fused = with_tuning(fused_t, || {
            Backend::<f64>::matmul_batched(&DeferredBackend, 1.0, &h, Trans::No, &refs)
        });
        let fs = take_run_stats();
        assert_eq!((fs.groups, fs.fused_ops, fs.unfused_ops), (1, 6, 0));
        assert_eq!(fs.dispatch_ns, 50);
        assert_eq!(fused, EngineBackend.matmul_batched(1.0, &h, Trans::No, &refs));

        let unfused_t = Tuning { fuse: false, ..fused_t };
        let _ = take_run_stats();
        let unfused = with_tuning(unfused_t, || {
            Backend::<f64>::matmul_batched(&DeferredBackend, 1.0, &h, Trans::No, &refs)
        });
        let us = take_run_stats();
        assert_eq!((us.groups, us.fused_ops, us.unfused_ops), (6, 0, 6));
        assert_eq!(us.dispatch_ns, 6 * 50, "unfused pays one launch per RHS");
        for (got, b) in unfused.iter().zip(&refs) {
            assert_eq!(got, &EngineBackend.matmul(1.0, &h, Trans::No, b, Trans::No));
        }
    }

    #[test]
    fn run_stats_merge_sums_and_maxes() {
        let mut a = RunStats { tape_ops: 3, max_tape_len: 4, groups: 2, ..Default::default() };
        let b = RunStats {
            tape_ops: 1,
            max_tape_len: 9,
            flush_barrier: 1,
            dispatch_ns: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tape_ops, 4);
        assert_eq!(a.max_tape_len, 9);
        assert_eq!(a.flushes(), 1);
        assert_eq!(a.dispatch_ns, 7);
    }
}
