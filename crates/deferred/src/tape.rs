//! The per-plan tape executor: append instead of execute, fuse at flush.
//!
//! [`execute_plan`] walks the graph in the same topological order as the
//! synchronous executor (`laab_graph::execute_scheduled_on`) and makes
//! the same structural decisions — including which ops run in-place by
//! stealing a uniquely-owned operand buffer — but kernel-backed nodes
//! are *queued* as [`DeferredOp`]s rather than run. Execution happens at
//! flush time, in append order, so the kernel inventory and its order
//! are exactly the synchronous sweep's; what the tape changes is **when**
//! kernels launch and **how many launches** they share.
//!
//! A flush fires for one of three reasons (pinned by unit tests):
//! capacity (the tape hit [`Tuning::capacity`]), barrier (a host
//! data-movement op needed a queued value), or materialize (an output
//! fetch needed one). Ops a plan queues but never materializes are
//! simply dropped — dead code elimination is laziness' freebie.
//!
//! ```text
//!   node sweep ──append──▶ tape ──flush──▶ fusion pass ──▶ groups
//!                           │                               │
//!                 capacity/barrier/materialize     one dispatch charge
//!                                                  per group, engine
//!                                                  kernels inside
//! ```

use std::time::Instant;

use laab_backend::{Backend, EngineBackend};
use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_expr::eval::Env;
use laab_graph::{Graph, NodeId, OpKind, Schedule};
use laab_kernels::counters::{self, Kernel};
use laab_kernels::Trans;

use crate::{dispatch_wait, stats_add, FlushReason, RunStats, Tuning};

/// Which operand buffer a queued op will steal for in-place execution —
/// decided at append time from the same reference counts the synchronous
/// executor's `take_unique` consults, so both executors run the identical
/// in-place/allocating kernel forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealSlot {
    /// Steal the first operand's buffer.
    A,
    /// Steal the second operand's buffer.
    B,
    /// Allocate a fresh output.
    None,
}

/// One queued, not-yet-executed kernel op on the tape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeferredOp {
    /// The node whose value this op produces.
    pub out: NodeId,
    /// The kernel call it makes at flush time.
    pub kind: DeferredKind,
}

/// The kernel call a [`DeferredOp`] makes at flush time.
#[derive(Debug, Clone, PartialEq)]
pub enum DeferredKind {
    /// `α·op(a)·op(b)` — the RHS shape rides along so the fusion pass can
    /// check same-signature coalescibility without the graph in hand.
    MatMul {
        /// Left operand node.
        a: NodeId,
        /// Right operand node.
        b: NodeId,
        /// Transposition of `a`.
        ta: Trans,
        /// Transposition of `b`.
        tb: Trans,
        /// GEMM `alpha` (IEEE bits of an `f64`).
        alpha_bits: u64,
        /// Rows of the right operand.
        b_rows: usize,
        /// Columns of the right operand.
        b_cols: usize,
    },
    /// Elementwise `a ± b` (`sub` selects the sign of `b`).
    AddSub {
        /// First operand node.
        a: NodeId,
        /// Second operand node.
        b: NodeId,
        /// `true` for subtraction.
        sub: bool,
        /// In-place form decided at append time.
        steal: StealSlot,
    },
    /// Scalar scaling `c·x`.
    Scale {
        /// Operand node.
        x: NodeId,
        /// The factor (IEEE bits of an `f64`).
        bits: u64,
        /// Whether the op runs in place on `x`'s buffer.
        steal: bool,
    },
    /// The structured tridiagonal product.
    TridiagMatMul {
        /// The dense tridiagonal operand node.
        t: NodeId,
        /// The right-hand-side node.
        b: NodeId,
    },
}

impl DeferredKind {
    fn inputs(&self) -> [NodeId; 2] {
        match *self {
            DeferredKind::MatMul { a, b, .. } => [a, b],
            DeferredKind::AddSub { a, b, .. } => [a, b],
            DeferredKind::Scale { x, .. } => [x, x],
            DeferredKind::TridiagMatMul { t, b } => [t, b],
        }
    }

    fn reads(&self, id: NodeId) -> bool {
        let [a, b] = self.inputs();
        a == id || b == id
    }
}

enum Val<'e, T: Scalar> {
    Ref(&'e Matrix<T>),
    Owned(Matrix<T>),
    /// Queued on the tape; materialized by the flush that executes its op.
    Pending,
}

impl<T: Scalar> Val<'_, T> {
    fn get(&self) -> &Matrix<T> {
        match self {
            Val::Ref(m) => m,
            Val::Owned(m) => m,
            Val::Pending => unreachable!("operand still queued at execution time"),
        }
    }
    fn into_owned(self) -> Matrix<T> {
        match self {
            Val::Ref(m) => m.clone(),
            Val::Owned(m) => m,
            Val::Pending => unreachable!("output still queued after materialize flush"),
        }
    }
}

/// Steal-decision mirror of the synchronous executor's `take_unique`: an
/// op may reuse an operand buffer when it is the only remaining consumer
/// and the value is an owned intermediate (not a borrowed feed).
fn stealable(g: &Graph, plan_remaining: &[u32], id: NodeId) -> bool {
    plan_remaining[id.idx()] == 1 && !matches!(g.nodes[id.idx()].kind, OpKind::Input(_))
}

/// Group-formation rule of the fusion pass: may `cand` ride the launch
/// the (non-empty) `group` already pays for?
///
/// Two ways in, mirroring the two batching granularities:
///
/// * **Epilogue** — an elementwise `Add`/`Sub`/`Scale` consuming a value
///   the group produces. The kernels and their order are untouched, so
///   grouping is bitwise-neutral; only the launch count changes.
/// * **Same-signature coalescing** — a `MatMul` sharing `(a, ta, alpha)`
///   with an untransposed, same-shape RHS while the group is still purely
///   such a run. These collapse into one multi-RHS launch, exactly the
///   within-request twin of what the serve admission window does across
///   requests (`Backend::matmul_batched` over a coalesced batch).
///
/// Everything else — a `MatMul` consuming a group value, a
/// `TridiagMatMul`, a non-matching signature — starts a new launch.
fn joins_group(group: &[DeferredOp], cand: &DeferredOp) -> bool {
    let in_group = |id: NodeId| group.iter().any(|op| op.out == id);
    match &cand.kind {
        DeferredKind::AddSub { a, b, .. } => in_group(*a) || in_group(*b),
        DeferredKind::Scale { x, .. } => in_group(*x),
        DeferredKind::MatMul { a, b, ta, tb, alpha_bits, b_rows, b_cols } => {
            *tb == Trans::No
                && !in_group(*a)
                && !in_group(*b)
                && group.iter().all(|op| match &op.kind {
                    DeferredKind::MatMul {
                        a: ga,
                        ta: gta,
                        tb: gtb,
                        alpha_bits: gab,
                        b_rows: gbr,
                        b_cols: gbc,
                        ..
                    } => {
                        ga == a
                            && gta == ta
                            && *gtb == Trans::No
                            && gab == alpha_bits
                            && gbr == b_rows
                            && gbc == b_cols
                    }
                    _ => false,
                })
        }
        DeferredKind::TridiagMatMul { .. } => false,
    }
}

struct TapeExec<'e, T: Scalar> {
    tuning: Tuning,
    stats: RunStats,
    /// Execution-time reference counts: decremented as ops actually run
    /// (at flush), driving the free-after-last-use sweep.
    exec_remaining: Vec<u32>,
    values: Vec<Option<Val<'e, T>>>,
    tape: Vec<DeferredOp>,
}

impl<'e, T: Scalar> TapeExec<'e, T> {
    fn value(&self, id: NodeId) -> &Matrix<T> {
        self.values[id.idx()].as_ref().expect("operand freed before its last use").get()
    }

    fn take_owned(&mut self, id: NodeId) -> Matrix<T> {
        debug_assert_eq!(
            self.exec_remaining[id.idx()],
            1,
            "a steal decided at append time must still be unique at flush time"
        );
        match self.values[id.idx()].take() {
            Some(Val::Owned(m)) => m,
            _ => unreachable!("steal target must be a live owned value"),
        }
    }

    /// Free operands whose last consumer has now run.
    fn release(&mut self, inputs: &[NodeId]) {
        for inp in inputs {
            let r = &mut self.exec_remaining[inp.idx()];
            *r -= 1;
            if *r == 0 {
                self.values[inp.idx()] = None;
            }
        }
    }

    fn flush(&mut self, reason: FlushReason) {
        if self.tape.is_empty() {
            return;
        }
        match reason {
            FlushReason::Capacity => self.stats.flush_capacity += 1,
            FlushReason::Materialize => self.stats.flush_materialize += 1,
            FlushReason::Barrier => self.stats.flush_barrier += 1,
        }
        self.stats.max_tape_len = self.stats.max_tape_len.max(self.tape.len() as u64);
        let ops = std::mem::take(&mut self.tape);
        let mut i = 0;
        while i < ops.len() {
            let mut end = i + 1;
            if self.tuning.fuse {
                while end < ops.len() && joins_group(&ops[i..end], &ops[end]) {
                    end += 1;
                }
            }
            self.execute_group(&ops[i..end]);
            i = end;
        }
    }

    /// Launch one dispatch group: pay the modeled launch latency once,
    /// then run the member kernels in append order.
    fn execute_group(&mut self, ops: &[DeferredOp]) {
        dispatch_wait(self.tuning.dispatch_ns);
        self.stats.groups += 1;
        self.stats.dispatch_ns += self.tuning.dispatch_ns;
        if ops.len() >= 2 {
            self.stats.fused_ops += ops.len() as u64;
        } else {
            self.stats.unfused_ops += 1;
        }

        // Leading same-signature matmul run (the only way a group holds
        // two matmuls is the coalescing rule, so the run is coalescible
        // by construction).
        let run =
            ops.iter().take_while(|op| matches!(op.kind, DeferredKind::MatMul { .. })).count();
        let coalesce = run >= 2;

        // Scale folding: a Scale that steals a non-coalesced in-group
        // GEMM's buffer — with no other reader in between — folds into
        // that GEMM's `alpha` and launches no kernel of its own (the
        // blocked driver's alpha slot is free). ULP-level drift, bound
        // documented in cross_backend_props.
        let mut alpha_fold = vec![1.0f64; ops.len()];
        let mut folded = vec![false; ops.len()];
        if !coalesce {
            for j in 1..ops.len() {
                if let DeferredKind::Scale { x, bits, steal: true } = ops[j].kind {
                    if let Some(k) = (0..j).find(|&k| ops[k].out == x) {
                        let is_mm = matches!(ops[k].kind, DeferredKind::MatMul { .. });
                        let quiet = ops[k + 1..j].iter().all(|op| !op.kind.reads(x));
                        if is_mm && quiet {
                            alpha_fold[k] = f64::from_bits(bits);
                            folded[j] = true;
                        }
                    }
                }
            }
        }

        let t0 = Instant::now();
        if coalesce {
            let (a_id, ta, alpha_bits) = match ops[0].kind {
                DeferredKind::MatMul { a, ta, alpha_bits, .. } => (a, ta, alpha_bits),
                _ => unreachable!("leading run holds matmuls only"),
            };
            let alpha = T::from_f64(f64::from_bits(alpha_bits));
            let results = {
                let a = self.value(a_id);
                let bs: Vec<&Matrix<T>> = ops[..run]
                    .iter()
                    .map(|op| match op.kind {
                        DeferredKind::MatMul { b, .. } => self.value(b),
                        _ => unreachable!("leading run holds matmuls only"),
                    })
                    .collect();
                EngineBackend.matmul_batched(alpha, a, ta, &bs)
            };
            for (op, m) in ops[..run].iter().zip(results) {
                self.values[op.out.idx()] = Some(Val::Owned(m));
                self.release(&op.kind.inputs());
            }
        }
        let rest = if coalesce { run } else { 0 };
        for (j, op) in ops.iter().enumerate().skip(rest) {
            self.execute_op(op, alpha_fold[j], folded[j]);
        }
        self.stats.compute_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Run one queued op through the engine kernels — the identical
    /// in-place/allocating forms the synchronous executor picks.
    fn execute_op(&mut self, op: &DeferredOp, fold: f64, folded: bool) {
        let val = match &op.kind {
            DeferredKind::MatMul { a, b, ta, tb, alpha_bits, .. } => {
                let alpha = T::from_f64(f64::from_bits(*alpha_bits) * fold);
                Val::Owned(laab_kernels::matmul_dispatch(
                    alpha,
                    self.value(*a),
                    *ta,
                    self.value(*b),
                    *tb,
                ))
            }
            DeferredKind::AddSub { a, b, sub, steal } => {
                let beta = if *sub { -T::ONE } else { T::ONE };
                match steal {
                    StealSlot::A => {
                        let mut am = self.take_owned(*a);
                        laab_kernels::geadd_assign(T::ONE, &mut am, beta, self.value(*b));
                        Val::Owned(am)
                    }
                    StealSlot::B => {
                        // a ± b accumulated into b's buffer: b := β·b + a.
                        let mut bm = self.take_owned(*b);
                        laab_kernels::geadd_assign(beta, &mut bm, T::ONE, self.value(*a));
                        Val::Owned(bm)
                    }
                    StealSlot::None => Val::Owned(laab_kernels::geadd(
                        T::ONE,
                        self.value(*a),
                        beta,
                        self.value(*b),
                    )),
                }
            }
            DeferredKind::Scale { x, bits, steal } => {
                if folded {
                    // Already applied inside the folded GEMM's alpha;
                    // this op just forwards the buffer.
                    Val::Owned(self.take_owned(*x))
                } else {
                    let c = T::from_f64(f64::from_bits(*bits));
                    if *steal {
                        let mut xm = self.take_owned(*x);
                        laab_kernels::gescale_assign(c, &mut xm);
                        Val::Owned(xm)
                    } else {
                        // The allocating α·x + 0·x form (see Backend::scale).
                        let xv = self.value(*x);
                        Val::Owned(laab_kernels::geadd(c, xv, T::ZERO, xv))
                    }
                }
            }
            DeferredKind::TridiagMatMul { t, b } => {
                let compact = Tridiagonal::from_dense(self.value(*t));
                Val::Owned(laab_kernels::tridiag_matmul(&compact, self.value(*b)))
            }
        };
        self.values[op.out.idx()] = Some(val);
        // Scale has one operand edge; inputs() doubles it, so release
        // exactly the node's real edge count.
        match op.kind {
            DeferredKind::Scale { x, .. } => self.release(&[x]),
            _ => self.release(&op.kind.inputs()),
        }
    }
}

/// Execute a compiled plan's graph through the deferred tape: kernel
/// nodes queue, flushes fuse and launch, host data movement stays
/// synchronous executor-level work.
///
/// The sweep, steal decisions, and free order mirror
/// [`laab_graph::execute_scheduled_on`] exactly; with fusion off (or when
/// fusion only *groups* ops) the results are bitwise-identical to the
/// `engine` backend's. The two value-changing fusion rules — scale
/// folding and same-LHS GEMM coalescing — carry documented ULP bounds.
///
/// # Panics
/// Whatever the synchronous executor panics on: missing or mis-shaped
/// feeds, a schedule built for a different graph.
pub fn execute_plan<'e, T: Scalar>(
    g: &Graph,
    schedule: &Schedule,
    env: &'e Env<T>,
) -> Vec<Matrix<T>> {
    assert_eq!(
        schedule.len(),
        g.len(),
        "schedule was built for a graph with {} nodes, this graph has {}",
        schedule.len(),
        g.len()
    );
    debug_assert_eq!(g.check_topology(), Ok(()));
    let counts = schedule.use_counts().to_vec();
    // Append-time counts, decremented ahead of execution in node order:
    // these drive the steal decisions, and they evolve exactly as the
    // synchronous executor's counts do at the equivalent point of its
    // sweep (execution order preserves append order).
    let mut plan_remaining = counts.clone();
    let mut ex = TapeExec {
        tuning: crate::current_tuning(),
        stats: RunStats::default(),
        exec_remaining: counts,
        values: Vec::with_capacity(g.len()),
        tape: Vec::new(),
    };
    let capacity = ex.tuning.capacity.max(1);

    for (i, node) in g.nodes.iter().enumerate() {
        let id = NodeId(i as u32);
        let mut queued = true;
        match &node.kind {
            OpKind::MatMul { ta, tb, alpha_bits } => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                let bs = g.nodes[b.idx()].shape;
                ex.tape.push(DeferredOp {
                    out: id,
                    kind: DeferredKind::MatMul {
                        a,
                        b,
                        ta: *ta,
                        tb: *tb,
                        alpha_bits: *alpha_bits,
                        b_rows: bs.rows,
                        b_cols: bs.cols,
                    },
                });
                ex.values.push(Some(Val::Pending));
            }
            OpKind::Add | OpKind::Sub => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                let steal = if stealable(g, &plan_remaining, a) {
                    StealSlot::A
                } else if stealable(g, &plan_remaining, b) {
                    StealSlot::B
                } else {
                    StealSlot::None
                };
                let sub = matches!(node.kind, OpKind::Sub);
                ex.tape
                    .push(DeferredOp { out: id, kind: DeferredKind::AddSub { a, b, sub, steal } });
                ex.values.push(Some(Val::Pending));
            }
            OpKind::Scale(bits) => {
                let x = node.inputs[0];
                let steal = stealable(g, &plan_remaining, x);
                ex.tape.push(DeferredOp {
                    out: id,
                    kind: DeferredKind::Scale { x, bits: *bits, steal },
                });
                ex.values.push(Some(Val::Pending));
            }
            OpKind::TridiagMatMul => {
                let (t, b) = (node.inputs[0], node.inputs[1]);
                ex.tape.push(DeferredOp { out: id, kind: DeferredKind::TridiagMatMul { t, b } });
                ex.values.push(Some(Val::Pending));
            }
            // Everything below is synchronous: feeds, constants, and host
            // data movement. A host op that needs a queued value drains
            // the tape first — the barrier flush.
            kind => {
                queued = false;
                if node.inputs.iter().any(|i| matches!(ex.values[i.idx()], Some(Val::Pending))) {
                    ex.flush(FlushReason::Barrier);
                }
                let val: Val<'e, T> = match kind {
                    OpKind::Input(name) => {
                        let m = env.expect(name);
                        assert_eq!(
                            (m.rows(), m.cols()),
                            (node.shape.rows, node.shape.cols),
                            "feed `{name}` has shape {}x{}, graph expects {}",
                            m.rows(),
                            m.cols(),
                            node.shape
                        );
                        Val::Ref(m)
                    }
                    OpKind::Identity(n) => Val::Owned(Matrix::identity(*n)),
                    OpKind::Transpose => {
                        counters::record(Kernel::Transpose, 0);
                        Val::Owned(ex.value(node.inputs[0]).transpose())
                    }
                    OpKind::Elem(r, c) => {
                        counters::record(Kernel::Slice, 0);
                        Val::Owned(Matrix::filled(1, 1, ex.value(node.inputs[0])[(*r, *c)]))
                    }
                    OpKind::Row(r) => {
                        counters::record(Kernel::Slice, 0);
                        Val::Owned(Matrix::row_vector(ex.value(node.inputs[0]).row(*r)))
                    }
                    OpKind::Col(c) => {
                        counters::record(Kernel::Slice, 0);
                        Val::Owned(ex.value(node.inputs[0]).col_matrix(*c))
                    }
                    OpKind::VCat => {
                        counters::record(Kernel::Concat, 0);
                        Val::Owned(ex.value(node.inputs[0]).vcat(ex.value(node.inputs[1])))
                    }
                    OpKind::HCat => {
                        counters::record(Kernel::Concat, 0);
                        Val::Owned(ex.value(node.inputs[0]).hcat(ex.value(node.inputs[1])))
                    }
                    OpKind::BlockDiag => {
                        counters::record(Kernel::Concat, 0);
                        Val::Owned(Matrix::block_diag(
                            ex.value(node.inputs[0]),
                            ex.value(node.inputs[1]),
                        ))
                    }
                    _ => unreachable!("kernel kinds handled above"),
                };
                ex.values.push(Some(val));
            }
        }

        for inp in &node.inputs {
            plan_remaining[inp.idx()] -= 1;
        }
        if queued {
            ex.stats.tape_ops += 1;
            if ex.tape.len() >= capacity {
                ex.flush(FlushReason::Capacity);
            }
        } else {
            // Ran eagerly: its operands' last use may be now.
            let inputs = node.inputs.clone();
            ex.release(&inputs);
        }
    }

    // Output fetch is what forces the final flush; queued ops no output
    // (transitively) needs were never launched — laziness doubles as
    // dead-code elimination.
    if g.outputs.iter().any(|id| matches!(ex.values[id.idx()], Some(Val::Pending))) {
        ex.flush(FlushReason::Materialize);
    }
    let mut out = Vec::with_capacity(g.outputs.len());
    for id in &g.outputs {
        let r = &mut ex.exec_remaining[id.idx()];
        *r -= 1;
        if *r == 0 {
            out.push(ex.values[id.idx()].take().expect("output already freed").into_owned());
        } else {
            out.push(ex.values[id.idx()].as_ref().expect("output already freed").get().clone());
        }
    }
    stats_add(|s| s.merge(&ex.stats));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{take_run_stats, with_tuning};
    use laab_dense::gen::OperandGen;
    use laab_graph::{execute_scheduled_on, optimize, GraphBuilder, PassConfig};

    fn quiet() -> Tuning {
        // Zero launch latency keeps the unit suite fast; accounting is
        // still exercised (groups/ops), just not the spin.
        Tuning { dispatch_ns: 0, capacity: 32, fuse: true }
    }

    fn engine_run(g: &Graph, env: &Env<f64>) -> Vec<Matrix<f64>> {
        let schedule = Schedule::new(g);
        execute_scheduled_on(g, &schedule, env, laab_backend::engine::<f64>())
    }

    /// Hᵀ(y − Hx) — the SolveResidual shape: GEMM, Sub epilogue, GEMM.
    fn solve_residual(n: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let h = gb.input("H", n, n);
        let x = gb.input("x", n, 1);
        let y = gb.input("y", n, 1);
        let hx = gb.matmul(h, x);
        let d = gb.sub(y, hx);
        let ht = gb.transpose(h);
        let r = gb.matmul(ht, d);
        let mut g = gb.finish(vec![r]);
        optimize(&mut g, &PassConfig::all());
        g
    }

    fn env3(n: usize, seed: u64) -> Env<f64> {
        let mut og = OperandGen::new(seed);
        Env::new().with("H", og.matrix(n, n)).with("x", og.matrix(n, 1)).with("y", og.matrix(n, 1))
    }

    #[test]
    fn gemm_epilogue_chain_fuses_and_stays_bitwise() {
        let n = 24;
        let g = solve_residual(n);
        let env = env3(n, 42);
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        // Grouping reorders nothing: bitwise the engine's sweep.
        assert_eq!(got, engine_run(&g, &env));
        // GEMM+Sub share a launch; the second GEMM (consuming the
        // group's value) pays its own.
        assert_eq!(s.tape_ops, 3);
        assert_eq!(s.groups, 2, "fused chain collapsed three ops into two launches");
        assert_eq!((s.fused_ops, s.unfused_ops), (2, 1));
        assert_eq!(s.flush_materialize, 1);
        assert_eq!((s.flush_capacity, s.flush_barrier), (0, 0));
        assert_eq!(s.max_tape_len, 3);
    }

    #[test]
    fn fusion_off_pays_one_launch_per_op_and_stays_bitwise() {
        let n = 16;
        let g = solve_residual(n);
        let env = env3(n, 7);
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got =
            with_tuning(Tuning { fuse: false, ..quiet() }, || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(got, engine_run(&g, &env));
        assert_eq!(s.groups, 3, "unfused: every op is its own launch");
        assert_eq!((s.fused_ops, s.unfused_ops), (0, 3));
    }

    #[test]
    fn dispatch_is_charged_per_group_deterministically() {
        let n = 12;
        let g = solve_residual(n);
        let env = env3(n, 9);
        let schedule = Schedule::new(&g);
        let tuning = Tuning { dispatch_ns: 20_000, capacity: 32, fuse: true };
        let _ = take_run_stats();
        let t0 = Instant::now();
        let _ = with_tuning(tuning, || execute_plan(&g, &schedule, &env));
        let wall = t0.elapsed().as_nanos() as u64;
        let s = take_run_stats();
        assert_eq!(s.dispatch_ns, s.groups * tuning.dispatch_ns, "groups x configured, exactly");
        assert!(wall >= s.dispatch_ns, "the launch charge is real wall-clock, not bookkeeping");
    }

    #[test]
    fn same_lhs_gemms_coalesce_into_one_launch() {
        // A·B + A·C — the Distributive family: two same-LHS GEMMs and an
        // Add epilogue collapse into a single launch.
        let n = 80;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let c = gb.input("C", n, n);
        let ab = gb.matmul(a, b);
        let ac = gb.matmul(a, c);
        let sum = gb.add(ab, ac);
        let mut g = gb.finish(vec![sum]);
        optimize(&mut g, &PassConfig::all());
        let mut og = OperandGen::new(3);
        let env = Env::<f64>::new()
            .with("A", og.matrix(n, n))
            .with("B", og.matrix(n, n))
            .with("C", og.matrix(n, n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(s.groups, 1, "two GEMMs + epilogue, one launch");
        assert_eq!((s.fused_ops, s.unfused_ops), (3, 0));
        // Coalescing runs the engine's stacked multi-RHS path: ULP drift
        // vs the solo sweep, same bound the request-batched path carries.
        let want = engine_run(&g, &env);
        assert!(got[0].approx_eq(&want[0], 1e-11), "coalesced GEMMs drifted past the bound");
    }

    #[test]
    fn scale_steal_folds_into_gemm_alpha() {
        // Unoptimized graph, so the Scale survives to the tape (the pass
        // pipeline would fold it at compile time — at flush time the
        // deferred backend does the same thing later).
        let n = 20;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let ab = gb.matmul(a, b);
        let s = gb.scale(2.5, ab);
        let g = gb.finish(vec![s]);
        let mut og = OperandGen::new(5);
        let env = Env::<f64>::new().with("A", og.matrix(n, n)).with("B", og.matrix(n, n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let st = take_run_stats();
        assert_eq!(st.groups, 1, "GEMM+Scale is one launch");
        assert_eq!((st.fused_ops, st.unfused_ops), (2, 0));
        let want = engine_run(&g, &env);
        assert!(got[0].approx_eq(&want[0], 1e-12), "alpha folding is ULP-level only");
        // Fusion off: the same graph pays two launches and is bitwise.
        let _ = take_run_stats();
        let unfused =
            with_tuning(Tuning { fuse: false, ..quiet() }, || execute_plan(&g, &schedule, &env));
        assert_eq!(take_run_stats().groups, 2);
        assert_eq!(unfused, want);
    }

    #[test]
    fn flush_reasons_are_pinned() {
        let mut og = OperandGen::new(11);
        let n = 12;

        // Capacity: a 4-GEMM chain over a 2-op tape flushes twice on
        // capacity and needs no materialize flush at the end.
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let mut acc = a;
        for _ in 0..4 {
            acc = gb.matmul(acc, b);
        }
        let g = gb.finish(vec![acc]);
        let env = Env::<f64>::new().with("A", og.matrix(n, n)).with("B", og.matrix(n, n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got =
            with_tuning(Tuning { capacity: 2, ..quiet() }, || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(got, engine_run(&g, &env));
        assert_eq!((s.flush_capacity, s.flush_barrier, s.flush_materialize), (2, 0, 0));
        assert_eq!(s.max_tape_len, 2);

        // Barrier: a host op (Elem) over a queued GEMM drains the tape;
        // the output is host-produced, so again no materialize flush.
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let ab = gb.matmul(a, b);
        let e = gb.elem(ab, 0, 0);
        let g = gb.finish(vec![e]);
        let env = Env::<f64>::new().with("A", og.matrix(n, n)).with("B", og.matrix(n, n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(got, engine_run(&g, &env));
        assert_eq!((s.flush_capacity, s.flush_barrier, s.flush_materialize), (0, 1, 0));

        // Materialize: a lone queued GEMM flushes only when fetched.
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let ab = gb.matmul(a, b);
        let g = gb.finish(vec![ab]);
        let env = Env::<f64>::new().with("A", og.matrix(n, n)).with("B", og.matrix(n, n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(got, engine_run(&g, &env));
        assert_eq!((s.flush_capacity, s.flush_barrier, s.flush_materialize), (0, 0, 1));
    }

    #[test]
    fn unfetched_ops_are_never_launched() {
        // A queued GEMM nothing fetches is dropped at the end of the
        // sweep: lazy evaluation's free dead-code elimination.
        let n = 8;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let _dead = gb.matmul(a, b);
        let g = gb.finish(vec![a]);
        let mut og = OperandGen::new(13);
        let am = og.matrix::<f64>(n, n);
        let env = Env::new().with("A", am.clone()).with("B", og.matrix(n, n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(got[0], am);
        assert_eq!(s.tape_ops, 1, "the dead GEMM was queued");
        assert_eq!(s.groups, 0, "but never launched");
        assert_eq!(s.flushes(), 0);
    }

    #[test]
    fn tape_is_deterministic_across_thread_counts() {
        let n = 160;
        let g = solve_residual(n);
        let env = env3(n, 21);
        let schedule = Schedule::new(&g);
        let prev = laab_kernels::num_threads();
        let run = |threads| {
            laab_kernels::set_num_threads(threads);
            let _ = take_run_stats();
            let out = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
            (out, take_run_stats())
        };
        let (one, s1) = run(1);
        let (four, s4) = run(4);
        laab_kernels::set_num_threads(prev);
        assert_eq!(one, four, "tape execution is bit-identical across thread counts");
        // Structural accounting is thread-count-independent too (only
        // compute_ns, which is wall time, may differ).
        assert_eq!(
            (s1.groups, s1.fused_ops, s1.unfused_ops, s1.tape_ops, s1.flushes()),
            (s4.groups, s4.fused_ops, s4.unfused_ops, s4.tape_ops, s4.flushes())
        );
    }

    #[test]
    fn f32_plans_execute_too() {
        let n = 24;
        let g = solve_residual(n);
        let mut og = OperandGen::new(29);
        let env = Env::<f32>::new()
            .with("H", og.matrix(n, n))
            .with("x", og.matrix(n, 1))
            .with("y", og.matrix(n, 1));
        let schedule = Schedule::new(&g);
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let want = execute_scheduled_on(&g, &schedule, &env, laab_backend::engine::<f32>());
        assert_eq!(got, want, "f32 grouping is bitwise as well");
        let _ = take_run_stats();
    }

    #[test]
    fn host_heavy_graphs_interleave_barriers_correctly() {
        // vcat(Hx, y) then a GEMM on the concatenation: barrier mid-sweep,
        // then more queued work materialized at the end.
        let n = 10;
        let mut gb = GraphBuilder::new();
        let h = gb.input("H", n, n);
        let x = gb.input("x", n, 1);
        let y = gb.input("y", n, 1);
        let hx = gb.matmul(h, x);
        let cat = gb.vcat(hx, y);
        let w = gb.input("W", n, 2 * n);
        let r = gb.matmul(w, cat);
        let g = gb.finish(vec![r]);
        let mut og = OperandGen::new(31);
        let env = Env::<f64>::new()
            .with("H", og.matrix(n, n))
            .with("x", og.matrix(n, 1))
            .with("y", og.matrix(n, 1))
            .with("W", og.matrix(n, 2 * n));
        let schedule = Schedule::new(&g);
        let _ = take_run_stats();
        let got = with_tuning(quiet(), || execute_plan(&g, &schedule, &env));
        let s = take_run_stats();
        assert_eq!(got, engine_run(&g, &env));
        assert_eq!((s.flush_barrier, s.flush_materialize), (1, 1));
    }
}
