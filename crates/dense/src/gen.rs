//! Deterministic, seeded operand generators.
//!
//! Every experiment in the paper uses random dense operands (uniform entries)
//! with specific structure. These generators are seeded so that every run of a
//! benchmark or test sees the same operands, and entries are kept in
//! `[-0.5, 0.5]` (scaled) so repeated products neither overflow nor underflow
//! at the paper's problem sizes.

use crate::{Diagonal, Matrix, Scalar, Tridiagonal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Source of seeded random operands.
///
/// A thin wrapper over [`StdRng`] so call-sites read as
/// `gen.matrix(n, n)`, `gen.lower_triangular(n)`, etc.
pub struct OperandGen {
    rng: StdRng,
}

impl OperandGen {
    /// Create a generator from a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    fn sample<T: Scalar>(&mut self) -> T {
        // Uniform in [-0.5, 0.5]; keeps ‖A·B‖ comparable to ‖A‖·‖B‖/√12·n.
        T::from_f64(self.rng.gen::<f64>() - 0.5)
    }

    /// A general dense `rows × cols` matrix with uniform entries.
    pub fn matrix<T: Scalar>(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_fn(rows, cols, |_, _| self.sample())
    }

    /// A column vector of length `n` (shape `n×1`).
    pub fn col_vector<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        self.matrix(n, 1)
    }

    /// A row vector of length `n` (shape `1×n`).
    pub fn row_vector<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        self.matrix(1, n)
    }

    /// A lower-triangular `n×n` matrix (zeros strictly above the diagonal).
    pub fn lower_triangular<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                m[(i, j)] = self.sample();
            }
        }
        m
    }

    /// An upper-triangular `n×n` matrix (zeros strictly below the diagonal).
    pub fn upper_triangular<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                m[(i, j)] = self.sample();
            }
        }
        m
    }

    /// A symmetric `n×n` matrix.
    pub fn symmetric<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.sample();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// A symmetric positive-definite `n×n` matrix (`AᵀA + n·I` scaled).
    ///
    /// Built without the O(n³) kernels (so `laab-dense` stays kernel-free):
    /// a diagonally-dominant symmetric matrix is SPD by Gershgorin.
    pub fn spd<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        let mut m = self.symmetric::<T>(n);
        let bump = T::from_f64(n as f64);
        for i in 0..n {
            let v = m[(i, i)];
            m[(i, i)] = v.abs() + bump;
        }
        m
    }

    /// A tridiagonal matrix in compact form.
    pub fn tridiagonal<T: Scalar>(&mut self, n: usize) -> Tridiagonal<T> {
        assert!(n >= 1);
        let sub = (0..n - 1).map(|_| self.sample()).collect();
        let main = (0..n).map(|_| self.sample()).collect();
        let sup = (0..n - 1).map(|_| self.sample()).collect();
        Tridiagonal::new(sub, main, sup)
    }

    /// A diagonal matrix in compact form, with entries bounded away from
    /// zero so products remain well-conditioned.
    pub fn diagonal<T: Scalar>(&mut self, n: usize) -> Diagonal<T> {
        let d = (0..n)
            .map(|_| {
                let v: f64 = self.rng.gen::<f64>() - 0.5;
                let v = if v.abs() < 0.1 { 0.1 + v.abs() } else { v.abs() };
                T::from_f64(if self.rng.gen::<bool>() { v } else { -v })
            })
            .collect();
        Diagonal::new(d)
    }

    /// An orthogonal `n×n` matrix, built as a product of `k` Householder
    /// reflectors applied to the identity (`k = min(n, 8)` keeps generation
    /// O(n²) while producing a dense orthogonal matrix).
    pub fn orthogonal<T: Scalar>(&mut self, n: usize) -> Matrix<T> {
        let mut q = Matrix::<T>::identity(n);
        let reflectors = n.min(8);
        for _ in 0..reflectors {
            // v: random unit vector.
            let mut v: Vec<f64> = (0..n).map(|_| self.rng.gen::<f64>() - 0.5).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                continue;
            }
            for x in &mut v {
                *x /= norm;
            }
            // Q := Q (I − 2 v vᵀ)  computed as Q − 2 (Q v) vᵀ — O(n²).
            let mut qv = vec![0.0f64; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += q[(i, j)].to_f64() * v[j];
                }
                qv[i] = acc;
            }
            for i in 0..n {
                for j in 0..n {
                    let upd = q[(i, j)].to_f64() - 2.0 * qv[i] * v[j];
                    q[(i, j)] = T::from_f64(upd);
                }
            }
        }
        q
    }

    /// The blocked operands of Table V / Eq. 11: two `n/2 × n/2` diagonal
    /// blocks `A1, A2` and two `n/2 × n` row blocks `B1, B2`.
    ///
    /// Returns `(a1, a2, b1, b2)`; callers assemble the big matrices with
    /// [`Matrix::block_diag`] and [`Matrix::vcat`].
    pub fn blocked_operands<T: Scalar>(
        &mut self,
        n: usize,
    ) -> (Matrix<T>, Matrix<T>, Matrix<T>, Matrix<T>) {
        assert!(n.is_multiple_of(2), "blocked operands require even n");
        let h = n / 2;
        (self.matrix(h, h), self.matrix(h, h), self.matrix(h, n), self.matrix(h, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = OperandGen::new(42).matrix::<f64>(5, 7);
        let b = OperandGen::new(42).matrix::<f64>(5, 7);
        assert_eq!(a, b);
        let c = OperandGen::new(43).matrix::<f64>(5, 7);
        assert_ne!(a, c);
    }

    #[test]
    fn triangular_structure() {
        let mut g = OperandGen::new(1);
        let l = g.lower_triangular::<f64>(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(l[(i, j)], 0.0, "upper part of L must be zero");
            }
        }
        let u = g.upper_triangular::<f64>(6);
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(u[(i, j)], 0.0, "lower part of U must be zero");
            }
        }
    }

    #[test]
    fn symmetric_structure() {
        let s = OperandGen::new(2).symmetric::<f64>(8);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }

    #[test]
    fn spd_is_diagonally_dominant() {
        let s = OperandGen::new(3).spd::<f64>(10);
        for i in 0..10 {
            let off: f64 = (0..10).filter(|&j| j != i).map(|j| s[(i, j)].abs()).sum();
            assert!(s[(i, i)] > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn diagonal_entries_bounded_away_from_zero() {
        let d = OperandGen::new(4).diagonal::<f64>(100);
        for v in &d.d {
            assert!(v.abs() >= 0.1 - 1e-12);
        }
    }

    #[test]
    fn orthogonal_has_orthonormal_columns() {
        let q = OperandGen::new(5).orthogonal::<f64>(16);
        // QᵀQ == I within tolerance (naive O(n³) check at tiny n).
        for i in 0..16 {
            for j in 0..16 {
                let dot: f64 = (0..16).map(|k| q[(k, i)] * q[(k, j)]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-10, "QtQ[{i},{j}] = {dot}");
            }
        }
    }

    #[test]
    fn blocked_operands_shapes() {
        let (a1, a2, b1, b2) = OperandGen::new(6).blocked_operands::<f32>(10);
        assert_eq!(a1.shape(), (5, 5));
        assert_eq!(a2.shape(), (5, 5));
        assert_eq!(b1.shape(), (5, 10));
        assert_eq!(b2.shape(), (5, 10));
    }

    #[test]
    fn entries_are_bounded() {
        let m = OperandGen::new(7).matrix::<f64>(20, 20);
        assert!(m.max_abs() <= 0.5 + 1e-12);
        assert!(m.all_finite());
    }
}
