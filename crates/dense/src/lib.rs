//! # laab-dense — dense matrix storage for the LAAB suite
//!
//! This crate provides the storage substrate shared by every other LAAB crate:
//!
//! * [`Matrix`] — an owned, row-major, dense matrix over any [`Scalar`]
//!   (`f32`/`f64`). Vectors are represented as `n×1` (column) or `1×n` (row)
//!   matrices, exactly as the paper's test expressions treat them.
//! * [`Scalar`] — the closed set of element types the kernels are instantiated
//!   for. Machine-learning frameworks default to single precision (the paper,
//!   Sec. III, footnote 3), so `f32` is the suite's default; `f64` is used by
//!   tests that need tighter tolerances.
//! * [`gen`] — deterministic, seeded generators for the structured operands
//!   the paper benchmarks: general, lower/upper triangular, symmetric, SPD,
//!   tridiagonal, diagonal, orthogonal, and blocked matrices.
//! * [`Tridiagonal`] / [`Diagonal`] — compact forms consumed by the
//!   specialized kernels (the analogue of what `tf.linalg.tridiagonal_matmul`
//!   receives).
//!
//! The crate is deliberately free of BLAS-style computational kernels; those
//! live in `laab-kernels`. Only O(n²) structural helpers (transpose, concat,
//! submatrix, comparison) are provided here.

#![deny(missing_docs)]

pub mod gen;
mod matrix;
mod scalar;
mod structured;

pub use matrix::{ColIter, Matrix};
pub use scalar::Scalar;
pub use structured::{Diagonal, Tridiagonal};

/// Crate-wide result alias for the (rare) checked constructors.
pub type Result<T> = std::result::Result<T, ShapeError>;

/// Error raised by checked constructors and structural operations when the
/// requested shapes are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub msg: String,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

impl ShapeError {
    /// Construct a new shape error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}
