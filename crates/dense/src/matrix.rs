//! Owned, row-major dense matrix.

use crate::{Scalar, ShapeError};

/// An owned, row-major dense matrix.
///
/// Element `(i, j)` lives at `data[i * cols + j]`. Vectors are matrices with
/// one column (`n×1`) or one row (`1×n`); the paper's test expressions mix
/// vectors and matrices freely and this uniform representation keeps the
/// kernel dispatch honest (a framework that "knew" about vectors would
/// already be exploiting structure).
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// A `rows × cols` matrix with every element equal to `v`.
    pub fn filled(rows: usize, cols: usize, v: T) -> Self {
        Self { rows, cols, data: vec![v; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build a matrix from a generator function `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Checked variant of [`Matrix::from_vec`].
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<T>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: row {i} has length {} != {c}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// A column vector (`n × 1`) from a slice.
    pub fn col_vector(v: &[T]) -> Self {
        Self { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// A row vector (`1 × n`) from a slice.
    pub fn row_vector(v: &[T]) -> Self {
        Self { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has zero elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` for `n×1` or `1×n` shapes (including `1×1`).
    #[inline(always)]
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// `true` for square shapes.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing row-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols, "col index {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrowed strided iterator over column `j` — no allocation, unlike
    /// [`Matrix::col`]. The workhorse of the column-slicing hot paths
    /// (`B[:,j]` nodes in the graph executor and evaluators).
    pub fn col_iter(&self, j: usize) -> ColIter<'_, T> {
        assert!(j < self.cols, "col index {j} out of bounds ({} cols)", self.cols);
        let data = if self.rows == 0 { &self.data[..] } else { &self.data[j..] };
        ColIter { data, step: self.cols, remaining: self.rows }
    }

    /// Column `j` as an owned `rows×1` matrix, built in a single pass
    /// (where `Matrix::col_vector(&m.col(j))` would allocate twice).
    pub fn col_matrix(&self, j: usize) -> Matrix<T> {
        Matrix { rows: self.rows, cols: 1, data: self.col_iter(j).collect() }
    }

    /// Element accessor with bounds check in debug builds.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter with bounds check in debug builds.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Explicit out-of-place transpose (an O(n²) data movement — the cost the
    /// frameworks avoid by folding transposition into GEMM flags).
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Copy of the rectangle `[r0, r1) × [c0, c1)`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Self {
        assert!(
            r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols,
            "submatrix [{r0},{r1})x[{c0},{c1}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let mut out = Self::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Write `block` into the rectangle whose top-left corner is `(r0, c0)`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix<T>) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_submatrix: block {}x{} at ({r0},{c0}) exceeds {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for i in 0..block.rows {
            let cols = self.cols;
            self.data[(r0 + i) * cols + c0..(r0 + i) * cols + c0 + block.cols]
                .copy_from_slice(block.row(i));
        }
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Matrix<T>) -> Self {
        assert_eq!(self.cols, other.cols, "vcat: column counts differ");
        let mut out = Self::zeros(self.rows + other.rows, self.cols);
        out.data[..self.data.len()].copy_from_slice(&self.data);
        out.data[self.data.len()..].copy_from_slice(&other.data);
        out
    }

    /// Horizontal concatenation `[self, other]`.
    pub fn hcat(&self, other: &Matrix<T>) -> Self {
        assert_eq!(self.rows, other.rows, "hcat: row counts differ");
        let mut out = Self::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            let c = self.cols;
            out.row_mut(i)[c..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Split into `parts` equal-width column blocks — the inverse of
    /// repeated [`Matrix::hcat`] over same-shape operands, used to unstack
    /// a multi-RHS product `[C₀ | C₁ | …]` back into per-request results.
    ///
    /// # Panics
    /// When `parts` is zero or does not divide the column count.
    pub fn split_cols(&self, parts: usize) -> Vec<Matrix<T>> {
        assert!(parts > 0, "split_cols: parts must be positive");
        assert_eq!(
            self.cols % parts,
            0,
            "split_cols: {} columns not divisible by {parts}",
            self.cols
        );
        let w = self.cols / parts;
        (0..parts)
            .map(|p| {
                let mut out = Self::zeros(self.rows, w);
                for i in 0..self.rows {
                    out.row_mut(i).copy_from_slice(&self.row(i)[p * w..(p + 1) * w]);
                }
                out
            })
            .collect()
    }

    /// `2×2` block-diagonal assembly `diag(a, b)`; off-diagonal blocks zero.
    ///
    /// This is the constructor used by the blocked-matrix experiment
    /// (Table V, Eq. 11): the caller explicitly materializes the big matrix so
    /// the construction is visible to the framework's computational graph.
    pub fn block_diag(a: &Matrix<T>, b: &Matrix<T>) -> Self {
        let mut out = Self::zeros(a.rows + b.rows, a.cols + b.cols);
        out.set_submatrix(0, 0, a);
        out.set_submatrix(a.rows, a.cols, b);
        out
    }

    /// Elementwise map.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.to_f64().abs()).fold(0.0, f64::max)
    }

    /// `true` when all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Relative Frobenius-norm distance to `other`, `‖a−b‖ / max(1, ‖b‖)`.
    pub fn rel_dist(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "rel_dist: shape mismatch");
        let mut num = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = a.to_f64() - b.to_f64();
            num += d * d;
        }
        num.sqrt() / other.fro_norm().max(1.0)
    }

    /// `true` when `self` and `other` agree within relative tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix<T>, tol: f64) -> bool {
        self.shape() == other.shape() && self.rel_dist(other) <= tol
    }

    /// Sum of the two matrices (O(n²) helper; the timed kernel lives in
    /// `laab-kernels`).
    pub fn add(&self, other: &Matrix<T>) -> Self {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let mut out = self.clone();
        for (o, b) in out.data.iter_mut().zip(&other.data) {
            *o += *b;
        }
        out
    }

    /// Difference of the two matrices.
    pub fn sub(&self, other: &Matrix<T>) -> Self {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let mut out = self.clone();
        for (o, b) in out.data.iter_mut().zip(&other.data) {
            *o -= *b;
        }
        out
    }

    /// The matrix scaled by `alpha`.
    pub fn scale(&self, alpha: T) -> Self {
        self.map(|x| x * alpha)
    }

    /// Convert every element to `f64` (test helper).
    pub fn to_f64(&self) -> Matrix<f64> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x.to_f64()).collect(),
        }
    }
}

/// Borrowed strided iterator over one matrix column (see
/// [`Matrix::col_iter`]).
#[derive(Clone)]
pub struct ColIter<'a, T: Scalar> {
    /// Remaining storage, starting at the next column element.
    data: &'a [T],
    /// Row stride (the matrix's column count).
    step: usize,
    remaining: usize,
}

impl<T: Scalar> Iterator for ColIter<'_, T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        if self.remaining == 0 {
            return None;
        }
        let v = self.data[0];
        self.remaining -= 1;
        if self.remaining > 0 {
            self.data = &self.data[self.step..];
        }
        Some(v)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: Scalar> ExactSizeIterator for ColIter<'_, T> {}

/// Elementwise in-place sum `self += other` — the buffer-reuse form of
/// [`Matrix::add`] for uniquely-owned intermediates.
impl<T: Scalar> std::ops::AddAssign<&Matrix<T>> for Matrix<T> {
    fn add_assign(&mut self, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (o, b) in self.data.iter_mut().zip(&other.data) {
            *o += *b;
        }
    }
}

/// Elementwise in-place difference `self -= other`.
impl<T: Scalar> std::ops::SubAssign<&Matrix<T>> for Matrix<T> {
    fn sub_assign(&mut self, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape(), "sub_assign: shape mismatch");
        for (o, b) in self.data.iter_mut().zip(&other.data) {
            *o -= *b;
        }
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        let c = self.cols;
        &mut self.data[i * c + j]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            if self.cols > show_c {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_r {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::<f64>::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn col_iter_matches_col() {
        let m = Matrix::<f64>::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        for j in 0..3 {
            let it = m.col_iter(j);
            assert_eq!(it.len(), 5);
            assert_eq!(it.collect::<Vec<_>>(), m.col(j));
            assert_eq!(m.col_matrix(j).as_slice(), &m.col(j)[..]);
            assert_eq!(m.col_matrix(j).shape(), (5, 1));
        }
        // Single-row matrices must not index past the backing storage.
        let row = Matrix::<f64>::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(row.col_iter(2).collect::<Vec<_>>(), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_iter_rejects_bad_index() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m.col_iter(2);
    }

    #[test]
    fn add_assign_and_sub_assign_match_out_of_place() {
        let a = Matrix::<f64>::from_fn(3, 4, |i, j| (i + j) as f64);
        let b = Matrix::<f64>::from_fn(3, 4, |i, j| (i * j) as f64 + 1.0);
        let mut sum = a.clone();
        sum += &b;
        assert_eq!(sum, a.add(&b));
        let mut diff = a.clone();
        diff -= &b;
        assert_eq!(diff, a.sub(&b));
    }

    #[test]
    fn identity_is_identity() {
        let i = Matrix::<f32>::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::<f64>::from_fn(37, 53, |i, j| (i * 100 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (53, 37));
        assert_eq!(t[(5, 7)], m[(7, 5)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_and_set() {
        let m = Matrix::<f64>::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let s = m.submatrix(1, 4, 2, 5);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::<f64>::zeros(6, 6);
        z.set_submatrix(1, 2, &s);
        assert_eq!(z[(1, 2)], m[(1, 2)]);
        assert_eq!(z[(3, 4)], m[(3, 4)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn concat_shapes_and_content() {
        let a = Matrix::<f32>::filled(2, 3, 1.0);
        let b = Matrix::<f32>::filled(4, 3, 2.0);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (6, 3));
        assert_eq!(v[(0, 0)], 1.0);
        assert_eq!(v[(5, 2)], 2.0);

        let c = Matrix::<f32>::filled(2, 5, 3.0);
        let h = a.hcat(&c);
        assert_eq!(h.shape(), (2, 8));
        assert_eq!(h[(1, 2)], 1.0);
        assert_eq!(h[(1, 3)], 3.0);
    }

    #[test]
    fn block_diag_layout() {
        let a = Matrix::<f64>::filled(2, 2, 1.0);
        let b = Matrix::<f64>::filled(3, 3, 2.0);
        let d = Matrix::block_diag(&a, &b);
        assert_eq!(d.shape(), (5, 5));
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(4, 4)], 2.0);
        assert_eq!(d[(0, 4)], 0.0);
        assert_eq!(d[(4, 0)], 0.0);
    }

    #[test]
    fn norms_and_comparison() {
        let a = Matrix::<f64>::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        let mut b = a.clone();
        b[(0, 0)] += 1e-13;
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-16));
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Matrix::<f64>::filled(2, 2, 2.0);
        let b = Matrix::<f64>::filled(2, 2, 3.0);
        assert_eq!(a.add(&b)[(0, 0)], 5.0);
        assert_eq!(b.sub(&a)[(1, 1)], 1.0);
        assert_eq!(a.scale(0.5)[(0, 1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::<f32>::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn try_from_vec_reports_error() {
        assert!(Matrix::<f32>::try_from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::<f32>::try_from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn vector_constructors() {
        let c = Matrix::<f64>::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        assert!(c.is_vector());
        let r = Matrix::<f64>::row_vector(&[1.0, 2.0]);
        assert_eq!(r.shape(), (1, 2));
        assert!(r.is_vector());
        assert!(!Matrix::<f64>::zeros(2, 2).is_vector());
    }
}
