//! The [`Scalar`] element trait.
//!
//! LAAB instantiates its kernels for exactly two element types, `f32` and
//! `f64`, mirroring the BLAS `s`/`d` precision prefixes. The trait is sealed
//! by convention (no third implementation is expected) and keeps the bound
//! list of every generic kernel short.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type usable by the LAAB kernels.
///
/// The associated constants expose everything the kernels and the test
/// tolerances need without pulling in an external numerics crate.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Two (used by the `S + S -> 2 S` scaling fusion).
    const TWO: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;

    /// Short BLAS-style precision prefix (`"s"` or `"d"`), used in reports.
    const PREFIX: &'static str;

    /// Lossy conversion from `f64` (used by generators and cost models).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64` (used by norms and reporting).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused (or contracted) multiply-add: `self * a + b`.
    ///
    /// Delegates to the hardware FMA when available; the kernels rely on
    /// this form so that the compiler can keep accumulators in registers.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// IEEE maximum of two values.
    fn max(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $prefix:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const EPSILON: Self = <$t>::EPSILON;
            const PREFIX: &'static str = $prefix;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // Plain `a*b+c` lets LLVM vectorize without requiring a
                // hardware FMA unit; precision is adequate for benchmarking.
                self * a + b
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
        }
    };
}

impl_scalar!(f32, "s");
impl_scalar!(f64, "d");

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::ONE + T::ONE, T::TWO);
        assert!(T::ONE.is_finite());
        assert_eq!(T::from_f64(-2.0).abs(), T::TWO);
        assert_eq!(T::from_f64(4.0).sqrt(), T::TWO);
        assert_eq!(T::TWO.mul_add(T::TWO, T::ONE).to_f64(), 5.0);
        assert_eq!(T::ONE.max(T::TWO), T::TWO);
    }

    #[test]
    fn f32_scalar_ops() {
        roundtrip::<f32>();
        assert_eq!(f32::PREFIX, "s");
    }

    #[test]
    fn f64_scalar_ops() {
        roundtrip::<f64>();
        assert_eq!(f64::PREFIX, "d");
    }

    #[test]
    fn nonfinite_detected() {
        assert!(!f32::NAN.is_finite());
        assert!(!f64::INFINITY.is_finite());
    }
}
