//! Compact storage for structured matrices.
//!
//! The paper's Experiment 3 probes whether frameworks exploit tridiagonal and
//! diagonal structure. Frameworks receive the operands as ordinary dense
//! matrices (and ignore the structure); the specialized kernels — like
//! `tf.linalg.tridiagonal_matmul` — receive these compact forms instead.

use crate::{Matrix, Scalar};

/// A tridiagonal matrix stored as its three diagonals.
///
/// For an `n×n` matrix: `sub` has length `n-1` (entries `(i+1, i)`), `main`
/// has length `n` (entries `(i, i)`), `sup` has length `n-1` (entries
/// `(i, i+1)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal<T: Scalar> {
    /// Sub-diagonal, length `n-1`.
    pub sub: Vec<T>,
    /// Main diagonal, length `n`.
    pub main: Vec<T>,
    /// Super-diagonal, length `n-1`.
    pub sup: Vec<T>,
}

impl<T: Scalar> Tridiagonal<T> {
    /// Construct from the three diagonals.
    ///
    /// # Panics
    /// If the lengths are inconsistent.
    pub fn new(sub: Vec<T>, main: Vec<T>, sup: Vec<T>) -> Self {
        let n = main.len();
        assert!(n > 0, "tridiagonal matrix must be non-empty");
        assert_eq!(sub.len(), n - 1, "sub-diagonal must have length n-1");
        assert_eq!(sup.len(), n - 1, "super-diagonal must have length n-1");
        Self { sub, main, sup }
    }

    /// Matrix dimension `n`.
    pub fn n(&self) -> usize {
        self.main.len()
    }

    /// Expand to a dense `n×n` matrix (what the frameworks are handed).
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.n();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = self.main[i];
            if i + 1 < n {
                m[(i + 1, i)] = self.sub[i];
                m[(i, i + 1)] = self.sup[i];
            }
        }
        m
    }

    /// Extract the compact form from a dense matrix, ignoring entries outside
    /// the three central diagonals.
    pub fn from_dense(m: &Matrix<T>) -> Self {
        assert!(m.is_square(), "tridiagonal extraction requires a square matrix");
        let n = m.rows();
        let main = (0..n).map(|i| m[(i, i)]).collect();
        let sub = (0..n - 1).map(|i| m[(i + 1, i)]).collect();
        let sup = (0..n - 1).map(|i| m[(i, i + 1)]).collect();
        Self { sub, main, sup }
    }
}

/// A diagonal matrix stored as its main diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagonal<T: Scalar> {
    /// The main diagonal, length `n`.
    pub d: Vec<T>,
}

impl<T: Scalar> Diagonal<T> {
    /// Construct from the diagonal entries.
    pub fn new(d: Vec<T>) -> Self {
        assert!(!d.is_empty(), "diagonal matrix must be non-empty");
        Self { d }
    }

    /// Matrix dimension `n`.
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Expand to a dense `n×n` matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.n();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = self.d[i];
        }
        m
    }

    /// Extract the main diagonal of a dense matrix.
    pub fn from_dense(m: &Matrix<T>) -> Self {
        assert!(m.is_square(), "diagonal extraction requires a square matrix");
        Self { d: (0..m.rows()).map(|i| m[(i, i)]).collect() }
    }

    /// View as a tridiagonal matrix with zero off-diagonals (a diagonal
    /// matrix is the special case the paper calls out in Experiment 3).
    pub fn to_tridiagonal(&self) -> Tridiagonal<T> {
        let n = self.n();
        Tridiagonal::new(vec![T::ZERO; n - 1], self.d.clone(), vec![T::ZERO; n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiagonal_dense_roundtrip() {
        let t = Tridiagonal::new(vec![1.0f64, 2.0], vec![10.0, 20.0, 30.0], vec![4.0, 5.0]);
        let d = t.to_dense();
        assert_eq!(d[(0, 0)], 10.0);
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(0, 1)], 4.0);
        assert_eq!(d[(2, 0)], 0.0);
        assert_eq!(Tridiagonal::from_dense(&d), t);
    }

    #[test]
    fn diagonal_dense_roundtrip() {
        let dg = Diagonal::new(vec![1.0f32, 2.0, 3.0]);
        let d = dg.to_dense();
        assert_eq!(d[(2, 2)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(Diagonal::from_dense(&d), dg);
    }

    #[test]
    fn diagonal_as_tridiagonal() {
        let dg = Diagonal::new(vec![1.0f64, 2.0, 3.0]);
        let t = dg.to_tridiagonal();
        assert_eq!(t.to_dense(), dg.to_dense());
    }

    #[test]
    #[should_panic(expected = "length n-1")]
    fn tridiagonal_bad_lengths_panic() {
        let _ = Tridiagonal::new(vec![1.0f64], vec![1.0, 2.0, 3.0], vec![1.0]);
    }
}
