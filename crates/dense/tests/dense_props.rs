//! Property tests for the storage layer: structural operations are
//! involutive/consistent on arbitrary shapes.

use laab_dense::gen::OperandGen;
use laab_dense::{Diagonal, Matrix, Tridiagonal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_an_involution(r in 1usize..40, c in 1usize..40, seed in any::<u64>()) {
        let m = OperandGen::new(seed).matrix::<f64>(r, c);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_elements(r in 1usize..20, c in 1usize..20, seed in any::<u64>()) {
        let m = OperandGen::new(seed).matrix::<f64>(r, c);
        let t = m.transpose();
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn submatrix_set_roundtrip(
        r in 2usize..30,
        c in 2usize..30,
        seed in any::<u64>(),
    ) {
        let m = OperandGen::new(seed).matrix::<f64>(r, c);
        let (r0, r1) = (r / 4, r / 4 + r / 2);
        let (c0, c1) = (c / 4, c / 4 + c / 2);
        let block = m.submatrix(r0, r1, c0, c1);
        let mut z = Matrix::<f64>::zeros(r, c);
        z.set_submatrix(r0, c0, &block);
        for i in r0..r1 {
            for j in c0..c1 {
                prop_assert_eq!(z[(i, j)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn vcat_then_submatrix_recovers_parts(
        r1 in 1usize..15,
        r2 in 1usize..15,
        c in 1usize..15,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let a = g.matrix::<f64>(r1, c);
        let b = g.matrix::<f64>(r2, c);
        let v = a.vcat(&b);
        prop_assert_eq!(v.submatrix(0, r1, 0, c), a);
        prop_assert_eq!(v.submatrix(r1, r1 + r2, 0, c), b);
    }

    #[test]
    fn hcat_then_submatrix_recovers_parts(
        r in 1usize..15,
        c1 in 1usize..15,
        c2 in 1usize..15,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let a = g.matrix::<f64>(r, c1);
        let b = g.matrix::<f64>(r, c2);
        let h = a.hcat(&b);
        prop_assert_eq!(h.submatrix(0, r, 0, c1), a);
        prop_assert_eq!(h.submatrix(0, r, c1, c1 + c2), b);
    }

    #[test]
    fn block_diag_transpose_commutes(
        n1 in 1usize..10,
        n2 in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut g = OperandGen::new(seed);
        let a = g.matrix::<f64>(n1, n1);
        let b = g.matrix::<f64>(n2, n2);
        // blkdiag(A,B)ᵀ == blkdiag(Aᵀ,Bᵀ)
        let lhs = Matrix::block_diag(&a, &b).transpose();
        let rhs = Matrix::block_diag(&a.transpose(), &b.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn compact_forms_roundtrip(n in 1usize..40, seed in any::<u64>()) {
        let mut g = OperandGen::new(seed);
        let t = g.tridiagonal::<f64>(n);
        prop_assert_eq!(Tridiagonal::from_dense(&t.to_dense()), t);
        let d = g.diagonal::<f64>(n);
        prop_assert_eq!(Diagonal::from_dense(&d.to_dense()), d);
    }

    #[test]
    fn norms_are_scale_homogeneous(r in 1usize..20, c in 1usize..20, seed in any::<u64>()) {
        let m = OperandGen::new(seed).matrix::<f64>(r, c);
        let s = m.scale(3.0);
        prop_assert!((s.fro_norm() - 3.0 * m.fro_norm()).abs() < 1e-9 * (1.0 + m.fro_norm()));
        prop_assert!((s.max_abs() - 3.0 * m.max_abs()).abs() < 1e-12);
    }

    #[test]
    fn rel_dist_is_zero_iff_equal(r in 1usize..15, c in 1usize..15, seed in any::<u64>()) {
        let m = OperandGen::new(seed).matrix::<f64>(r, c);
        prop_assert_eq!(m.rel_dist(&m), 0.0);
        let mut other = m.clone();
        other[(0, 0)] += 1.0;
        prop_assert!(m.rel_dist(&other) > 0.0);
    }
}
