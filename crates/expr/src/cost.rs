//! FLOP cost models.
//!
//! Two pricings of the same expression:
//!
//! * [`naive_cost`] — what TF/PyT pay: every product is a dense
//!   GEMM/GEMV (`2·m·k·n`), structure ignored. Transposes fold into kernel
//!   flags (0 FLOPs), matching the MKL dispatch the paper confirms in
//!   Table I.
//! * [`aware_cost`] — what a linear-algebra-aware compiler could pay:
//!   identity products are free, diagonal/tridiagonal products are O(n²),
//!   triangular products and `X·Xᵀ` (SYRK) cost half a GEMM.
//!
//! The models price the expression *as written* — they do not search for
//! rewrites (that is `laab-rewrite`'s job, which uses these functions as
//! its objective).

use crate::expr::is_transpose_pair;
use crate::{Context, Expr, Props};

/// Cost of one product `l·r` with result `m×n` and inner dimension `k`,
/// given the factors' properties. `syrk_pattern` marks structural `X·Xᵀ`.
///
/// Shared by both models ([`naive_cost`] passes empty properties).
pub fn mul_cost(m: usize, k: usize, n: usize, lp: Props, rp: Props, syrk_pattern: bool) -> u64 {
    let (m64, k64, n64) = (m as u64, k as u64, n as u64);
    // Most specific structure first.
    if lp.contains(Props::IDENTITY) || rp.contains(Props::IDENTITY) {
        return 0;
    }
    if lp.contains(Props::DIAGONAL) {
        return k64 * n64; // row scaling of r
    }
    if rp.contains(Props::DIAGONAL) {
        return m64 * k64; // column scaling of l
    }
    if lp.contains(Props::TRIDIAGONAL) {
        return laab_kernels::flops::tridiag_matmul(k, n);
    }
    if rp.contains(Props::TRIDIAGONAL) {
        return laab_kernels::flops::tridiag_matmul(k, m);
    }
    if lp.intersects(Props::LOWER_TRIANGULAR.union(Props::UPPER_TRIANGULAR))
        || rp.intersects(Props::LOWER_TRIANGULAR.union(Props::UPPER_TRIANGULAR))
    {
        return m64 * k64 * n64; // TRMM: half of GEMM
    }
    if syrk_pattern && m == n {
        return m64 * k64 * n64; // SYRK: half of GEMM
    }
    // Dense GEMM/GEMV/DOT — the `2·m·k·n` formula covers all three
    // (m == 1 or n == 1 reduce it to the GEMV/DOT counts).
    2 * m64 * k64 * n64
}

/// FLOPs to evaluate `expr` exactly as written, pricing every product as a
/// dense kernel (the frameworks' behaviour).
pub fn naive_cost(expr: &Expr, ctx: &Context) -> u64 {
    cost_rec(expr, ctx, false)
}

/// FLOPs to evaluate `expr` exactly as written, but dispatching each node to
/// the cheapest kernel its operands' (inferred) properties allow.
pub fn aware_cost(expr: &Expr, ctx: &Context) -> u64 {
    cost_rec(expr, ctx, true)
}

/// FLOPs to evaluate `expr` pricing *structurally identical subexpressions
/// once* — the cost a back-end with common-subexpression elimination pays.
///
/// This is the objective the rewriter minimizes: it is what makes the
/// re-association `(AᵀB)ᵀAᵀB → (AᵀB)ᵀ(AᵀB)` profitable (the duplicated
/// `AᵀB` is then shared, Table II's E2-vs-E3 finding).
pub fn shared_cost(expr: &Expr, ctx: &Context, aware: bool) -> u64 {
    use std::collections::HashSet;
    let mut seen: HashSet<&Expr> = HashSet::new();
    let mut total = 0u64;
    fn walk<'e>(
        e: &'e Expr,
        ctx: &Context,
        aware: bool,
        seen: &mut HashSet<&'e Expr>,
        total: &mut u64,
    ) {
        if seen.contains(e) {
            return;
        }
        // A subtree proven to *be* the identity is never computed at all.
        if aware && e.props(ctx).contains(Props::IDENTITY) {
            seen.insert(e);
            return;
        }
        seen.insert(e);
        for c in e.children() {
            walk(c, ctx, aware, seen, total);
        }
        *total += own_cost(e, ctx, aware);
    }
    walk(expr, ctx, aware, &mut seen, &mut total);
    total
}

/// The FLOPs attributable to evaluating `expr`'s root node alone (children
/// priced separately).
fn own_cost(expr: &Expr, ctx: &Context, aware: bool) -> u64 {
    match expr {
        Expr::Mul(a, b) => {
            let (sa, sb) = (a.shape(ctx), b.shape(ctx));
            let (lp, rp, syrk) = if aware {
                (a.props(ctx), b.props(ctx), is_transpose_pair(a, b))
            } else {
                (Props::NONE, Props::NONE, false)
            };
            mul_cost(sa.rows, sa.cols, sb.cols, lp, rp, syrk)
        }
        Expr::Add(a, _) | Expr::Sub(a, _) => a.shape(ctx).len() as u64,
        Expr::Scale(_, x) => x.shape(ctx).len() as u64,
        _ => 0,
    }
}

fn cost_rec(expr: &Expr, ctx: &Context, aware: bool) -> u64 {
    // If inference proves the value *is* the identity (e.g. QᵀQ for
    // orthogonal Q — the paper's Experiment 3 discussion), nothing needs
    // computing: the node and its entire subtree are free.
    if aware && expr.props(ctx).contains(Props::IDENTITY) {
        return 0;
    }
    let children: u64 = expr.children().iter().map(|c| cost_rec(c, ctx, aware)).sum();
    // Transposes fold into kernel flags; slicing and concatenation are data
    // movement, not FLOPs (consistent with the paper's counting) — those
    // cases contribute zero in `own_cost`.
    children + own_cost(expr, ctx, aware)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{identity, var};

    fn ctx(n: usize) -> Context {
        Context::new()
            .with("A", n, n)
            .with("B", n, n)
            .with("H", n, n)
            .with("x", n, 1)
            .with("y", n, 1)
            .with_props("L", n, n, Props::LOWER_TRIANGULAR)
            .with_props("D", n, n, Props::DIAGONAL)
            .with_props("T", n, n, Props::TRIDIAGONAL)
    }

    const N: usize = 100;
    const N3: u64 = (N as u64) * (N as u64) * (N as u64);
    const N2: u64 = (N as u64) * (N as u64);

    #[test]
    fn chain_parenthesization_costs_differ() {
        // Experiment 2: HᵀHx left-to-right is O(n³), right-to-left O(n²).
        let c = ctx(N);
        let ltr = var("H").t() * var("H") * var("x");
        let rtl = var("H").t() * (var("H") * var("x"));
        assert_eq!(naive_cost(&ltr, &c), 2 * N3 + 2 * N2);
        assert_eq!(naive_cost(&rtl, &c), 2 * N2 + 2 * N2);
    }

    #[test]
    fn mixed_chain_costs_match_paper() {
        // Experiment 2, Expression 7: Hᵀ y xᵀ H.
        let c = ctx(N);
        let naive = Expr::chain(&[var("H").t(), var("y"), var("x").t(), var("H")]);
        // ((Hᵀ y) xᵀ) H: 2n² + 2n² + 2n³.
        assert_eq!(naive_cost(&naive, &c), 2 * N2 + 2 * N2 + 2 * N3);
        let opt = (var("H").t() * var("y")) * (var("x").t() * var("H"));
        // 2n² + 2n² + 2n² (outer product).
        assert_eq!(naive_cost(&opt, &c), 6 * N2);
    }

    #[test]
    fn aware_cost_uses_structure() {
        let c = ctx(N);
        let lb = var("L") * var("B");
        assert_eq!(naive_cost(&lb, &c), 2 * N3);
        assert_eq!(aware_cost(&lb, &c), N3); // TRMM: half

        let aat = var("A") * var("A").t();
        assert_eq!(aware_cost(&aat, &c), N3); // SYRK: half

        let tb = var("T") * var("B");
        assert_eq!(aware_cost(&tb, &c), 6 * N2);

        let db = var("D") * var("B");
        assert_eq!(aware_cost(&db, &c), N2);

        let ib = identity(N) * var("B");
        assert_eq!(aware_cost(&ib, &c), 0);
    }

    #[test]
    fn distributivity_eq9_costs() {
        // Table V, Eq 9: AB + AC vs A(B+C); here C := H for brevity.
        let c = ctx(N);
        let lhs = var("A") * var("B") + var("A") * var("H");
        let rhs = var("A") * (var("B") + var("H"));
        assert_eq!(naive_cost(&lhs, &c), 4 * N3 + N2);
        assert_eq!(naive_cost(&rhs, &c), 2 * N3 + N2);
    }

    #[test]
    fn distributivity_eq10_rhs_more_expensive() {
        // Table V, Eq 10: Ax − Hᵀ(Hx) [O(n²)] vs (A − HᵀH)x [O(n³)].
        let c = ctx(N);
        let lhs = var("A") * var("x") - var("H").t() * (var("H") * var("x"));
        let rhs = (var("A") - var("H").t() * var("H")) * var("x");
        assert!(naive_cost(&lhs, &c) < naive_cost(&rhs, &c));
        assert_eq!(naive_cost(&lhs, &c), 6 * N2 + (N as u64));
        assert_eq!(naive_cost(&rhs, &c), 2 * N3 + N2 + 2 * N2);
    }

    #[test]
    fn identity_makes_orthogonal_product_free() {
        let c = Context::new().with_props("Q", N, N, Props::ORTHOGONAL).with("B", N, N);
        let qtq_b = (var("Q").t() * var("Q")) * var("B");
        // QᵀQ infers to identity, so the outer product is free too.
        assert_eq!(aware_cost(&qtq_b, &c), 0);
        assert_eq!(naive_cost(&qtq_b, &c), 4 * N3);
    }

    #[test]
    fn scale_and_add_are_quadratic() {
        let c = ctx(N);
        assert_eq!(naive_cost(&(var("A") + var("B")), &c), N2);
        assert_eq!(naive_cost(&crate::scale(2.0, var("A")), &c), N2);
    }

    #[test]
    fn shared_cost_prices_duplicates_once() {
        let c = ctx(N);
        let s = var("A").t() * var("B");
        // E1 = AᵀB + AᵀB: tree cost 2 GEMMs + add; shared cost 1 GEMM + add.
        let e1 = s.clone() + s.clone();
        assert_eq!(naive_cost(&e1, &c), 4 * N3 + N2);
        assert_eq!(shared_cost(&e1, &c, false), 2 * N3 + N2);
        // E2 = (AᵀB)ᵀ(AᵀB): shared cost 2 GEMMs.
        let e2 = s.t() * s.clone();
        assert_eq!(shared_cost(&e2, &c, false), 2 * N3 + 2 * N3);
        // E3 (flat chain) shares nothing: 3 GEMMs.
        let e3 = s.t() * var("A").t() * var("B");
        assert_eq!(shared_cost(&e3, &c, false), 3 * 2 * N3);
    }

    #[test]
    fn shared_cost_skips_identity_subtrees_in_aware_mode() {
        let c = Context::new().with_props("Q", N, N, Props::ORTHOGONAL).with("B", N, N);
        let e = (var("Q").t() * var("Q")) * var("B");
        assert_eq!(shared_cost(&e, &c, true), 0);
        assert_eq!(shared_cost(&e, &c, false), 4 * N3);
    }
}
