//! Reference evaluation: the semantics oracle.
//!
//! [`eval`] computes an expression's value with the simplest correct
//! strategy — recursive descent, explicit transposition, every product
//! through the packed GEMM. It carries no optimizations at all, which makes
//! it the ground truth that every optimized back-end (eager, graph,
//! rewritten) is tested against.

use std::collections::HashMap;

use laab_dense::{Matrix, Scalar};
use laab_kernels::{matmul, Trans};

use crate::{Context, Expr, Props, Shape};

/// Binding of operand names to concrete matrices.
#[derive(Debug, Clone, Default)]
pub struct Env<T: Scalar> {
    map: HashMap<String, Matrix<T>>,
}

impl<T: Scalar> Env<T> {
    /// An empty environment.
    pub fn new() -> Self {
        Self { map: HashMap::new() }
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn insert(&mut self, name: &str, value: Matrix<T>) {
        self.map.insert(name.to_string(), value);
    }

    /// Builder-style binding.
    pub fn with(mut self, name: &str, value: Matrix<T>) -> Self {
        self.insert(name, value);
        self
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Matrix<T>> {
        self.map.get(name)
    }

    /// Look up a binding, panicking with a clear message when missing.
    pub fn expect(&self, name: &str) -> &Matrix<T> {
        self.get(name).unwrap_or_else(|| panic!("operand `{name}` is not bound in the Env"))
    }

    /// Derive the typing [`Context`] from the bound values, declaring every
    /// operand with the given property lookup (use `|_| Props::NONE` when
    /// structure is irrelevant).
    pub fn context_with(&self, props_of: impl Fn(&str) -> Props) -> Context {
        let mut ctx = Context::new();
        let mut names: Vec<_> = self.map.keys().collect();
        names.sort();
        for name in names {
            let m = &self.map[name];
            ctx.declare(name, Shape::new(m.rows(), m.cols()), props_of(name));
        }
        ctx
    }
}

enum Val<'e, T: Scalar> {
    Ref(&'e Matrix<T>),
    Owned(Matrix<T>),
}

impl<'e, T: Scalar> Val<'e, T> {
    fn get(&self) -> &Matrix<T> {
        match self {
            Val::Ref(m) => m,
            Val::Owned(m) => m,
        }
    }
    fn into_owned(self) -> Matrix<T> {
        match self {
            Val::Ref(m) => m.clone(),
            Val::Owned(m) => m,
        }
    }
}

/// Evaluate `expr` under `env` with the naive reference strategy.
///
/// # Panics
/// On unbound operands or shape mismatches (the same conditions
/// [`Expr::try_shape`] reports statically).
pub fn eval<T: Scalar>(expr: &Expr, env: &Env<T>) -> Matrix<T> {
    eval_val(expr, env).into_owned()
}

fn eval_val<'e, T: Scalar>(expr: &Expr, env: &'e Env<T>) -> Val<'e, T> {
    match expr {
        Expr::Var(name) => Val::Ref(env.expect(name)),
        Expr::Identity(n) => Val::Owned(Matrix::identity(*n)),
        Expr::Transpose(x) => Val::Owned(eval_val(x, env).get().transpose()),
        Expr::Mul(a, b) => {
            let (va, vb) = (eval_val(a, env), eval_val(b, env));
            Val::Owned(matmul(va.get(), Trans::No, vb.get(), Trans::No))
        }
        Expr::Add(a, b) => {
            let (va, vb) = (eval_val(a, env), eval_val(b, env));
            // Reuse an owned operand buffer instead of allocating; IEEE
            // addition commutes exactly, so either side may accumulate.
            match (va, vb) {
                (Val::Owned(mut m), vb) => {
                    m += vb.get();
                    Val::Owned(m)
                }
                (Val::Ref(r), Val::Owned(mut m)) => {
                    m += r;
                    Val::Owned(m)
                }
                (Val::Ref(r), Val::Ref(r2)) => Val::Owned(r.add(r2)),
            }
        }
        Expr::Sub(a, b) => {
            let (va, vb) = (eval_val(a, env), eval_val(b, env));
            match va {
                Val::Owned(mut m) => {
                    m -= vb.get();
                    Val::Owned(m)
                }
                Val::Ref(r) => Val::Owned(r.sub(vb.get())),
            }
        }
        Expr::Scale(c, x) => Val::Owned(eval_val(x, env).get().scale(T::from_f64(c.0))),
        Expr::Elem(x, i, j) => {
            let v = eval_val(x, env);
            Val::Owned(Matrix::filled(1, 1, v.get()[(*i, *j)]))
        }
        Expr::Row(x, i) => {
            let v = eval_val(x, env);
            Val::Owned(Matrix::row_vector(v.get().row(*i)))
        }
        Expr::Col(x, j) => {
            let v = eval_val(x, env);
            Val::Owned(v.get().col_matrix(*j))
        }
        Expr::VCat(a, b) => {
            let (va, vb) = (eval_val(a, env), eval_val(b, env));
            Val::Owned(va.get().vcat(vb.get()))
        }
        Expr::HCat(a, b) => {
            let (va, vb) = (eval_val(a, env), eval_val(b, env));
            Val::Owned(va.get().hcat(vb.get()))
        }
        Expr::BlockDiag(a, b) => {
            let (va, vb) = (eval_val(a, env), eval_val(b, env));
            Val::Owned(Matrix::block_diag(va.get(), vb.get()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{elem, identity, scale, var, vcat};
    use laab_dense::gen::OperandGen;

    fn env_n(n: usize, seed: u64) -> Env<f64> {
        let mut g = OperandGen::new(seed);
        Env::new()
            .with("A", g.matrix(n, n))
            .with("B", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1))
    }

    #[test]
    fn identity_times_anything_is_anything() {
        let env = env_n(6, 1);
        let e = identity(6) * var("A");
        assert!(eval(&e, &env).approx_eq(env.expect("A"), 1e-14));
    }

    #[test]
    fn image_restoration_variants_agree() {
        // Fig 1: y := Hᵀy + (I − HᵀH)x in three algebraic forms.
        let n = 12;
        let mut g = OperandGen::new(2);
        let env = Env::<f64>::new()
            .with("H", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1));
        let (h, x, y) = (var("H"), var("x"), var("y"));
        let v1 = h.t() * y.clone() + (identity(n) - h.t() * h.clone()) * x.clone();
        let v2 = h.t() * y.clone() + x.clone() - h.t() * (h.clone() * x.clone());
        let v3 = h.t() * (y.clone() - h.clone() * x.clone()) + x.clone();
        let (r1, r2, r3) = (eval(&v1, &env), eval(&v2, &env), eval(&v3, &env));
        assert!(r1.approx_eq(&r2, 1e-12));
        assert!(r2.approx_eq(&r3, 1e-12));
    }

    #[test]
    fn parenthesization_does_not_change_value() {
        let env = env_n(9, 3);
        let (h, x) = (var("A"), var("x"));
        let ltr = h.t() * h.clone() * x.clone();
        let rtl = h.t() * (h.clone() * x.clone());
        assert!(eval(&ltr, &env).approx_eq(&eval(&rtl, &env), 1e-12));
    }

    #[test]
    fn scale_and_sub() {
        let env = env_n(5, 4);
        let twice = scale(2.0, var("A"));
        let sum = var("A") + var("A");
        assert!(eval(&twice, &env).approx_eq(&eval(&sum, &env), 1e-15));
        let zero = var("A") - var("A");
        assert_eq!(eval(&zero, &env).max_abs(), 0.0);
    }

    #[test]
    fn slicing_matches_full_computation() {
        let env = env_n(7, 5);
        let full = eval(&(var("A") * var("B")), &env);
        let sliced = eval(&elem(var("A") * var("B"), 2, 3), &env);
        assert!((sliced[(0, 0)] - full[(2, 3)]).abs() < 1e-13);
        let dot = eval(&(var("A").row(2) * var("B").col(3)), &env);
        assert!((dot[(0, 0)] - full[(2, 3)]).abs() < 1e-13);
    }

    #[test]
    fn blocked_identity_eq11() {
        // Table V / Eq 11: blkdiag(A1,A2) · [B1; B2] == [A1B1; A2B2].
        let mut g = OperandGen::new(6);
        let env = Env::<f64>::new()
            .with("A1", g.matrix(4, 4))
            .with("A2", g.matrix(4, 4))
            .with("B1", g.matrix(4, 8))
            .with("B2", g.matrix(4, 8));
        let lhs = crate::block_diag(var("A1"), var("A2")) * vcat(var("B1"), var("B2"));
        let rhs = vcat(var("A1") * var("B1"), var("A2") * var("B2"));
        assert!(eval(&lhs, &env).approx_eq(&eval(&rhs, &env), 1e-12));
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_operand_panics() {
        let env = Env::<f32>::new();
        let _ = eval(&var("Z"), &env);
    }

    #[test]
    fn context_with_derives_shapes() {
        let env = env_n(4, 7);
        let ctx = env.context_with(|_| Props::NONE);
        assert_eq!(ctx.expect("A").shape, Shape::new(4, 4));
        assert_eq!(ctx.expect("x").shape, Shape::new(4, 1));
    }
}
