//! The expression AST and its static analyses.

use crate::{Context, Props, Shape};

/// A scalar factor with `Eq`/`Hash` over the IEEE bit pattern, so whole
/// expressions can be hashed and structurally compared (required by the
/// DAG hash-consing and the rewriter's visited-set).
#[derive(Debug, Clone, Copy)]
pub struct Factor(pub f64);

impl PartialEq for Factor {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for Factor {}
impl std::hash::Hash for Factor {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

/// A symbolic linear algebra expression.
///
/// The AST mirrors what a user can type in TF/PyT's Python front-end:
/// named operands, `@`-products (binary, and therefore carrying the user's
/// parenthesization), `+`/`-`, transposition, scalar scaling, slicing, and
/// the concatenations used to assemble blocked matrices. There is no `Dot`
/// variant: an inner product is a `1×k · k×1` product, and back-ends decide
/// which kernel that maps to — exactly the dispatch question the paper
/// probes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A named operand, declared in the [`Context`].
    Var(String),
    /// The `n×n` identity matrix (`Iₙ` in the paper's Expression 1).
    Identity(usize),
    /// Transposition `Xᵀ`.
    Transpose(Box<Expr>),
    /// Matrix product `X·Y` (binary; chains are nested left-associatively
    /// by the builders unless explicitly parenthesized).
    Mul(Box<Expr>, Box<Expr>),
    /// Elementwise sum `X + Y`.
    Add(Box<Expr>, Box<Expr>),
    /// Elementwise difference `X − Y`.
    Sub(Box<Expr>, Box<Expr>),
    /// Scalar scaling `c·X`.
    Scale(Factor, Box<Expr>),
    /// Single-element extraction `X[i, j]` (a `1×1` result).
    Elem(Box<Expr>, usize, usize),
    /// Row extraction `X[i, :]` (a `1×n` result).
    Row(Box<Expr>, usize),
    /// Column extraction `X[:, j]` (an `m×1` result).
    Col(Box<Expr>, usize),
    /// Vertical concatenation `[X; Y]`.
    VCat(Box<Expr>, Box<Expr>),
    /// Horizontal concatenation `[X, Y]`.
    HCat(Box<Expr>, Box<Expr>),
    /// Block-diagonal assembly `blkdiag(X, Y)`.
    BlockDiag(Box<Expr>, Box<Expr>),
}

/// A named operand.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// The `n×n` identity.
pub fn identity(n: usize) -> Expr {
    Expr::Identity(n)
}

/// Scalar scaling `c·x`.
pub fn scale(c: f64, x: Expr) -> Expr {
    Expr::Scale(Factor(c), Box::new(x))
}

/// Single element `x[i, j]`.
pub fn elem(x: Expr, i: usize, j: usize) -> Expr {
    Expr::Elem(Box::new(x), i, j)
}

/// Vertical concatenation `[a; b]`.
pub fn vcat(a: Expr, b: Expr) -> Expr {
    Expr::VCat(Box::new(a), Box::new(b))
}

/// Block-diagonal assembly `blkdiag(a, b)`.
pub fn block_diag(a: Expr, b: Expr) -> Expr {
    Expr::BlockDiag(Box::new(a), Box::new(b))
}

impl Expr {
    /// Transposition `selfᵀ`.
    pub fn t(&self) -> Expr {
        Expr::Transpose(Box::new(self.clone()))
    }

    /// Row extraction `self[i, :]`.
    pub fn row(&self, i: usize) -> Expr {
        Expr::Row(Box::new(self.clone()), i)
    }

    /// Column extraction `self[:, j]`.
    pub fn col(&self, j: usize) -> Expr {
        Expr::Col(Box::new(self.clone()), j)
    }

    /// Left-associative product of a non-empty sequence — the shape the
    /// Python `@` operator produces for an unparenthesized chain.
    pub fn chain(parts: &[Expr]) -> Expr {
        assert!(!parts.is_empty(), "chain of zero factors");
        let mut it = parts.iter().cloned();
        let first = it.next().unwrap();
        it.fold(first, |acc, x| acc * x)
    }

    /// Flatten a product tree into its ordered factors:
    /// `Mul(Mul(a,b),c)` → `[a, b, c]`. Non-product expressions are a
    /// single factor. Transposes and other nodes are opaque factors.
    pub fn product_factors(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
            match e {
                Expr::Mul(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Immediate children, for generic traversals.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Var(_) | Expr::Identity(_) => vec![],
            Expr::Transpose(x)
            | Expr::Scale(_, x)
            | Expr::Elem(x, _, _)
            | Expr::Row(x, _)
            | Expr::Col(x, _) => vec![x],
            Expr::Mul(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::VCat(a, b)
            | Expr::HCat(a, b)
            | Expr::BlockDiag(a, b) => vec![a, b],
        }
    }

    /// Rebuild this node with new children (must match the arity of
    /// [`Expr::children`]). Used by the rewriter to apply rules at depth.
    pub fn with_children(&self, mut kids: Vec<Expr>) -> Expr {
        let mut next = || Box::new(kids.remove(0));
        match self {
            Expr::Var(_) | Expr::Identity(_) => self.clone(),
            Expr::Transpose(_) => Expr::Transpose(next()),
            Expr::Scale(c, _) => Expr::Scale(*c, next()),
            Expr::Elem(_, i, j) => Expr::Elem(next(), *i, *j),
            Expr::Row(_, i) => Expr::Row(next(), *i),
            Expr::Col(_, j) => Expr::Col(next(), *j),
            Expr::Mul(_, _) => Expr::Mul(next(), next()),
            Expr::Add(_, _) => Expr::Add(next(), next()),
            Expr::Sub(_, _) => Expr::Sub(next(), next()),
            Expr::VCat(_, _) => Expr::VCat(next(), next()),
            Expr::HCat(_, _) => Expr::HCat(next(), next()),
            Expr::BlockDiag(_, _) => Expr::BlockDiag(next(), next()),
        }
    }

    /// Total number of AST nodes.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Shape of the expression under `ctx`.
    ///
    /// # Panics
    /// On shape mismatches or undeclared operands (with a descriptive
    /// message); use [`Expr::try_shape`] for a fallible version.
    pub fn shape(&self, ctx: &Context) -> Shape {
        self.try_shape(ctx).unwrap_or_else(|e| panic!("{e} in `{self}`"))
    }

    /// Fallible shape inference.
    pub fn try_shape(&self, ctx: &Context) -> Result<Shape, String> {
        Ok(match self {
            Expr::Var(name) => {
                ctx.get(name).ok_or_else(|| format!("operand `{name}` undeclared"))?.shape
            }
            Expr::Identity(n) => Shape::new(*n, *n),
            Expr::Transpose(x) => x.try_shape(ctx)?.t(),
            Expr::Mul(a, b) => {
                let (sa, sb) = (a.try_shape(ctx)?, b.try_shape(ctx)?);
                if sa.cols != sb.rows {
                    return Err(format!(
                        "product dimension mismatch: {sa} · {sb} (inner {} vs {})",
                        sa.cols, sb.rows
                    ));
                }
                Shape::new(sa.rows, sb.cols)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                let (sa, sb) = (a.try_shape(ctx)?, b.try_shape(ctx)?);
                if sa != sb {
                    return Err(format!("elementwise shape mismatch: {sa} vs {sb}"));
                }
                sa
            }
            Expr::Scale(_, x) => x.try_shape(ctx)?,
            Expr::Elem(x, i, j) => {
                let s = x.try_shape(ctx)?;
                if *i >= s.rows || *j >= s.cols {
                    return Err(format!("element ({i},{j}) out of bounds for {s}"));
                }
                Shape::new(1, 1)
            }
            Expr::Row(x, i) => {
                let s = x.try_shape(ctx)?;
                if *i >= s.rows {
                    return Err(format!("row {i} out of bounds for {s}"));
                }
                Shape::new(1, s.cols)
            }
            Expr::Col(x, j) => {
                let s = x.try_shape(ctx)?;
                if *j >= s.cols {
                    return Err(format!("column {j} out of bounds for {s}"));
                }
                Shape::new(s.rows, 1)
            }
            Expr::VCat(a, b) => {
                let (sa, sb) = (a.try_shape(ctx)?, b.try_shape(ctx)?);
                if sa.cols != sb.cols {
                    return Err(format!("vcat column mismatch: {sa} vs {sb}"));
                }
                Shape::new(sa.rows + sb.rows, sa.cols)
            }
            Expr::HCat(a, b) => {
                let (sa, sb) = (a.try_shape(ctx)?, b.try_shape(ctx)?);
                if sa.rows != sb.rows {
                    return Err(format!("hcat row mismatch: {sa} vs {sb}"));
                }
                Shape::new(sa.rows, sa.cols + sb.cols)
            }
            Expr::BlockDiag(a, b) => {
                let (sa, sb) = (a.try_shape(ctx)?, b.try_shape(ctx)?);
                Shape::new(sa.rows + sb.rows, sa.cols + sb.cols)
            }
        })
    }

    /// Inferred properties of the expression's value under `ctx`.
    pub fn props(&self, ctx: &Context) -> Props {
        match self {
            Expr::Var(name) => ctx.expect(name).props,
            Expr::Identity(_) => Props::IDENTITY.normalize(),
            Expr::Transpose(x) => x.props(ctx).transpose(),
            Expr::Mul(a, b) => structural_mul_props(
                a.props(ctx),
                b.props(ctx),
                is_transpose_pair(a, b),
                matches!(&**a, Expr::Transpose(_)),
            ),
            Expr::Add(a, b) => a.props(ctx).add(b.props(ctx)),
            Expr::Sub(a, b) => a.props(ctx).add(b.props(ctx)).remove(Props::SPD),
            Expr::Scale(c, x) => x.props(ctx).scale(c.0),
            Expr::Elem(_, _, _) | Expr::Row(_, _) | Expr::Col(_, _) => Props::NONE,
            Expr::VCat(_, _) | Expr::HCat(_, _) => Props::NONE,
            Expr::BlockDiag(a, b) => a.props(ctx).intersect(b.props(ctx)).normalize(),
        }
    }

    /// `true` if the named operand occurs anywhere in the expression.
    pub fn uses_var(&self, name: &str) -> bool {
        match self {
            Expr::Var(v) => v == name,
            _ => self.children().iter().any(|c| c.uses_var(name)),
        }
    }
}

/// The product property rules the bit-lattice cannot see, shared by
/// [`Expr::props`] and the e-graph analysis in `laab-rewrite` (one
/// implementation so the two analyses cannot drift): `X·Xᵀ` is symmetric
/// (the SYRK pattern of Experiment 3), and `QᵀQ` for orthogonal `Q` is
/// the identity.
///
/// `transpose_pair` marks that the factors are equal up to transposition
/// (either orientation); `left_is_transpose` marks that the *left* factor
/// is itself a transposition, so the pair reads `Aᵀ·A`.
pub fn structural_mul_props(
    lp: Props,
    rp: Props,
    transpose_pair: bool,
    left_is_transpose: bool,
) -> Props {
    let p = lp.mul(rp);
    let p = if transpose_pair { p.union(Props::SYMMETRIC) } else { p };
    if transpose_pair && left_is_transpose && lp.contains(Props::ORTHOGONAL) {
        // Aᵀ·A with A orthogonal ⇒ identity.
        return Props::IDENTITY.normalize();
    }
    p.normalize()
}

/// `true` when `(a, b)` form the pattern `X·Xᵀ` or `Xᵀ·X` (structurally).
pub fn is_transpose_pair(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (x, Expr::Transpose(inner)) if **inner == *x => true,
        (Expr::Transpose(inner), x) if **inner == *x => true,
        _ => false,
    }
}

// ---- operator overloads (consuming; clone at the call-site to reuse) ----

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        scale(-1.0, self)
    }
}

// ---- pretty-printing ----

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn needs_parens_in_product(e: &Expr) -> bool {
            matches!(e, Expr::Add(_, _) | Expr::Sub(_, _) | Expr::Scale(_, _))
        }
        fn fmt_factor(e: &Expr, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            if needs_parens_in_product(e) {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        }
        match self {
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Identity(_) => write!(f, "I"),
            Expr::Transpose(x) => {
                if matches!(**x, Expr::Var(_) | Expr::Identity(_)) {
                    write!(f, "{x}^T")
                } else {
                    write!(f, "({x})^T")
                }
            }
            Expr::Mul(a, b) => {
                fmt_factor(a, f)?;
                write!(f, " ")?;
                // Parenthesize a product on the right to make the user's
                // association visible: `A (B C)` vs `A B C`.
                if matches!(**b, Expr::Mul(_, _)) || needs_parens_in_product(b) {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Expr::Add(a, b) => write!(f, "{a} + {b}"),
            Expr::Sub(a, b) => {
                if matches!(**b, Expr::Add(_, _) | Expr::Sub(_, _)) {
                    write!(f, "{a} - ({b})")
                } else {
                    write!(f, "{a} - {b}")
                }
            }
            Expr::Scale(c, x) => {
                if matches!(**x, Expr::Var(_) | Expr::Identity(_)) {
                    write!(f, "{}*{x}", c.0)
                } else {
                    write!(f, "{}*({x})", c.0)
                }
            }
            Expr::Elem(x, i, j) => {
                if matches!(**x, Expr::Var(_)) {
                    write!(f, "{x}[{i},{j}]")
                } else {
                    write!(f, "({x})[{i},{j}]")
                }
            }
            Expr::Row(x, i) => {
                if matches!(**x, Expr::Var(_)) {
                    write!(f, "{x}[{i},:]")
                } else {
                    write!(f, "({x})[{i},:]")
                }
            }
            Expr::Col(x, j) => {
                if matches!(**x, Expr::Var(_)) {
                    write!(f, "{x}[:,{j}]")
                } else {
                    write!(f, "({x})[:,{j}]")
                }
            }
            Expr::VCat(a, b) => write!(f, "[{a}; {b}]"),
            Expr::HCat(a, b) => write!(f, "[{a}, {b}]"),
            Expr::BlockDiag(a, b) => write!(f, "blkdiag({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_n(n: usize) -> Context {
        Context::new().with("A", n, n).with("B", n, n).with("x", n, 1).with("y", n, 1)
    }

    #[test]
    fn chain_is_left_associative() {
        let c = Expr::chain(&[var("A"), var("B"), var("A")]);
        // ((A B) A)
        match &c {
            Expr::Mul(l, r) => {
                assert!(matches!(**l, Expr::Mul(_, _)));
                assert!(matches!(**r, Expr::Var(_)));
            }
            _ => panic!("expected product"),
        }
        assert_eq!(c.product_factors().len(), 3);
    }

    #[test]
    fn shape_inference_products_and_vectors() {
        let ctx = ctx_n(8);
        let e = var("A").t() * var("B") * var("x");
        assert_eq!(e.shape(&ctx), Shape::new(8, 1));
        let outer = var("x") * var("y").t();
        assert_eq!(outer.shape(&ctx), Shape::new(8, 8));
        let dot = var("x").t() * var("y");
        assert_eq!(dot.shape(&ctx), Shape::new(1, 1));
    }

    #[test]
    fn shape_errors_are_descriptive() {
        let ctx = ctx_n(8);
        let bad = var("x") * var("A");
        let err = bad.try_shape(&ctx).unwrap_err();
        assert!(err.contains("dimension mismatch"), "{err}");
        let undeclared = var("Z").try_shape(&ctx).unwrap_err();
        assert!(undeclared.contains("undeclared"));
        let oob = elem(var("A"), 99, 0).try_shape(&ctx).unwrap_err();
        assert!(oob.contains("out of bounds"));
    }

    #[test]
    fn concat_shapes() {
        let ctx = Context::new().with("P", 2, 3).with("Q", 4, 3).with("R", 2, 5);
        assert_eq!(vcat(var("P"), var("Q")).shape(&ctx), Shape::new(6, 3));
        let h = Expr::HCat(Box::new(var("P")), Box::new(var("R")));
        assert_eq!(h.shape(&ctx), Shape::new(2, 8));
        assert_eq!(block_diag(var("P"), var("Q")).shape(&ctx), Shape::new(6, 6));
        assert!(vcat(var("P"), var("R")).try_shape(&ctx).is_err());
    }

    #[test]
    fn props_flow_through_operators() {
        let ctx = Context::new()
            .with_props("L", 4, 4, Props::LOWER_TRIANGULAR)
            .with_props("D", 4, 4, Props::DIAGONAL)
            .with_props("Q", 4, 4, Props::ORTHOGONAL)
            .with("A", 4, 4);
        assert!((var("L") * var("L")).props(&ctx).contains(Props::LOWER_TRIANGULAR));
        assert!(var("L").t().props(&ctx).contains(Props::UPPER_TRIANGULAR));
        assert!((var("D") * var("D")).props(&ctx).contains(Props::DIAGONAL));
        assert!((var("A") * var("A")).props(&ctx).is_none());
        // QᵀQ is the identity.
        let qtq = var("Q").t() * var("Q");
        assert!(qtq.props(&ctx).contains(Props::IDENTITY));
        // A·Aᵀ is symmetric even for general A (the SYRK pattern).
        let aat = var("A") * var("A").t();
        assert!(aat.props(&ctx).contains(Props::SYMMETRIC));
    }

    #[test]
    fn display_shows_association() {
        let left = Expr::chain(&[var("A"), var("B"), var("x")]);
        assert_eq!(left.to_string(), "A B x");
        let right = var("A") * (var("B") * var("x"));
        assert_eq!(right.to_string(), "A (B x)");
        let e2 = (var("A").t() * var("B")).t() * (var("A").t() * var("B"));
        assert_eq!(e2.to_string(), "(A^T B)^T (A^T B)");
        let dist = var("A") * (var("B") + var("A"));
        assert_eq!(dist.to_string(), "A (B + A)");
        assert_eq!(elem(var("A") + var("B"), 2, 2).to_string(), "(A + B)[2,2]");
    }

    #[test]
    fn with_children_roundtrips() {
        let e = (var("A") + var("B")) * var("x").t();
        let kids: Vec<Expr> = e.children().into_iter().cloned().collect();
        assert_eq!(e.with_children(kids), e);
    }

    #[test]
    fn transpose_pair_detection() {
        let a = var("A");
        assert!(is_transpose_pair(&a, &a.t()));
        assert!(is_transpose_pair(&a.t(), &a));
        assert!(!is_transpose_pair(&a, &var("B").t()));
        let s = var("A").t() * var("B");
        assert!(is_transpose_pair(&s.t(), &s));
    }

    #[test]
    fn uses_var_walks_tree() {
        let e = (var("A") * var("B")).t() + identity(4);
        assert!(e.uses_var("A"));
        assert!(!e.uses_var("C"));
    }

    #[test]
    fn node_count_counts_all() {
        let e = var("A") * var("B") + var("A");
        assert_eq!(e.node_count(), 5);
    }
}
