//! # laab-expr — the symbolic expression layer
//!
//! The paper's test expressions are written once, symbolically, and then
//! executed through several back-ends (framework eager mode, framework graph
//! mode, hand-coded kernels, the LA-aware rewriter). This crate is the
//! single definition point:
//!
//! * [`Expr`] — the "blackboard syntax" AST. Binary products are
//!   *left-associative* unless the user parenthesizes, exactly like the `@`
//!   operator in Python — the associativity the paper shows the frameworks
//!   never revisit (Experiment 2).
//! * [`Shape`] / [`Context`] — static shape checking and inference.
//! * [`Props`] — the matrix-property lattice (triangular, symmetric,
//!   diagonal, tridiagonal, identity, orthogonal) with inference through
//!   every operator (Experiment 3's missing knowledge).
//! * [`cost`] — FLOP cost models: [`cost::naive_cost`] prices an expression
//!   the way the frameworks execute it (every product is a GEMM/GEMV);
//!   [`cost::aware_cost`] prices it the way a property-aware compiler could
//!   (TRMM/SYRK/structured kernels).
//! * [`eval`] — a straightforward reference evaluator over `laab-kernels`,
//!   used as the semantics oracle by every test in the workspace.

#![deny(missing_docs)]

pub mod cost;
pub mod eval;
mod expr;
pub mod memory;
pub mod parser;
mod props;
mod shape;

pub use expr::{
    block_diag, elem, identity, is_transpose_pair, scale, structural_mul_props, var, vcat, Expr,
    Factor,
};
pub use parser::parse;
pub use props::Props;
pub use shape::{Context, Shape};
