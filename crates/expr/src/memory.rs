//! Memory-traffic model.
//!
//! The paper's Fig. 6 discussion (after Peise & Bientinesi \[34\]) notes that
//! variants with identical FLOP counts can differ in execution time because
//! of memory overheads, and that "minimizing FLOP count does not always
//! minimize execution time, especially when the overheads due to memory
//! references dominate". This module provides the complementary metric: a
//! static estimate of the bytes each node moves, under the standard
//! streaming model (each operand read once, each result written once —
//! packed/blocked kernels approximate this for cache-resident panels).
//!
//! Combined with the FLOP models in [`crate::cost`], it yields the
//! arithmetic intensity (FLOPs/byte) that separates compute-bound
//! expressions (GEMM-dominated, intensity ~n/2) from memory-bound ones
//! (GEMV/elementwise chains, intensity < 1) — the regime distinction the
//! paper uses to justify FLOPs as its primary cost indicator for dense
//! chains.

use crate::{Context, Expr};

/// Bytes moved and FLOPs performed by an expression, plus derived ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEstimate {
    /// Bytes read from operands and intermediates.
    pub bytes_read: u64,
    /// Bytes written to intermediates and the result.
    pub bytes_written: u64,
    /// FLOPs under the naive (as-written, dense-kernel) model.
    pub flops: u64,
}

impl TrafficEstimate {
    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in FLOPs per byte (0 when no traffic).
    pub fn intensity(&self) -> f64 {
        if self.bytes_total() == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes_total() as f64
        }
    }

    /// `true` when the expression sits in the compute-bound regime for a
    /// machine with the given balance point (FLOPs per byte at which
    /// compute and bandwidth cost the same — ~10 for current CPUs).
    pub fn is_compute_bound(&self, machine_balance: f64) -> bool {
        self.intensity() >= machine_balance
    }
}

/// Estimate the traffic of evaluating `expr` as written, for element size
/// `elem_bytes` (4 for `f32`, 8 for `f64`).
///
/// Model: every node reads each operand once and writes its result once;
/// transposes that feed products are folded (no traffic), other transposes
/// copy. This is the same per-kernel convention the FLOP model uses, so the
/// two compose into a consistent intensity estimate.
pub fn traffic(expr: &Expr, ctx: &Context, elem_bytes: u64) -> TrafficEstimate {
    let mut t = TrafficEstimate { bytes_read: 0, bytes_written: 0, flops: 0 };
    walk(expr, ctx, elem_bytes, &mut t, true);
    t.flops = crate::cost::naive_cost(expr, ctx);
    t
}

fn bytes_of(e: &Expr, ctx: &Context, elem_bytes: u64) -> u64 {
    e.shape(ctx).len() as u64 * elem_bytes
}

fn walk(e: &Expr, ctx: &Context, eb: u64, t: &mut TrafficEstimate, transpose_folds: bool) {
    // Children first (intermedates are materialized bottom-up).
    for c in e.children() {
        // A transpose directly under a product is a kernel flag: its child
        // is what actually gets read.
        let folds = matches!(e, Expr::Mul(_, _));
        walk(c, ctx, eb, t, folds);
    }
    match e {
        Expr::Var(_) | Expr::Identity(_) => {
            // Leaves are read by their consumers; counted at the consumer.
        }
        Expr::Transpose(x) => {
            if !transpose_folds {
                // Materialized transpose: read + write the full operand.
                let b = bytes_of(x, ctx, eb);
                t.bytes_read += b;
                t.bytes_written += b;
            }
        }
        Expr::Mul(a, b) => {
            t.bytes_read += bytes_of(a, ctx, eb) + bytes_of(b, ctx, eb);
            t.bytes_written += bytes_of(e, ctx, eb);
        }
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            t.bytes_read += bytes_of(a, ctx, eb) + bytes_of(b, ctx, eb);
            t.bytes_written += bytes_of(e, ctx, eb);
        }
        Expr::Scale(_, x) => {
            t.bytes_read += bytes_of(x, ctx, eb);
            t.bytes_written += bytes_of(e, ctx, eb);
        }
        Expr::Elem(_, _, _) => {
            t.bytes_read += eb;
            t.bytes_written += eb;
        }
        Expr::Row(x, _) | Expr::Col(x, _) => {
            let s = x.shape(ctx);
            let len = match e {
                Expr::Row(_, _) => s.cols,
                _ => s.rows,
            } as u64;
            t.bytes_read += len * eb;
            t.bytes_written += len * eb;
        }
        Expr::VCat(a, b) | Expr::HCat(a, b) | Expr::BlockDiag(a, b) => {
            t.bytes_read += bytes_of(a, ctx, eb) + bytes_of(b, ctx, eb);
            t.bytes_written += bytes_of(e, ctx, eb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var;

    fn ctx(n: usize) -> Context {
        Context::new().with("A", n, n).with("B", n, n).with("x", n, 1)
    }

    const N: usize = 100;
    const NB: u64 = (N * N * 4) as u64; // bytes of one n×n f32 matrix

    #[test]
    fn gemm_traffic_and_intensity() {
        let c = ctx(N);
        let e = var("A") * var("B");
        let t = traffic(&e, &c, 4);
        assert_eq!(t.bytes_read, 2 * NB);
        assert_eq!(t.bytes_written, NB);
        assert_eq!(t.flops, 2 * (N as u64).pow(3));
        // Intensity ≈ 2n³ / 3n²·4 = n/6 ≫ 1: compute bound.
        assert!(t.intensity() > 10.0);
        assert!(t.is_compute_bound(10.0));
    }

    #[test]
    fn gemv_is_memory_bound() {
        let c = ctx(N);
        let e = var("A") * var("x");
        let t = traffic(&e, &c, 4);
        // Reads the matrix + vector, writes a vector: intensity ≈ 0.5.
        assert_eq!(t.bytes_read, NB + (N as u64) * 4);
        assert!(t.intensity() < 1.0);
        assert!(!t.is_compute_bound(10.0));
    }

    #[test]
    fn folded_transpose_is_free_materialized_is_not() {
        let c = ctx(N);
        let folded = var("A").t() * var("B");
        let t1 = traffic(&folded, &c, 4);
        assert_eq!(t1.bytes_read, 2 * NB, "transpose folded into the product");
        let materialized = (var("A").t() + var("B")) * var("B");
        let t2 = traffic(&materialized, &c, 4);
        // Aᵀ materializes (read+write) before the add.
        assert_eq!(t2.bytes_read, 2 * NB + 2 * NB + NB);
        assert_eq!(t2.bytes_written, NB + NB + NB);
    }

    #[test]
    fn fig6_variants_have_identical_traffic() {
        // Both instruction orders of (AB)(CD) move the same bytes — the
        // static model cannot (and should not) distinguish them; only
        // dynamic cache effects can, which is the paper's point.
        let c = Context::new().with("A", N, N).with("B", N, N).with("C", N, N).with("D", N, N);
        let u_first = (var("A") * var("B")) * (var("C") * var("D"));
        let t = traffic(&u_first, &c, 4);
        assert_eq!(t.bytes_read, 6 * NB);
        assert_eq!(t.bytes_written, 3 * NB);
    }

    #[test]
    fn partial_access_traffic_collapse() {
        let c = ctx(N);
        let naive = crate::elem(var("A") * var("B"), 2, 2);
        let reco = var("A").row(2) * var("B").col(2);
        let tn = traffic(&naive, &c, 4);
        let tr = traffic(&reco, &c, 4);
        // naive ≈ 3 n² elements vs reco ≈ 6 n: an Θ(n/2) traffic gap.
        assert!(
            tr.bytes_total() * 20 < tn.bytes_total(),
            "recommended form moves a small fraction of the bytes: {} vs {}",
            tr.bytes_total(),
            tn.bytes_total()
        );
    }

    #[test]
    fn f64_doubles_traffic() {
        let c = ctx(N);
        let e = var("A") * var("B");
        assert_eq!(traffic(&e, &c, 8).bytes_total(), 2 * traffic(&e, &c, 4).bytes_total());
    }
}
