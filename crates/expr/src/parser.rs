//! A parser for the blackboard syntax.
//!
//! The paper's premise is that users write linear algebra "at a high level
//! of abstraction, where the syntax closely resembles the one used on a
//! blackboard". This module accepts exactly that notation as text:
//!
//! ```text
//! H' y + (I - H' H) x          # Fig. 1, variant 1   (' = transpose)
//! (A^T B)^T (A^T B)            # Table II, E2        (^T also accepted)
//! A B + A C                    # Table V, Eq. 9      (juxtaposition = product)
//! 2 A - 0.5 (B + C)            # scalar factors
//! (A B)[2,2]                   # element access;  A[2,:] row;  A[:,2] column
//! ```
//!
//! Products are parsed **left-associatively**, exactly like Python's `@` —
//! so an unparenthesized chain carries the same (suboptimal) evaluation
//! order the paper's Experiment 2 measures. A bare `I` takes its dimension
//! from the surrounding expression (`I(4)` pins it explicitly).

use crate::{Context, Expr, Factor};

/// Parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position in the input.
    pub at: usize,
    /// Description of what went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}
impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Transpose, // ' or ^T
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                out.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '[' => {
                out.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                out.push((i, Tok::RBracket));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            ':' => {
                out.push((i, Tok::Colon));
                i += 1;
            }
            '\'' => {
                out.push((i, Tok::Transpose));
                i += 1;
            }
            '^' => {
                if bytes.get(i + 1) == Some(&b'T') {
                    out.push((i, Tok::Transpose));
                    i += 2;
                } else {
                    return Err(ParseError { at: i, msg: "expected `^T`".into() });
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'e')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let v: f64 = text.parse().map_err(|_| ParseError {
                    at: start,
                    msg: format!("invalid number `{text}`"),
                })?;
                out.push((start, Tok::Number(v)));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError { at: i, msg: format!("unexpected character `{other}`") })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map(|(a, _)| *a).unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError { at: self.at(), msg: format!("expected {what}") })
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { at: self.at(), msg: msg.into() }
    }

    // expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    acc = acc + self.term()?;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    acc = acc - self.term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    // term := ['-'] factor (['*'] factor)*   — juxtaposition is product.
    fn term(&mut self) -> Result<Expr, ParseError> {
        let negate = if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut scale = 1.0f64;
        let mut acc: Option<Expr> = None;
        loop {
            match self.peek() {
                Some(Tok::Number(v)) => {
                    let v = *v;
                    self.pos += 1;
                    scale *= v;
                    // Allow `2 * A` as well as `2 A`.
                    if self.peek() == Some(&Tok::Star) {
                        self.pos += 1;
                    }
                }
                Some(Tok::Star) => {
                    self.pos += 1;
                }
                Some(Tok::Ident(_)) | Some(Tok::LParen) => {
                    let f = self.postfix()?;
                    acc = Some(match acc {
                        None => f,
                        Some(prev) => prev * f,
                    });
                }
                _ => break,
            }
        }
        let mut e = match acc {
            Some(e) => e,
            None if scale != 1.0 => {
                return Err(self.err("a scalar must multiply a matrix expression"))
            }
            None => return Err(self.err("expected an operand")),
        };
        let total = if negate { -scale } else { scale };
        if total != 1.0 {
            e = Expr::Scale(Factor(total), Box::new(e));
        }
        Ok(e)
    }

    // postfix := primary (transpose | slice)*
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::Transpose) => {
                    self.pos += 1;
                    e = e.t();
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    e = self.slice(e)?;
                }
                _ => return Ok(e),
            }
        }
    }

    // slice := '[' (idx ',' idx | idx ',' ':' | ':' ',' idx) ']'
    fn slice(&mut self, base: Expr) -> Result<Expr, ParseError> {
        let row: Option<usize> = match self.peek() {
            Some(Tok::Colon) => {
                self.pos += 1;
                None
            }
            Some(Tok::Number(v)) if v.fract() == 0.0 && *v >= 0.0 => {
                let i = *v as usize;
                self.pos += 1;
                Some(i)
            }
            _ => return Err(self.err("expected a row index or `:`")),
        };
        self.expect(&Tok::Comma, "`,` in slice")?;
        let col: Option<usize> = match self.peek() {
            Some(Tok::Colon) => {
                self.pos += 1;
                None
            }
            Some(Tok::Number(v)) if v.fract() == 0.0 && *v >= 0.0 => {
                let j = *v as usize;
                self.pos += 1;
                Some(j)
            }
            _ => return Err(self.err("expected a column index or `:`")),
        };
        self.expect(&Tok::RBracket, "`]`")?;
        match (row, col) {
            (Some(i), Some(j)) => Ok(Expr::Elem(Box::new(base), i, j)),
            (Some(i), None) => Ok(Expr::Row(Box::new(base), i)),
            (None, Some(j)) => Ok(Expr::Col(Box::new(base), j)),
            (None, None) => Err(self.err("`[:,:]` is a no-op slice")),
        }
    }

    // primary := ident | 'I' ['(' n ')'] | '(' expr ')'
    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) if name == "I" => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let n = match self.bump() {
                        Some(Tok::Number(v)) if v.fract() == 0.0 && v > 0.0 => v as usize,
                        _ => return Err(self.err("expected a dimension in `I(n)`")),
                    };
                    self.expect(&Tok::RParen, "`)` after `I(n`")?;
                    Ok(Expr::Identity(n))
                } else {
                    // Placeholder; resolved against the context afterwards.
                    Ok(Expr::Identity(0))
                }
            }
            Some(Tok::Ident(name)) => Ok(Expr::Var(name)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "closing `)`")?;
                Ok(e)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected an identifier or `(`"))
            }
        }
    }
}

/// Resolve bare-`I` placeholders (`Identity(0)`) against sibling shapes.
fn resolve_identity(e: &Expr, ctx: &Context) -> Expr {
    fn is_placeholder(e: &Expr) -> bool {
        matches!(e, Expr::Identity(0))
    }
    let kids: Vec<Expr> = e.children().iter().map(|c| resolve_identity(c, ctx)).collect();
    let e = e.with_children(kids);
    match &e {
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let fix = |side: &Expr, other: &Expr| -> Expr {
                if is_placeholder(side) {
                    if let Ok(s) = other.try_shape(ctx) {
                        if s.is_square() {
                            return Expr::Identity(s.rows);
                        }
                    }
                }
                side.clone()
            };
            let (na, nb) = (fix(a, b), fix(b, a));
            e.with_children(vec![na, nb])
        }
        Expr::Mul(a, b) => {
            let mut na = (**a).clone();
            let mut nb = (**b).clone();
            if is_placeholder(&na) {
                if let Ok(s) = b.try_shape(ctx) {
                    na = Expr::Identity(s.rows);
                }
            }
            if is_placeholder(&nb) {
                if let Ok(s) = a.try_shape(ctx) {
                    nb = Expr::Identity(s.cols);
                }
            }
            e.with_children(vec![na, nb])
        }
        _ => e,
    }
}

/// Parse blackboard syntax into an [`Expr`], resolving bare `I` against the
/// context and type-checking the result.
///
/// # Errors
/// Lexical/syntactic errors with byte offsets; shape errors from the final
/// type check.
pub fn parse(src: &str, ctx: &Context) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err(ParseError { at: 0, msg: "empty expression".into() });
    }
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError { at: p.at(), msg: "trailing input".into() });
    }
    let e = resolve_identity(&e, ctx);
    e.try_shape(ctx).map_err(|msg| ParseError { at: 0, msg })?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var;

    fn ctx(n: usize) -> Context {
        Context::new()
            .with("A", n, n)
            .with("B", n, n)
            .with("C", n, n)
            .with("H", n, n)
            .with("x", n, 1)
            .with("y", n, 1)
    }

    #[test]
    fn parses_fig1_variant1() {
        let c = ctx(8);
        let e = parse("H' y + (I - H' H) x", &c).unwrap();
        let want =
            var("H").t() * var("y") + (crate::identity(8) - var("H").t() * var("H")) * var("x");
        assert_eq!(e, want);
    }

    #[test]
    fn parses_table2_expressions() {
        let c = ctx(8);
        let s = var("A").t() * var("B");
        assert_eq!(parse("A^T B", &c).unwrap(), s);
        assert_eq!(parse("A^T B + A^T B", &c).unwrap(), s.clone() + s.clone());
        assert_eq!(parse("(A^T B)^T (A^T B)", &c).unwrap(), s.t() * s.clone());
        // The flat chain keeps left-association.
        assert_eq!(parse("(A^T B)^T A^T B", &c).unwrap(), s.t() * var("A").t() * var("B"));
    }

    #[test]
    fn juxtaposition_is_left_associative() {
        let c = ctx(8);
        let e = parse("H' H x", &c).unwrap();
        assert_eq!(e, var("H").t() * var("H") * var("x"));
        let explicit = parse("H' (H x)", &c).unwrap();
        assert_eq!(explicit, var("H").t() * (var("H") * var("x")));
        assert_ne!(e, explicit, "association is preserved, not normalized");
    }

    #[test]
    fn scalars_and_negation() {
        let c = ctx(4);
        assert_eq!(parse("2 A", &c).unwrap(), crate::scale(2.0, var("A")));
        assert_eq!(parse("2 * A", &c).unwrap(), crate::scale(2.0, var("A")));
        assert_eq!(parse("-A", &c).unwrap(), crate::scale(-1.0, var("A")));
        assert_eq!(parse("0.5 A B", &c).unwrap(), crate::scale(0.5, var("A") * var("B")));
        // a - 2 b
        let e = parse("A - 2 B", &c).unwrap();
        assert_eq!(e, var("A") - crate::scale(2.0, var("B")));
    }

    #[test]
    fn slices() {
        let c = ctx(8);
        assert_eq!(parse("A[2,3]", &c).unwrap(), crate::elem(var("A"), 2, 3));
        assert_eq!(parse("A[2,:]", &c).unwrap(), var("A").row(2));
        assert_eq!(parse("A[:,3]", &c).unwrap(), var("A").col(3));
        assert_eq!(parse("(A B)[2,2]", &c).unwrap(), crate::elem(var("A") * var("B"), 2, 2));
        assert_eq!(parse("A[2,:] B[:,2]", &c).unwrap(), var("A").row(2) * var("B").col(2));
    }

    #[test]
    fn identity_forms() {
        let c = ctx(6);
        assert_eq!(parse("I(6) A", &c).unwrap(), crate::identity(6) * var("A"));
        // Bare I resolves from the sibling.
        assert_eq!(parse("I - A", &c).unwrap(), crate::identity(6) - var("A"));
        assert_eq!(parse("I A", &c).unwrap(), crate::identity(6) * var("A"));
    }

    #[test]
    fn errors_are_located_and_described() {
        let c = ctx(4);
        let err = parse("A + ", &c).unwrap_err();
        assert!(err.msg.contains("expected an operand"), "{err}");
        let err = parse("A @ B", &c).unwrap_err();
        assert!(err.msg.contains("unexpected character"), "{err}");
        let err = parse("A[1]", &c).unwrap_err();
        assert!(err.msg.contains("`,`"), "{err}");
        let err = parse("x A", &c).unwrap_err();
        assert!(err.msg.contains("dimension mismatch"), "{err}");
        let err = parse("Z", &c).unwrap_err();
        assert!(err.msg.contains("undeclared"), "{err}");
        let err = parse("", &c).unwrap_err();
        assert!(err.msg.contains("empty"), "{err}");
        let err = parse("2", &c).unwrap_err();
        assert!(err.msg.contains("scalar"), "{err}");
    }

    #[test]
    fn parse_then_eval_matches_builders() {
        let n = 6;
        let c = ctx(n);
        let mut g = laab_dense::gen::OperandGen::new(9);
        let env = crate::eval::Env::<f64>::new()
            .with("H", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1));
        let parsed = parse("H'(y - H x) + x", &c).unwrap();
        let built = var("H").t() * (var("y") - var("H") * var("x")) + var("x");
        assert_eq!(parsed, built);
        let a = crate::eval::eval(&parsed, &env);
        let b = crate::eval::eval(&built, &env);
        assert!(a.approx_eq(&b, 1e-14));
    }
}
