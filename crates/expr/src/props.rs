//! The matrix-property lattice.
//!
//! Experiment 3 of the paper shows that TF/PyT ignore operand structure.
//! This module is the knowledge they are missing: a small bit-lattice of
//! properties with implication closure ("identity ⇒ diagonal ⇒ triangular ∧
//! tridiagonal ∧ symmetric") and inference rules through each operator,
//! used by the aware cost model and the property-dispatching evaluator.

/// A set of matrix properties, represented as a bitset.
///
/// Properties are *claims the user made or inference derived*; the numeric
/// kernels trust them (as BLAS trusts `uplo`). [`Props::normalize`] applies
/// the implication closure so that, e.g., declaring [`Props::DIAGONAL`]
/// automatically grants both triangular properties.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Props(u16);

impl Props {
    /// No known structure.
    pub const NONE: Props = Props(0);
    /// Zero strictly above the diagonal.
    pub const LOWER_TRIANGULAR: Props = Props(1 << 0);
    /// Zero strictly below the diagonal.
    pub const UPPER_TRIANGULAR: Props = Props(1 << 1);
    /// `A == Aᵀ`.
    pub const SYMMETRIC: Props = Props(1 << 2);
    /// Non-zero only on the main diagonal.
    pub const DIAGONAL: Props = Props(1 << 3);
    /// Non-zero only on the three central diagonals.
    pub const TRIDIAGONAL: Props = Props(1 << 4);
    /// The identity matrix.
    pub const IDENTITY: Props = Props(1 << 5);
    /// `AᵀA == I`.
    pub const ORTHOGONAL: Props = Props(1 << 6);
    /// Symmetric positive definite.
    pub const SPD: Props = Props(1 << 7);

    /// Properties that only make sense for square matrices.
    pub const SQUARE_ONLY: Props = Props(
        Self::LOWER_TRIANGULAR.0
            | Self::UPPER_TRIANGULAR.0
            | Self::SYMMETRIC.0
            | Self::DIAGONAL.0
            | Self::TRIDIAGONAL.0
            | Self::IDENTITY.0
            | Self::ORTHOGONAL.0
            | Self::SPD.0,
    );

    /// The raw bit pattern — a stable, order-independent encoding of the
    /// property set (used by `laab-serve`'s signature hash).
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Union of two property sets.
    #[inline]
    pub const fn union(self, other: Props) -> Props {
        Props(self.0 | other.0)
    }

    /// Intersection of two property sets.
    #[inline]
    pub const fn intersect(self, other: Props) -> Props {
        Props(self.0 & other.0)
    }

    /// `true` when every property in `other` is present.
    #[inline]
    pub const fn contains(self, other: Props) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` when at least one property in `other` is present.
    #[inline]
    pub const fn intersects(self, other: Props) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` when no property is present.
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Remove the properties in `other` from `self` (no re-normalization).
    #[inline]
    pub const fn remove(self, other: Props) -> Props {
        Props(self.0 & !other.0)
    }

    /// Apply the implication closure:
    ///
    /// * identity ⇒ diagonal ∧ orthogonal ∧ SPD
    /// * diagonal ⇒ lower ∧ upper ∧ tridiagonal ∧ symmetric
    /// * lower ∧ upper ⇒ diagonal
    /// * SPD ⇒ symmetric
    pub const fn normalize(self) -> Props {
        let mut bits = self.0;
        // Iterate to fixpoint; the lattice is tiny so two passes suffice,
        // but loop for clarity (const fn supports while).
        let mut changed = true;
        while changed {
            let before = bits;
            if bits & Self::IDENTITY.0 != 0 {
                bits |= Self::DIAGONAL.0 | Self::ORTHOGONAL.0 | Self::SPD.0;
            }
            if bits & Self::LOWER_TRIANGULAR.0 != 0 && bits & Self::UPPER_TRIANGULAR.0 != 0 {
                bits |= Self::DIAGONAL.0;
            }
            if bits & Self::DIAGONAL.0 != 0 {
                bits |= Self::LOWER_TRIANGULAR.0
                    | Self::UPPER_TRIANGULAR.0
                    | Self::TRIDIAGONAL.0
                    | Self::SYMMETRIC.0;
            }
            if bits & Self::SPD.0 != 0 {
                bits |= Self::SYMMETRIC.0;
            }
            changed = bits != before;
        }
        Props(bits)
    }

    /// Properties of the transpose of a matrix with properties `self`.
    pub fn transpose(self) -> Props {
        let mut out = self.intersect(Props(
            Self::SYMMETRIC.0
                | Self::DIAGONAL.0
                | Self::TRIDIAGONAL.0
                | Self::IDENTITY.0
                | Self::ORTHOGONAL.0
                | Self::SPD.0,
        ));
        if self.contains(Self::LOWER_TRIANGULAR) {
            out = out.union(Self::UPPER_TRIANGULAR);
        }
        if self.contains(Self::UPPER_TRIANGULAR) {
            out = out.union(Self::LOWER_TRIANGULAR);
        }
        // A symmetric matrix keeps its triangles under transposition only
        // because the triangles coincide; handled by symmetry already.
        out.normalize()
    }

    /// Properties of `A·B` given the factors' properties.
    ///
    /// Conservative (sound but incomplete): only claims that hold for every
    /// pair of matrices with the given structures.
    // Not `std::ops::Mul`: this propagates properties of a product, it does
    // not multiply `Props` values.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Props) -> Props {
        let mut out = Props::NONE;
        if self.contains(Self::IDENTITY) && rhs.contains(Self::IDENTITY) {
            out = out.union(Self::IDENTITY);
        }
        if self.contains(Self::DIAGONAL) && rhs.contains(Self::DIAGONAL) {
            out = out.union(Self::DIAGONAL);
        }
        if self.contains(Self::LOWER_TRIANGULAR) && rhs.contains(Self::LOWER_TRIANGULAR) {
            out = out.union(Self::LOWER_TRIANGULAR);
        }
        if self.contains(Self::UPPER_TRIANGULAR) && rhs.contains(Self::UPPER_TRIANGULAR) {
            out = out.union(Self::UPPER_TRIANGULAR);
        }
        if self.contains(Self::ORTHOGONAL) && rhs.contains(Self::ORTHOGONAL) {
            out = out.union(Self::ORTHOGONAL);
        }
        out.normalize()
    }

    /// Properties of `A + B` (also covers subtraction).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Props) -> Props {
        // Additive structure is the intersection of the shared linear
        // subspaces; identity/orthogonality/SPD are not preserved by
        // addition in general (SPD+SPD is SPD, which we do keep).
        let keep = Props(
            Self::LOWER_TRIANGULAR.0
                | Self::UPPER_TRIANGULAR.0
                | Self::SYMMETRIC.0
                | Self::DIAGONAL.0
                | Self::TRIDIAGONAL.0,
        );
        let mut out = self.intersect(rhs).intersect(keep);
        if self.contains(Self::SPD) && rhs.contains(Self::SPD) {
            out = out.union(Self::SPD);
        }
        out.normalize()
    }

    /// Properties of `c·A` for a scalar `c`.
    pub fn scale(self, c: f64) -> Props {
        let keep = Props(
            Self::LOWER_TRIANGULAR.0
                | Self::UPPER_TRIANGULAR.0
                | Self::SYMMETRIC.0
                | Self::DIAGONAL.0
                | Self::TRIDIAGONAL.0,
        );
        let mut out = self.intersect(keep);
        if c > 0.0 && self.contains(Self::SPD) {
            out = out.union(Self::SPD);
        }
        if c == 1.0 {
            out = out.union(self.intersect(Props(Self::IDENTITY.0 | Self::ORTHOGONAL.0)));
        }
        out.normalize()
    }

    /// Short human-readable listing, e.g. `lower|symmetric`.
    pub fn describe(self) -> String {
        const NAMES: [(Props, &str); 8] = [
            (Props::LOWER_TRIANGULAR, "lower"),
            (Props::UPPER_TRIANGULAR, "upper"),
            (Props::SYMMETRIC, "symmetric"),
            (Props::DIAGONAL, "diagonal"),
            (Props::TRIDIAGONAL, "tridiagonal"),
            (Props::IDENTITY, "identity"),
            (Props::ORTHOGONAL, "orthogonal"),
            (Props::SPD, "spd"),
        ];
        let parts: Vec<&str> =
            NAMES.iter().filter(|(p, _)| self.contains(*p)).map(|(_, n)| *n).collect();
        if parts.is_empty() {
            "general".to_string()
        } else {
            parts.join("|")
        }
    }
}

impl std::fmt::Debug for Props {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Props({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_identity_implies_everything_diagonal_does() {
        let p = Props::IDENTITY.normalize();
        assert!(p.contains(Props::DIAGONAL));
        assert!(p.contains(Props::LOWER_TRIANGULAR));
        assert!(p.contains(Props::UPPER_TRIANGULAR));
        assert!(p.contains(Props::TRIDIAGONAL));
        assert!(p.contains(Props::SYMMETRIC));
        assert!(p.contains(Props::ORTHOGONAL));
        assert!(p.contains(Props::SPD));
    }

    #[test]
    fn lower_and_upper_is_diagonal() {
        let p = Props::LOWER_TRIANGULAR.union(Props::UPPER_TRIANGULAR).normalize();
        assert!(p.contains(Props::DIAGONAL));
    }

    #[test]
    fn transpose_swaps_triangles() {
        let p = Props::LOWER_TRIANGULAR.transpose();
        assert!(p.contains(Props::UPPER_TRIANGULAR));
        assert!(!p.contains(Props::LOWER_TRIANGULAR));
        // Symmetric survives transposition.
        assert!(Props::SYMMETRIC.transpose().contains(Props::SYMMETRIC));
        // Diagonal (hence both triangles) survives.
        assert!(Props::DIAGONAL.transpose().contains(Props::DIAGONAL));
    }

    #[test]
    fn mul_preserves_matching_structure() {
        let l = Props::LOWER_TRIANGULAR;
        assert!(l.mul(l).contains(Props::LOWER_TRIANGULAR));
        assert!(l.mul(Props::NONE).is_none());
        let d = Props::DIAGONAL.normalize();
        assert!(d.mul(d).contains(Props::DIAGONAL));
        let q = Props::ORTHOGONAL;
        assert!(q.mul(q).contains(Props::ORTHOGONAL));
        let i = Props::IDENTITY.normalize();
        assert!(i.mul(i).contains(Props::IDENTITY));
    }

    #[test]
    fn add_intersects_structure() {
        let l = Props::LOWER_TRIANGULAR;
        let u = Props::UPPER_TRIANGULAR;
        assert!(l.add(l).contains(Props::LOWER_TRIANGULAR));
        assert!(l.add(u).is_none());
        let d = Props::DIAGONAL.normalize();
        // diagonal + lower = lower (diagonal implies lower).
        assert!(d.add(l).contains(Props::LOWER_TRIANGULAR));
        assert!(Props::SPD.normalize().add(Props::SPD.normalize()).contains(Props::SPD));
    }

    #[test]
    fn scale_drops_identity_but_keeps_diagonal() {
        let i = Props::IDENTITY.normalize();
        let s = i.scale(2.0);
        assert!(!s.contains(Props::IDENTITY));
        assert!(s.contains(Props::DIAGONAL));
        assert!(i.scale(1.0).contains(Props::IDENTITY));
        assert!(!Props::SPD.normalize().scale(-1.0).contains(Props::SPD));
    }

    #[test]
    fn describe_lists_properties() {
        assert_eq!(Props::NONE.describe(), "general");
        let p = Props::LOWER_TRIANGULAR.union(Props::SYMMETRIC);
        let d = p.describe();
        assert!(d.contains("lower") && d.contains("symmetric"));
    }
}
