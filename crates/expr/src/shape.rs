//! Shapes and the typing context.

use std::collections::BTreeMap;

use crate::Props;

/// The (static) shape of a matrix expression: `rows × cols`.
///
/// Vectors are shapes with one unit dimension; scalars are `1×1`. The paper's
/// test expressions all have concrete sizes (n = 3000), so shapes here are
/// concrete, not symbolic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape {
    /// Construct a shape.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// The transposed shape.
    pub const fn t(self) -> Self {
        Self { rows: self.cols, cols: self.rows }
    }

    /// `true` for `1×n` or `n×1`.
    pub const fn is_vector(self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// `true` for `1×1`.
    pub const fn is_scalar(self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// `true` for square shapes.
    pub const fn is_square(self) -> bool {
        self.rows == self.cols
    }

    /// Total element count.
    pub const fn len(self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the shape has no elements.
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Declared information about one named operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarInfo {
    /// The operand's shape.
    pub shape: Shape,
    /// The operand's declared properties (normalized).
    pub props: Props,
}

/// The typing context: a map from operand names to shape + properties.
///
/// Experiments declare their operands here once (`H` is `n×n` general, `L`
/// is lower-triangular, …); shape inference, the cost models, the rewriter
/// and the evaluators all consult the same declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Context {
    vars: BTreeMap<String, VarInfo>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a general (property-free) operand. Returns `self` for
    /// chaining.
    pub fn with(mut self, name: &str, rows: usize, cols: usize) -> Self {
        self.declare(name, Shape::new(rows, cols), Props::NONE);
        self
    }

    /// Declare an operand with properties. Returns `self` for chaining.
    pub fn with_props(mut self, name: &str, rows: usize, cols: usize, props: Props) -> Self {
        self.declare(name, Shape::new(rows, cols), props);
        self
    }

    /// Declare (or redeclare) an operand.
    pub fn declare(&mut self, name: &str, shape: Shape, props: Props) {
        assert!(
            !props.intersects(Props::SQUARE_ONLY) || shape.is_square(),
            "operand {name}: structural properties require a square shape, got {shape}"
        );
        self.vars.insert(name.to_string(), VarInfo { shape, props: props.normalize() });
    }

    /// Look up an operand.
    pub fn get(&self, name: &str) -> Option<VarInfo> {
        self.vars.get(name).copied()
    }

    /// Look up an operand, panicking with a clear message when undeclared.
    pub fn expect(&self, name: &str) -> VarInfo {
        self.get(name).unwrap_or_else(|| panic!("operand `{name}` is not declared in the context"))
    }

    /// Iterate over declared operand names (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.vars.keys().map(String::as_str)
    }

    /// Number of declared operands.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` when nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_predicates() {
        let s = Shape::new(3, 1);
        assert!(s.is_vector());
        assert!(!s.is_scalar());
        assert_eq!(s.t(), Shape::new(1, 3));
        assert!(Shape::new(1, 1).is_scalar());
        assert!(Shape::new(4, 4).is_square());
        assert_eq!(Shape::new(2, 5).len(), 10);
    }

    #[test]
    fn context_declare_and_lookup() {
        let ctx = Context::new().with("A", 5, 5).with_props("L", 4, 4, Props::LOWER_TRIANGULAR);
        assert_eq!(ctx.expect("A").shape, Shape::new(5, 5));
        assert!(ctx.expect("L").props.contains(Props::LOWER_TRIANGULAR));
        assert!(ctx.get("missing").is_none());
        assert_eq!(ctx.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn expect_missing_panics() {
        Context::new().expect("Z");
    }

    #[test]
    #[should_panic(expected = "square shape")]
    fn structural_props_require_square() {
        let _ = Context::new().with_props("L", 3, 4, Props::LOWER_TRIANGULAR);
    }
}
