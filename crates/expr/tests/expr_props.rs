//! Property tests for the symbolic layer: the property lattice is a proper
//! closure system, and the cost models respect their defining inequalities.

use laab_expr::cost::{aware_cost, naive_cost, shared_cost};
use laab_expr::{var, Context, Expr, Props};
use proptest::prelude::*;

fn arb_props() -> impl Strategy<Value = Props> {
    (0u16..256).prop_map(|bits| {
        let all = [
            Props::LOWER_TRIANGULAR,
            Props::UPPER_TRIANGULAR,
            Props::SYMMETRIC,
            Props::DIAGONAL,
            Props::TRIDIAGONAL,
            Props::IDENTITY,
            Props::ORTHOGONAL,
            Props::SPD,
        ];
        let mut p = Props::NONE;
        for (i, flag) in all.iter().enumerate() {
            if bits & (1 << i) != 0 {
                p = p.union(*flag);
            }
        }
        p
    })
}

/// A deterministic small well-typed square expression.
fn square_expr(seed: u64, depth: usize) -> Expr {
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }
    fn rec(state: &mut u64, depth: usize) -> Expr {
        if depth == 0 {
            return match next(state) % 3 {
                0 => var("A"),
                1 => var("B"),
                _ => var("L"),
            };
        }
        match next(state) % 5 {
            0 => rec(state, depth - 1).t(),
            1 => rec(state, depth - 1) * rec(state, depth - 1),
            2 => rec(state, depth - 1) + rec(state, depth - 1),
            3 => rec(state, depth - 1) - rec(state, depth - 1),
            _ => laab_expr::scale(2.0, rec(state, depth - 1)),
        }
    }
    let mut state = seed | 1;
    rec(&mut state, depth)
}

fn ctx() -> Context {
    Context::new().with("A", 32, 32).with("B", 32, 32).with_props(
        "L",
        32,
        32,
        Props::LOWER_TRIANGULAR,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalize_is_idempotent_and_extensive(p in arb_props()) {
        let n = p.normalize();
        prop_assert_eq!(n.normalize(), n, "idempotent");
        prop_assert!(n.contains(p), "extensive (only adds implied properties)");
    }

    #[test]
    fn transpose_props_is_an_involution_after_normalize(p in arb_props()) {
        let n = p.normalize();
        prop_assert_eq!(n.transpose().transpose(), n);
    }

    #[test]
    fn mul_props_is_monotone(p in arb_props(), q in arb_props()) {
        // Adding knowledge can only add (never remove) conclusions.
        let base = Props::NONE.mul(q.normalize());
        let more = p.normalize().mul(q.normalize());
        // base is NONE's product: nothing claimed.
        prop_assert!(more.contains(base));
    }

    #[test]
    fn add_props_subset_of_each_side_structure(p in arb_props(), q in arb_props()) {
        let sum = p.normalize().add(q.normalize());
        // Anything claimed for A+B that is purely structural must be
        // claimed for both sides.
        for flag in [
            Props::LOWER_TRIANGULAR,
            Props::UPPER_TRIANGULAR,
            Props::DIAGONAL,
            Props::TRIDIAGONAL,
        ] {
            if sum.contains(flag) {
                prop_assert!(p.normalize().contains(flag));
                prop_assert!(q.normalize().contains(flag));
            }
        }
    }

    #[test]
    fn cost_model_inequalities(seed in any::<u64>(), depth in 1usize..4) {
        let e = square_expr(seed, depth);
        let c = ctx();
        prop_assume!(e.try_shape(&c).is_ok());
        let naive = naive_cost(&e, &c);
        let aware = aware_cost(&e, &c);
        let shared = shared_cost(&e, &c, false);
        let aware_shared = shared_cost(&e, &c, true);
        prop_assert!(aware <= naive, "awareness never costs more");
        prop_assert!(shared <= naive, "sharing never costs more");
        prop_assert!(aware_shared <= shared, "aware sharing ≤ naive sharing");
    }

    #[test]
    fn shape_inference_matches_evaluation_shape(seed in any::<u64>(), depth in 1usize..4) {
        let e = square_expr(seed, depth);
        let c = ctx();
        prop_assume!(e.try_shape(&c).is_ok());
        let shape = e.shape(&c);
        let mut g = laab_dense::gen::OperandGen::new(seed);
        let env = laab_expr::eval::Env::<f64>::new()
            .with("A", g.matrix(32, 32))
            .with("B", g.matrix(32, 32))
            .with("L", g.lower_triangular(32));
        let v = laab_expr::eval::eval(&e, &env);
        prop_assert_eq!((v.rows(), v.cols()), (shape.rows, shape.cols));
    }

    #[test]
    fn product_factors_and_chain_are_inverse(k in 1usize..6) {
        let names: Vec<Expr> = (0..k).map(|i| var(&format!("M{i}"))).collect();
        let chain = Expr::chain(&names);
        let factors = chain.product_factors();
        prop_assert_eq!(factors.len(), k);
        for (f, n) in factors.iter().zip(&names) {
            prop_assert_eq!(*f, n);
        }
    }
}
