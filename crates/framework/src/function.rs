//! Graph-mode tracing: the `@tf.function` / `@torch.jit.script` analogue.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use laab_dense::{Matrix, Scalar};
use laab_expr::eval::Env;
use laab_graph::{execute, optimize, Graph, GraphBuilder, NodeId, PassConfig, PassStats};

use crate::profile::Profile;

/// A graph-mode tensor handle, valid only within the [`FuncBuilder`] that
/// produced it (like a symbolic tensor inside a traced `tf.function`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GT(pub(crate) NodeId);

/// The tracing context handed to the user's build closure.
///
/// Each method appends IR nodes verbatim — calling `matmul` twice with the
/// same arguments records two nodes, exactly like re-tracing duplicated
/// Python code. Rust `for` loops over the builder unroll into the DAG, the
/// graph-mode loop behaviour the paper describes (a DAG "does not contain
/// loops or cycles").
pub struct FuncBuilder {
    gb: GraphBuilder,
    profile: Profile,
    inputs: HashMap<String, GT>,
}

impl FuncBuilder {
    pub(crate) fn new(profile: Profile) -> Self {
        Self { gb: GraphBuilder::new(), profile, inputs: HashMap::new() }
    }

    /// Declare (or re-use) a fed input. Repeated declarations of the same
    /// name return the same handle.
    pub fn input(&mut self, name: &str, rows: usize, cols: usize) -> GT {
        if let Some(&gt) = self.inputs.get(name) {
            assert_eq!(
                self.gb.shape(gt.0),
                laab_expr::Shape::new(rows, cols),
                "input `{name}` re-declared with a different shape"
            );
            return gt;
        }
        let gt = GT(self.gb.input(name, rows, cols));
        self.inputs.insert(name.to_string(), gt);
        gt
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: GT, b: GT) -> GT {
        GT(self.gb.matmul(a.0, b.0))
    }

    /// Transpose.
    pub fn t(&mut self, x: GT) -> GT {
        GT(self.gb.transpose(x.0))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: GT, b: GT) -> GT {
        GT(self.gb.add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: GT, b: GT) -> GT {
        GT(self.gb.sub(a.0, b.0))
    }

    /// Scalar scaling.
    pub fn scale(&mut self, c: f64, x: GT) -> GT {
        GT(self.gb.scale(c, x.0))
    }

    /// The `n×n` identity constant.
    pub fn identity(&mut self, n: usize) -> GT {
        GT(self.gb.identity(n))
    }

    /// Element extraction.
    pub fn elem(&mut self, x: GT, i: usize, j: usize) -> GT {
        GT(self.gb.elem(x.0, i, j))
    }

    /// Row extraction.
    pub fn row(&mut self, x: GT, i: usize) -> GT {
        GT(self.gb.row(x.0, i))
    }

    /// Column extraction.
    pub fn col(&mut self, x: GT, j: usize) -> GT {
        GT(self.gb.col(x.0, j))
    }

    /// Vertical concatenation.
    pub fn vcat(&mut self, a: GT, b: GT) -> GT {
        GT(self.gb.vcat(a.0, b.0))
    }

    /// Horizontal concatenation.
    pub fn hcat(&mut self, a: GT, b: GT) -> GT {
        GT(self.gb.hcat(a.0, b.0))
    }

    /// Block-diagonal assembly.
    pub fn block_diag(&mut self, a: GT, b: GT) -> GT {
        GT(self.gb.block_diag(a.0, b.0))
    }

    /// `linalg.tridiagonal_matmul` — **Flow only** (the paper's Table IV
    /// marks it "n.a." for PyT).
    ///
    /// # Panics
    /// When the profile does not offer the method.
    pub fn tridiagonal_matmul(&mut self, t: GT, b: GT) -> GT {
        assert!(
            self.profile.has_tridiagonal_matmul(),
            "linalg.tridiagonal_matmul is not available in the {:?} profile",
            self.profile
        );
        GT(self.gb.tridiag_matmul(t.0, b.0))
    }

    /// `linalg.multi_dot` — **Torch only** (Table III marks it "-" for TF).
    /// At trace time the DP-optimal parenthesization for the traced shapes
    /// is baked into the graph as a tree of `matmul` nodes.
    ///
    /// # Panics
    /// When the profile does not offer the method, or on an empty chain.
    pub fn multi_dot(&mut self, factors: &[GT]) -> GT {
        assert!(
            self.profile.has_multi_dot(),
            "linalg.multi_dot is not available in the {:?} profile",
            self.profile
        );
        assert!(!factors.is_empty(), "multi_dot of zero factors");
        let mut dims = Vec::with_capacity(factors.len() + 1);
        dims.push(self.gb.shape(factors[0].0).rows);
        for gt in factors {
            dims.push(self.gb.shape(gt.0).cols);
        }
        let (_, tree) = laab_chain::optimal_parenthesization(&dims);
        self.build_tree(&tree, factors)
    }

    fn build_tree(&mut self, tree: &laab_chain::ParenTree, factors: &[GT]) -> GT {
        match tree {
            laab_chain::ParenTree::Leaf(i) => factors[*i],
            laab_chain::ParenTree::Node(l, r) => {
                let lv = self.build_tree(l, factors);
                let rv = self.build_tree(r, factors);
                self.matmul(lv, rv)
            }
        }
    }
}

/// A traced, optimized, callable graph function.
pub struct Function {
    graph: Graph,
    unoptimized: Graph,
    build_time: Duration,
    stats: PassStats,
}

impl Function {
    pub(crate) fn build<F>(profile: Profile, passes: PassConfig, build: F) -> Function
    where
        F: FnOnce(&mut FuncBuilder) -> Vec<GT>,
    {
        let start = Instant::now();
        let mut fb = FuncBuilder::new(profile);
        let outs = build(&mut fb);
        let unoptimized = fb.gb.finish(outs.into_iter().map(|gt| gt.0).collect());
        let mut graph = unoptimized.clone();
        let stats = optimize(&mut graph, &passes);
        Function { graph, unoptimized, build_time: start.elapsed(), stats }
    }

    /// Execute against fed operands, returning the fetched outputs.
    pub fn call<T: Scalar>(&self, env: &Env<T>) -> Vec<Matrix<T>> {
        execute(&self.graph, env)
    }

    /// The optimized graph (inspection, DOT export).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pre-optimization trace (the paper's "Initial Graph", Fig. 3
    /// left).
    pub fn unoptimized_graph(&self) -> &Graph {
        &self.unoptimized
    }

    /// Tracing + optimization wall time — the "decorator overhead" the
    /// paper reports separately (footnote 4).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// What the optimizer did.
    pub fn pass_stats(&self) -> PassStats {
        self.stats
    }

    /// Decompose the function into its compiled artifacts: the optimized
    /// graph, the tracing+optimization wall time, and the pass statistics.
    ///
    /// This is the plan-extraction hook for `laab-serve`: a serving system
    /// keeps the optimized graph (plus a precomputed
    /// [`laab_graph::Schedule`]) as a cached `Plan` and re-executes it with
    /// fresh operand bindings, instead of holding whole [`Function`]s —
    /// mirroring how `tf.function` caches *concrete functions*, not
    /// tracing contexts. The pre-optimization trace is dropped; use
    /// [`Function::unoptimized_graph`] before extraction if you need it.
    pub fn into_plan_parts(self) -> (Graph, Duration, PassStats) {
        (self.graph, self.build_time, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;

    #[test]
    fn multi_dot_requires_torch_profile() {
        let f = Function::build(Profile::Torch, PassConfig::all(), |fb| {
            let h = fb.input("H", 6, 6);
            let ht = fb.t(h);
            let x = fb.input("x", 6, 1);
            vec![fb.multi_dot(&[ht, h, x])]
        });
        // Optimal order HᵀHx = Hᵀ(Hx): two matmuls, no O(n³) shape.
        assert_eq!(f.graph().matmul_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not available in the Flow profile")]
    fn multi_dot_panics_on_flow() {
        let _ = Function::build(Profile::Flow, PassConfig::all(), |fb| {
            let h = fb.input("H", 6, 6);
            let x = fb.input("x", 6, 1);
            vec![fb.multi_dot(&[h, x])]
        });
    }

    #[test]
    #[should_panic(expected = "not available in the Torch profile")]
    fn tridiagonal_matmul_panics_on_torch() {
        let _ = Function::build(Profile::Torch, PassConfig::all(), |fb| {
            let t = fb.input("T", 6, 6);
            let b = fb.input("B", 6, 6);
            vec![fb.tridiagonal_matmul(t, b)]
        });
    }

    #[test]
    fn repeated_input_names_share_a_node() {
        let f = Function::build(Profile::Flow, PassConfig::none(), |fb| {
            let a1 = fb.input("A", 4, 4);
            let a2 = fb.input("A", 4, 4);
            assert_eq!(a1, a2);
            vec![fb.matmul(a1, a2)]
        });
        assert_eq!(f.graph().count_kind(|k| matches!(k, laab_graph::OpKind::Input(_))), 1);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn input_redeclaration_shape_mismatch_panics() {
        let _ = Function::build(Profile::Flow, PassConfig::none(), |fb| {
            let _ = fb.input("A", 4, 4);
            let a = fb.input("A", 5, 5);
            vec![a]
        });
    }

    #[test]
    fn call_roundtrip_and_build_time() {
        let n = 8;
        let f = Function::build(Profile::Flow, PassConfig::all(), |fb| {
            let a = fb.input("A", n, n);
            let b = fb.input("B", n, n);
            let at = fb.t(a);
            vec![fb.matmul(at, b)]
        });
        let mut g = OperandGen::new(71);
        let env = Env::<f64>::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));
        let out = f.call(&env);
        let want = laab_expr::eval::eval(&(laab_expr::var("A").t() * laab_expr::var("B")), &env);
        assert!(out[0].approx_eq(&want, 1e-12));
        // Tracing measurably takes time but is tiny.
        assert!(f.build_time() < Duration::from_millis(100));
    }

    #[test]
    fn into_plan_parts_extracts_the_optimized_graph() {
        let n = 8;
        let f = Function::build(Profile::Flow, PassConfig::all(), |fb| {
            let a = fb.input("A", n, n);
            let b = fb.input("B", n, n);
            let at = fb.t(a);
            vec![fb.matmul(at, b)]
        });
        let build_time = f.build_time();
        let expect_graph = f.graph().clone();
        let (graph, extracted_time, stats) = f.into_plan_parts();
        assert_eq!(graph, expect_graph);
        assert_eq!(extracted_time, build_time);
        assert!(stats.transposes_folded >= 1);
        // The extracted graph executes stand-alone.
        let mut g = OperandGen::new(73);
        let env = Env::<f64>::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));
        let out = laab_graph::execute_scheduled(&graph, &laab_graph::Schedule::new(&graph), &env);
        let want = laab_expr::eval::eval(&(laab_expr::var("A").t() * laab_expr::var("B")), &env);
        assert!(out[0].approx_eq(&want, 1e-12));
    }

    #[test]
    fn unoptimized_graph_is_preserved() {
        let f = Function::build(Profile::Flow, PassConfig::all(), |fb| {
            let a = fb.input("A", 4, 4);
            let b = fb.input("B", 4, 4);
            let m1 = fb.matmul(a, b);
            let m2 = fb.matmul(a, b);
            vec![fb.add(m1, m2)]
        });
        assert_eq!(f.unoptimized_graph().matmul_count(), 2);
        assert_eq!(f.graph().matmul_count(), 1);
        assert!(f.pass_stats().nodes_deduped >= 1);
    }
}
