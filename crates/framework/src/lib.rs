//! # laab-framework — the TensorFlow/PyTorch analogue under test
//!
//! A from-scratch tensor framework with the exact optimization inventory
//! the paper measures in TF 2.7 / PyT 1.10, so that every experiment
//! exercises the same code-path decisions:
//!
//! * **Eager mode** ([`Tensor`]) — every operation executes immediately on
//!   call, mapping to one kernel. Transposition is a zero-copy *view*
//!   (like `torch.Tensor.t()`), folded into the product kernels' flags —
//!   which is why eager `AᵀB` costs exactly one GEMM (Table I, row 1).
//!   There is no CSE: `(AᵀB)ᵀ(AᵀB)` really runs three GEMMs (row 2).
//! * **Graph mode** ([`Framework::function`]) — the `@tf.function` /
//!   `@torch.jit.script` analogue: the build closure is *traced* into a
//!   DAG (loops unroll), the Grappler-style pipeline of `laab-graph`
//!   optimizes it, and [`Function::call`] executes it. The trace+optimize
//!   time is recorded as the "decorator overhead" (paper's footnote 4).
//! * **Profiles** — [`Profile::Flow`] (TF-like) additionally offers
//!   `linalg.tridiagonal_matmul`; [`Profile::Torch`] (PyT-like) offers
//!   `linalg.multi_dot`. Each lacks the other's escape hatch, mirroring
//!   the "n.a." / "-" cells of Tables III and IV.
//! * **Lowering** ([`lower`]) — executes a symbolic
//!   [`Expr`](laab_expr::Expr) through either mode, so every benchmark
//!   defines its test expression once.

#![deny(missing_docs)]

mod function;
pub mod lower;
mod profile;
mod tensor;

pub use function::{FuncBuilder, Function, GT};
pub use profile::{Framework, Profile};
pub use tensor::Tensor;
