//! Lowering symbolic expressions onto the two execution modes.
//!
//! Every benchmark in `laab-core` defines its test expression once as an
//! [`Expr`] and runs it through:
//!
//! * [`eager_eval_expr`] — eager mode: each AST node becomes one immediate
//!   [`Tensor`] operation, in the exact association the user wrote;
//! * [`trace_expr`] — graph mode: each AST node appends one IR node to a
//!   [`FuncBuilder`] trace (the framework's optimizer then does whatever it
//!   does).
//!
//! Identical lowering across modes is what makes the eager/graph columns of
//! the reproduced tables comparable.

use std::collections::HashMap;

use laab_dense::{Matrix, Scalar};
use laab_expr::eval::Env;
use laab_expr::{Context, Expr};

use crate::function::{FuncBuilder, GT};
use crate::tensor::Tensor;

/// Execute `e` in eager mode against `env`.
///
/// Operand tensors are created once per name (sharing storage), so repeated
/// references cost nothing extra — but repeated *subexpressions* are
/// recomputed, because eager mode has no memory of past calls.
pub fn eager_eval_expr<T: Scalar>(e: &Expr, env: &Env<T>) -> Matrix<T> {
    let mut cache: HashMap<String, Tensor<T>> = HashMap::new();
    rec(e, env, &mut cache).to_matrix()
}

fn rec<T: Scalar>(e: &Expr, env: &Env<T>, vars: &mut HashMap<String, Tensor<T>>) -> Tensor<T> {
    match e {
        Expr::Var(name) => vars
            .entry(name.clone())
            .or_insert_with(|| Tensor::new(env.expect(name).clone()))
            .clone(),
        Expr::Identity(n) => Tensor::new(Matrix::identity(*n)),
        Expr::Transpose(x) => rec(x, env, vars).t(),
        Expr::Mul(a, b) => {
            let (ta, tb) = (rec(a, env, vars), rec(b, env, vars));
            ta.matmul(&tb)
        }
        Expr::Add(a, b) => {
            let (ta, tb) = (rec(a, env, vars), rec(b, env, vars));
            ta.add(&tb)
        }
        Expr::Sub(a, b) => {
            let (ta, tb) = (rec(a, env, vars), rec(b, env, vars));
            ta.sub(&tb)
        }
        Expr::Scale(c, x) => rec(x, env, vars).scale(c.0),
        Expr::Elem(x, i, j) => rec(x, env, vars).elem(*i, *j),
        Expr::Row(x, i) => rec(x, env, vars).row(*i),
        Expr::Col(x, j) => rec(x, env, vars).col(*j),
        Expr::VCat(a, b) => {
            let (ta, tb) = (rec(a, env, vars), rec(b, env, vars));
            ta.vcat(&tb)
        }
        Expr::HCat(a, b) => {
            let (ta, tb) = (rec(a, env, vars), rec(b, env, vars));
            ta.hcat(&tb)
        }
        Expr::BlockDiag(a, b) => {
            let (ta, tb) = (rec(a, env, vars), rec(b, env, vars));
            ta.block_diag(&tb)
        }
    }
}

/// Trace `e` into graph-mode IR, returning the output handle. Operand
/// shapes come from `ctx`.
pub fn trace_expr(fb: &mut FuncBuilder, e: &Expr, ctx: &Context) -> GT {
    match e {
        Expr::Var(name) => {
            let info = ctx.expect(name);
            fb.input(name, info.shape.rows, info.shape.cols)
        }
        Expr::Identity(n) => fb.identity(*n),
        Expr::Transpose(x) => {
            let gx = trace_expr(fb, x, ctx);
            fb.t(gx)
        }
        Expr::Mul(a, b) => {
            let (ga, gb) = (trace_expr(fb, a, ctx), trace_expr(fb, b, ctx));
            fb.matmul(ga, gb)
        }
        Expr::Add(a, b) => {
            let (ga, gb) = (trace_expr(fb, a, ctx), trace_expr(fb, b, ctx));
            fb.add(ga, gb)
        }
        Expr::Sub(a, b) => {
            let (ga, gb) = (trace_expr(fb, a, ctx), trace_expr(fb, b, ctx));
            fb.sub(ga, gb)
        }
        Expr::Scale(c, x) => {
            let gx = trace_expr(fb, x, ctx);
            fb.scale(c.0, gx)
        }
        Expr::Elem(x, i, j) => {
            let gx = trace_expr(fb, x, ctx);
            fb.elem(gx, *i, *j)
        }
        Expr::Row(x, i) => {
            let gx = trace_expr(fb, x, ctx);
            fb.row(gx, *i)
        }
        Expr::Col(x, j) => {
            let gx = trace_expr(fb, x, ctx);
            fb.col(gx, *j)
        }
        Expr::VCat(a, b) => {
            let (ga, gb) = (trace_expr(fb, a, ctx), trace_expr(fb, b, ctx));
            fb.vcat(ga, gb)
        }
        Expr::HCat(a, b) => {
            let (ga, gb) = (trace_expr(fb, a, ctx), trace_expr(fb, b, ctx));
            fb.hcat(ga, gb)
        }
        Expr::BlockDiag(a, b) => {
            let (ga, gb) = (trace_expr(fb, a, ctx), trace_expr(fb, b, ctx));
            fb.block_diag(ga, gb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Framework;
    use laab_dense::gen::OperandGen;
    use laab_expr::eval::eval;
    use laab_expr::{identity, var, Props};
    use laab_kernels::counters::{self, Kernel};

    fn env(n: usize, seed: u64) -> Env<f64> {
        let mut g = OperandGen::new(seed);
        Env::new()
            .with("A", g.matrix(n, n))
            .with("B", g.matrix(n, n))
            .with("H", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1))
    }

    #[test]
    fn eager_and_graph_agree_with_oracle() {
        let n = 10;
        let e = env(n, 31);
        let ctx = e.context_with(|_| Props::NONE);
        let exprs = vec![
            var("A").t() * var("B"),
            (var("A").t() * var("B")).t() * (var("A").t() * var("B")),
            var("H").t() * var("H") * var("x"),
            var("H").t() * var("y") + var("x") - var("H").t() * (var("H") * var("x")),
            laab_expr::elem(var("A") * var("B"), 2, 2),
            identity(n) - var("H").t() * var("H"),
        ];
        let fw = Framework::flow();
        for expr in &exprs {
            let want = eval(expr, &e);
            let eager = eager_eval_expr(expr, &e);
            assert!(eager.approx_eq(&want, 1e-10), "eager mismatch for `{expr}`");
            let f = fw.function_from_expr(expr, &ctx);
            let graph = f.call(&e);
            assert!(graph[0].approx_eq(&want, 1e-10), "graph mismatch for `{expr}`");
        }
    }

    #[test]
    fn eager_pays_duplicates_graph_does_not() {
        // Table I, row 2: E2 costs 3 GEMMs eagerly, 2 in graph mode.
        let n = 12;
        let e = env(n, 32);
        let ctx = e.context_with(|_| Props::NONE);
        let s = var("A").t() * var("B");
        let e2 = s.t() * s.clone();

        let (_r, eager_counts) = counters::measure(|| eager_eval_expr(&e2, &e));
        assert_eq!(eager_counts.calls(Kernel::Gemm), 3);

        let fw = Framework::flow();
        let f = fw.function_from_expr(&e2, &ctx);
        let (_r, graph_counts) = counters::measure(|| f.call(&e));
        assert_eq!(graph_counts.calls(Kernel::Gemm), 2);
    }

    #[test]
    fn trace_uses_one_input_node_per_operand() {
        let n = 6;
        let e = env(n, 33);
        let ctx = e.context_with(|_| Props::NONE);
        let expr = var("A") * var("B") + var("A") * var("B");
        let fw = Framework::torch();
        let f = fw.function_from_expr(&expr, &ctx);
        // Unoptimized trace: 2 inputs, 2 matmuls, 1 add.
        let un = f.unoptimized_graph();
        assert_eq!(un.count_kind(|k| matches!(k, laab_graph::OpKind::Input(_))), 2);
        assert_eq!(un.matmul_count(), 2);
        // Optimized: single alpha-2 GEMM.
        assert_eq!(f.graph().matmul_count(), 1);
    }
}
