//! Framework profiles: the TF-like `Flow` and the PyT-like `Torch`.

use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_expr::eval::Env;
use laab_graph::PassConfig;

use crate::function::{FuncBuilder, Function, GT};
use crate::tensor::Tensor;

/// Which framework personality is under test.
///
/// Both share the same eager semantics and the same graph-mode optimizer
/// pipeline (the paper finds no relevant difference there); they differ in
/// which *manual* escape hatches they offer — exactly the asymmetry of
/// Tables III and IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// TensorFlow-analogue: offers `linalg.tridiagonal_matmul`.
    Flow,
    /// PyTorch-analogue: offers `linalg.multi_dot`.
    Torch,
}

impl Profile {
    /// Does this profile offer the specialized tridiagonal product?
    pub fn has_tridiagonal_matmul(self) -> bool {
        matches!(self, Profile::Flow)
    }

    /// Does this profile offer the chain-optimizing `multi_dot`?
    pub fn has_multi_dot(self) -> bool {
        matches!(self, Profile::Torch)
    }

    /// Display name used in the benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Flow => "Flow (TF)",
            Profile::Torch => "Torch (PyT)",
        }
    }
}

/// A framework instance: a profile plus the graph-mode pass pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Framework {
    /// The personality under test.
    pub profile: Profile,
    /// Graph-mode optimizer configuration (ablations toggle passes).
    pub passes: PassConfig,
}

impl Framework {
    /// The TensorFlow analogue with the full graph pipeline.
    pub fn flow() -> Self {
        Self { profile: Profile::Flow, passes: PassConfig::all() }
    }

    /// The PyTorch analogue with the full graph pipeline.
    pub fn torch() -> Self {
        Self { profile: Profile::Torch, passes: PassConfig::all() }
    }

    /// Override the pass pipeline (ablation studies).
    pub fn with_passes(mut self, passes: PassConfig) -> Self {
        self.passes = passes;
        self
    }

    /// Wrap a matrix as an eager tensor.
    pub fn tensor<T: Scalar>(&self, m: Matrix<T>) -> Tensor<T> {
        Tensor::new(m)
    }

    /// Trace and optimize a graph function (the `@tf.function` /
    /// `@torch.jit.script` decorator analogue).
    pub fn function<F>(&self, build: F) -> Function
    where
        F: FnOnce(&mut FuncBuilder) -> Vec<GT>,
    {
        Function::build(self.profile, self.passes, build)
    }

    /// Eager `linalg.tridiagonal_matmul` (Flow only): the fused,
    /// parallelizable O(n²) product the paper measures at 10–20× the
    /// hand-coded SCAL sequence.
    ///
    /// # Panics
    /// When the profile does not offer the method.
    pub fn tridiagonal_matmul<T: Scalar>(&self, t: &Tridiagonal<T>, b: &Tensor<T>) -> Tensor<T> {
        assert!(
            self.profile.has_tridiagonal_matmul(),
            "linalg.tridiagonal_matmul is not available in the {:?} profile",
            self.profile
        );
        match b.dense_view() {
            Some(m) => Tensor::new(laab_kernels::tridiag_matmul(t, m)),
            None => Tensor::new(laab_kernels::tridiag_matmul(t, &b.to_matrix())),
        }
    }

    /// Eager `linalg.multi_dot` (Torch only): evaluates the chain in the
    /// DP-optimal order.
    ///
    /// # Panics
    /// When the profile does not offer the method.
    pub fn multi_dot<T: Scalar>(&self, factors: &[&Tensor<T>]) -> Tensor<T> {
        assert!(
            self.profile.has_multi_dot(),
            "linalg.multi_dot is not available in the {:?} profile",
            self.profile
        );
        let dense: Vec<Matrix<T>> = factors.iter().map(|t| t.to_matrix()).collect();
        let refs: Vec<&Matrix<T>> = dense.iter().collect();
        Tensor::new(laab_chain::multi_dot(&refs))
    }

    /// Execute a symbolic expression in **eager mode**, exactly as written
    /// (see [`crate::lower::eager_eval_expr`]).
    pub fn eager_expr<T: Scalar>(&self, e: &laab_expr::Expr, env: &Env<T>) -> Matrix<T> {
        crate::lower::eager_eval_expr(e, env)
    }

    /// Trace a symbolic expression into a **graph-mode** function.
    pub fn function_from_expr(
        &self,
        e: &laab_expr::Expr,
        env_shapes: &laab_expr::Context,
    ) -> Function {
        let expr = e.clone();
        let ctx = env_shapes.clone();
        Function::build(self.profile, self.passes, move |fb| {
            vec![crate::lower::trace_expr(fb, &expr, &ctx)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;

    #[test]
    fn capability_matrix_matches_paper() {
        assert!(Profile::Flow.has_tridiagonal_matmul());
        assert!(!Profile::Flow.has_multi_dot());
        assert!(Profile::Torch.has_multi_dot());
        assert!(!Profile::Torch.has_tridiagonal_matmul());
    }

    #[test]
    fn flow_tridiagonal_matmul_matches_dense() {
        let n = 20;
        let fw = Framework::flow();
        let mut g = OperandGen::new(81);
        let t = g.tridiagonal::<f64>(n);
        let b = g.matrix::<f64>(n, n);
        let bt = fw.tensor(b.clone());
        let got = fw.tridiagonal_matmul(&t, &bt);
        let want = laab_kernels::matmul(
            &t.to_dense(),
            laab_kernels::Trans::No,
            &b,
            laab_kernels::Trans::No,
        );
        assert!(got.to_matrix().approx_eq(&want, 1e-12));
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn torch_lacks_tridiagonal_matmul() {
        let fw = Framework::torch();
        let mut g = OperandGen::new(82);
        let t = g.tridiagonal::<f64>(4);
        let b = fw.tensor(g.matrix::<f64>(4, 4));
        let _ = fw.tridiagonal_matmul(&t, &b);
    }

    #[test]
    fn torch_multi_dot_beats_left_to_right() {
        use laab_kernels::counters::{self, Kernel};
        let n = 24;
        let fw = Framework::torch();
        let mut g = OperandGen::new(83);
        let h = fw.tensor(g.matrix::<f64>(n, n));
        let x = fw.tensor(g.matrix::<f64>(n, 1));
        let ht = h.t();
        counters::reset();
        let _ = fw.multi_dot(&[&ht, &h, &x]);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 0, "optimal order avoids GEMM");
        assert_eq!(s.calls(Kernel::Gemv), 2);
    }
}
