//! Eager-mode tensors.

use std::sync::Arc;

use laab_dense::{Matrix, Scalar};
use laab_kernels::counters::{self, Kernel};
use laab_kernels::{geadd, matmul_dispatch, Trans};

/// An eager tensor: shared storage plus a transposed-view flag.
///
/// Cloning a `Tensor` is O(1) (the storage is behind an [`Arc`]), and
/// [`Tensor::t`] only flips the view flag — mirroring how TF/PyT hand MKL a
/// transposition flag instead of materializing `Aᵀ`. Every arithmetic
/// method executes its kernel *immediately*; nothing is deferred, recorded,
/// or deduplicated. That absence of bookkeeping is exactly eager mode's
/// behaviour in the paper's Table I.
#[derive(Clone)]
pub struct Tensor<T: Scalar = f32> {
    data: Arc<Matrix<T>>,
    trans: bool,
}

impl<T: Scalar> Tensor<T> {
    /// Wrap a matrix as an eager tensor.
    pub fn new(m: Matrix<T>) -> Self {
        Self { data: Arc::new(m), trans: false }
    }

    /// Logical number of rows (after the view flag).
    pub fn rows(&self) -> usize {
        if self.trans {
            self.data.cols()
        } else {
            self.data.rows()
        }
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        if self.trans {
            self.data.rows()
        } else {
            self.data.cols()
        }
    }

    /// Logical `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Transposed *view* — zero copy, O(1).
    pub fn t(&self) -> Tensor<T> {
        Tensor { data: Arc::clone(&self.data), trans: !self.trans }
    }

    fn flag(&self) -> Trans {
        if self.trans {
            Trans::Yes
        } else {
            Trans::No
        }
    }

    /// Materialize the logical value (resolving a pending transposed view —
    /// an O(n²) copy that the product kernels avoid by taking the flag).
    pub fn to_matrix(&self) -> Matrix<T> {
        if self.trans {
            counters::record(Kernel::Transpose, 0);
            self.data.transpose()
        } else {
            (*self.data).clone()
        }
    }

    /// A dense reference when no view is pending (cheap path for kernels
    /// that accept transposition flags).
    fn raw(&self) -> &Matrix<T> {
        &self.data
    }

    /// Borrow the storage when no transposed view is pending (`None` when a
    /// materialization would be required). Lets kernels that take plain
    /// dense inputs avoid an O(n²) copy.
    pub fn dense_view(&self) -> Option<&Matrix<T>> {
        if self.trans {
            None
        } else {
            Some(&self.data)
        }
    }

    /// Matrix product `self @ other` — one kernel call, transposition
    /// passed as flags.
    pub fn matmul(&self, other: &Tensor<T>) -> Tensor<T> {
        Tensor::new(matmul_dispatch(T::ONE, self.raw(), self.flag(), other.raw(), other.flag()))
    }

    /// Elementwise sum (materializes pending views first, as the
    /// frameworks' eltwise kernels do).
    pub fn add(&self, other: &Tensor<T>) -> Tensor<T> {
        let (a, b) = (self.dense_for_eltwise(), other.dense_for_eltwise());
        Tensor::new(geadd(T::ONE, &a, T::ONE, &b))
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor<T>) -> Tensor<T> {
        let (a, b) = (self.dense_for_eltwise(), other.dense_for_eltwise());
        Tensor::new(geadd(T::ONE, &a, -T::ONE, &b))
    }

    /// Scalar scaling.
    pub fn scale(&self, c: f64) -> Tensor<T> {
        let a = self.dense_for_eltwise();
        Tensor::new(geadd(T::from_f64(c), &a, T::ZERO, &a))
    }

    fn dense_for_eltwise(&self) -> Matrix<T> {
        if self.trans {
            counters::record(Kernel::Transpose, 0);
            self.data.transpose()
        } else {
            (*self.data).clone()
        }
    }

    /// Single element `self[i, j]` as a `1×1` tensor.
    pub fn elem(&self, i: usize, j: usize) -> Tensor<T> {
        counters::record(Kernel::Slice, 0);
        let (r, c) = if self.trans { (j, i) } else { (i, j) };
        Tensor::new(Matrix::filled(1, 1, self.data[(r, c)]))
    }

    /// Row slice `self[i, :]` as a `1×n` tensor.
    pub fn row(&self, i: usize) -> Tensor<T> {
        counters::record(Kernel::Slice, 0);
        if self.trans {
            Tensor::new(Matrix::from_vec(1, self.data.rows(), self.data.col_iter(i).collect()))
        } else {
            Tensor::new(Matrix::row_vector(self.data.row(i)))
        }
    }

    /// Column slice `self[:, j]` as an `n×1` tensor.
    pub fn col(&self, j: usize) -> Tensor<T> {
        counters::record(Kernel::Slice, 0);
        if self.trans {
            Tensor::new(Matrix::col_vector(self.data.row(j)))
        } else {
            Tensor::new(self.data.col_matrix(j))
        }
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Tensor<T>) -> Tensor<T> {
        counters::record(Kernel::Concat, 0);
        Tensor::new(self.dense_for_eltwise().vcat(&other.dense_for_eltwise()))
    }

    /// Horizontal concatenation `[self, other]`.
    pub fn hcat(&self, other: &Tensor<T>) -> Tensor<T> {
        counters::record(Kernel::Concat, 0);
        Tensor::new(self.dense_for_eltwise().hcat(&other.dense_for_eltwise()))
    }

    /// Block-diagonal assembly.
    pub fn block_diag(&self, other: &Tensor<T>) -> Tensor<T> {
        counters::record(Kernel::Concat, 0);
        Tensor::new(Matrix::block_diag(&self.dense_for_eltwise(), &other.dense_for_eltwise()))
    }
}

impl<T: Scalar> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor({}x{}{})",
            self.rows(),
            self.cols(),
            if self.trans { ", view=T" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;
    use laab_kernels::reference;

    #[test]
    fn transpose_view_is_zero_copy_and_correct() {
        let mut g = OperandGen::new(61);
        let a = g.matrix::<f64>(5, 7);
        let t = Tensor::new(a.clone());
        let tt = t.t();
        assert_eq!(tt.shape(), (7, 5));
        assert_eq!(tt.to_matrix(), a.transpose());
        assert_eq!(tt.t().to_matrix(), a, "double transpose is the original");
    }

    #[test]
    fn eager_matmul_folds_transpose_into_flags() {
        let mut g = OperandGen::new(62);
        let a = g.matrix::<f64>(8, 8);
        let b = g.matrix::<f64>(8, 8);
        let (ta, tb) = (Tensor::new(a.clone()), Tensor::new(b.clone()));
        counters::reset();
        let r = ta.t().matmul(&tb);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 1, "one GEMM");
        assert_eq!(s.calls(Kernel::Transpose), 0, "no materialized transpose");
        let want =
            reference::gemm_naive(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &Matrix::zeros(8, 8));
        assert!(r.to_matrix().approx_eq(&want, 1e-12));
    }

    #[test]
    fn eager_has_no_cse() {
        // (AᵀB)ᵀ(AᵀB) in eager mode runs 3 GEMMs (Table I, row 2, Eager).
        let mut g = OperandGen::new(63);
        let a = Tensor::new(g.matrix::<f64>(8, 8));
        let b = Tensor::new(g.matrix::<f64>(8, 8));
        counters::reset();
        let s1 = a.t().matmul(&b);
        let s2 = a.t().matmul(&b);
        let _r = s1.t().matmul(&s2);
        assert_eq!(counters::snapshot().calls(Kernel::Gemm), 3);
    }

    #[test]
    fn elementwise_and_scale() {
        let mut g = OperandGen::new(64);
        let a = g.matrix::<f64>(4, 4);
        let b = g.matrix::<f64>(4, 4);
        let (ta, tb) = (Tensor::new(a.clone()), Tensor::new(b.clone()));
        assert!(ta.add(&tb).to_matrix().approx_eq(&a.add(&b), 1e-14));
        assert!(ta.sub(&tb).to_matrix().approx_eq(&a.sub(&b), 1e-14));
        assert!(ta.scale(2.5).to_matrix().approx_eq(&a.scale(2.5), 1e-14));
        // Transposed views materialize for eltwise ops.
        assert!(ta
            .t()
            .add(&tb.t())
            .to_matrix()
            .approx_eq(&a.transpose().add(&b.transpose()), 1e-14));
    }

    #[test]
    fn slicing_respects_views() {
        let mut g = OperandGen::new(65);
        let a = g.matrix::<f64>(5, 7);
        let t = Tensor::new(a.clone());
        assert_eq!(t.elem(1, 2).to_matrix()[(0, 0)], a[(1, 2)]);
        assert_eq!(t.t().elem(2, 1).to_matrix()[(0, 0)], a[(1, 2)]);
        assert_eq!(t.row(3).to_matrix().as_slice(), a.row(3));
        assert_eq!(t.t().col(3).to_matrix().as_slice(), a.row(3));
        assert_eq!(t.col(4).shape(), (5, 1));
        assert_eq!(t.t().row(4).shape(), (1, 5));
    }

    #[test]
    fn concat_ops() {
        let a = Tensor::new(Matrix::<f32>::filled(2, 3, 1.0));
        let b = Tensor::new(Matrix::<f32>::filled(2, 3, 2.0));
        assert_eq!(a.vcat(&b).shape(), (4, 3));
        assert_eq!(a.hcat(&b).shape(), (2, 6));
        assert_eq!(a.block_diag(&b).shape(), (4, 6));
    }
}
