//! Framework-level integration tests: the two modes and two profiles
//! behave per the paper across a matrix of expressions, including parsed
//! blackboard input.

use laab_dense::gen::OperandGen;
use laab_expr::eval::{eval, Env};
use laab_expr::{parse, Context};
use laab_framework::lower::eager_eval_expr;
use laab_framework::{Framework, Profile};
use laab_kernels::counters::{self, Kernel};

fn workload(n: usize) -> (Env<f32>, Context) {
    let mut g = OperandGen::new(77);
    let env = Env::new()
        .with("A", g.matrix(n, n))
        .with("B", g.matrix(n, n))
        .with("H", g.matrix(n, n))
        .with("x", g.matrix(n, 1))
        .with("y", g.matrix(n, 1));
    let ctx = Context::new()
        .with("A", n, n)
        .with("B", n, n)
        .with("H", n, n)
        .with("x", n, 1)
        .with("y", n, 1);
    (env, ctx)
}

/// Every paper test expression, written as blackboard text, agrees across
/// oracle / eager / graph on both profiles.
#[test]
fn parsed_paper_expressions_agree_across_modes() {
    let n = 10;
    let (env, ctx) = workload(n);
    let sources = [
        "H' y + (I - H' H) x",
        "H' y + x - H'(H x)",
        "H'(y - H x) + x",
        "A^T B",
        "A^T B + A^T B",
        "(A^T B)^T (A^T B)",
        "(A^T B)^T A^T B",
        "H' H x",
        "H'(H x)",
        "y' H' H",
        "H' y x' H",
        "(H' y)(x' H)",
        "A B + A B",
        "(A B)[2,2]",
        "A[2,:] B[:,2]",
    ];
    for src in sources {
        let expr = parse(src, &ctx).unwrap_or_else(|e| panic!("`{src}`: {e}"));
        let oracle = eval(&expr, &env);
        let eager = eager_eval_expr(&expr, &env);
        assert!(eager.approx_eq(&oracle, 1e-3), "eager differs for `{src}`");
        for fw in [Framework::flow(), Framework::torch()] {
            let f = fw.function_from_expr(&expr, &ctx);
            let out = f.call(&env);
            assert!(out[0].approx_eq(&oracle, 1e-3), "graph differs for `{src}`");
        }
    }
}

/// Calling a traced function repeatedly neither re-traces nor changes the
/// kernel traffic (the "compile once, run many" contract).
#[test]
fn traced_functions_are_reusable() {
    let n = 8;
    let (env, ctx) = workload(n);
    let expr = parse("(A^T B)^T (A^T B)", &ctx).unwrap();
    let f = Framework::flow().function_from_expr(&expr, &ctx);
    let (_, first) = counters::measure(|| f.call(&env));
    let (_, second) = counters::measure(|| f.call(&env));
    assert_eq!(first, second, "kernel traffic stable across calls");
    assert_eq!(first.calls(Kernel::Gemm), 2);
}

/// A function can be called with different feeds of the same shape.
#[test]
fn functions_rebind_feeds() {
    let n = 6;
    let (env, ctx) = workload(n);
    let expr = parse("A B", &ctx).unwrap();
    let f = Framework::torch().function_from_expr(&expr, &ctx);
    let out1 = f.call(&env);

    let mut g = OperandGen::new(123);
    let env2 = Env::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n));
    let out2 = f.call(&env2);
    assert!(!out1[0].approx_eq(&out2[0], 1e-6), "different feeds, different results");
    assert!(out2[0].approx_eq(&eval(&expr, &env2), 1e-4));
}

/// Profile capabilities are exactly the paper's asymmetry.
#[test]
fn profile_capability_asymmetry() {
    assert!(Profile::Flow.has_tridiagonal_matmul() && !Profile::Flow.has_multi_dot());
    assert!(Profile::Torch.has_multi_dot() && !Profile::Torch.has_tridiagonal_matmul());
    assert_eq!(Profile::Flow.name(), "Flow (TF)");
    assert_eq!(Profile::Torch.name(), "Torch (PyT)");
}

/// Eager tensors share storage: transposing and slicing do not copy the
/// full buffer, and the original remains usable.
#[test]
fn eager_tensors_share_storage() {
    let n = 64;
    let mut g = OperandGen::new(5);
    let m = g.matrix::<f32>(n, n);
    let t = Framework::flow().tensor(m.clone());
    let view = t.t();
    // Both remain usable; the view reads the same storage.
    assert_eq!(t.shape(), (n, n));
    assert_eq!(view.shape(), (n, n));
    assert_eq!(view.elem(3, 5).to_matrix()[(0, 0)], m[(5, 3)]);
    assert_eq!(t.elem(5, 3).to_matrix()[(0, 0)], m[(5, 3)]);
}

/// Graph mode with all passes disabled matches eager kernel-for-kernel —
/// the ablation identity behind the Table I comparison.
#[test]
fn unoptimized_graph_equals_eager_traffic() {
    let n = 8;
    let (env, ctx) = workload(n);
    let expr = parse("(A^T B)^T (A^T B)", &ctx).unwrap();

    let (_, eager) = counters::measure(|| eager_eval_expr(&expr, &env));
    let fw = Framework::flow().with_passes(laab_graph::PassConfig::none());
    let f = fw.function_from_expr(&expr, &ctx);
    let (_, graph) = counters::measure(|| f.call(&env));
    assert_eq!(
        eager.calls(Kernel::Gemm),
        graph.calls(Kernel::Gemm),
        "no-pass graph mode replays the eager schedule"
    );
}
