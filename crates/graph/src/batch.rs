//! Batched (multi-environment) plan execution — one sweep, `B` requests.
//!
//! A serving system that coalesces same-signature requests holds one
//! compiled graph and `B` operand bindings that differ only in the
//! *varying* leaves (the request payload — e.g. the `x` in `HᵀH·x`),
//! while the *shared* leaves (the model operands) are identical across
//! the batch. [`BatchAnalysis`] classifies every node as `Shared`
//! (identical output for all `B` environments — computed once) or
//! `Stacked` (per-environment outputs, kept as `B` column-aligned parts),
//! and proves whether the whole plan can execute in one batched sweep:
//!
//! * `Input` — `Stacked` when the caller declares the name varying,
//!   `Shared` otherwise (the caller guarantees shared names bind equal
//!   values in every environment).
//! * `MatMul` — `Shared · Stacked` with an untransposed right-hand side
//!   is the **RHS-stacking** case: `op(A)·[B₀ | … | B_{B−1}]`, one
//!   multi-RHS product ([`Backend::matmul_batched`]) instead of `B`
//!   GEMV-shaped calls. A stacked *left* operand (or a transposed stacked
//!   operand) has no column-stacked form — illegal.
//! * `Add`/`Sub` — legal when both operands have the same status
//!   (`Stacked ± Stacked` is per-part elementwise); mixed
//!   `Shared ± Stacked` would need a broadcast — illegal.
//! * `Scale` — per-part, always legal.
//! * `TridiagMatMul` — `Shared` tridiagonal × `Stacked` dense is
//!   per-part through the structured kernel (the compact form is built
//!   once per batch); a varying tridiagonal operand is illegal.
//! * `Transpose`/slicing/concatenation of a `Stacked` value — illegal
//!   (pure data movement has no batched form worth proving here).
//!
//! When the analysis proves the plan stackable, [`execute_batched_on`]
//! runs the sweep once; otherwise it falls back to sequential
//! per-environment [`execute_scheduled_on`] — **bitwise-identical** to
//! serving each request solo, so an illegal plan costs a batching server
//! nothing but the lost amortization. The stacked sweep itself performs
//! every elementwise step with the same backend entry points as the solo
//! sweep (per part, no buffer stealing — the allocating and in-place
//! forms are bitwise-identical by the [`Backend`] contract), so the only
//! place batched results may drift from solo results is a backend's
//! overridden [`Backend::matmul_batched`] (the engine's stacked GEMM
//! versus its solo GEMV dispatch — FMA-chain-level ULP drift, property
//! tested in `tests/batched_exec_props.rs`).

use laab_backend::Backend;
use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_expr::eval::Env;
use laab_kernels::counters::{self, Kernel};
use laab_kernels::Trans;

use crate::exec::{execute_scheduled_on, Schedule};
use crate::ir::{Graph, NodeId, OpKind};

/// How one node behaves across a batch of environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// Output identical for every environment — computed once.
    Shared,
    /// Per-environment outputs, carried as `B` column-aligned parts.
    Stacked,
}

/// The per-node batch classification of one graph, plus the overall
/// stackability verdict. Derived from graph *structure* and the set of
/// varying input names — value-independent, so a serving layer computes
/// it once at plan-compile time and reuses it per batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAnalysis {
    status: Vec<BatchStatus>,
    stackable: bool,
}

impl BatchAnalysis {
    /// Classify every node of `g`, with `is_varying` naming the input
    /// operands that differ per environment.
    ///
    /// The result is `stackable` only when (a) every node touched by a
    /// varying value has a legal stacked form (see the module docs) and
    /// (b) at least one input actually varies — a batch of identical
    /// requests must *not* be collapsed into one execution, because
    /// serving semantics promise per-request work, not result
    /// deduplication.
    pub fn analyze(g: &Graph, is_varying: impl Fn(&str) -> bool) -> Self {
        let mut status: Vec<BatchStatus> = Vec::with_capacity(g.len());
        let mut legal = true;
        let mut has_varying = false;
        for node in g.nodes.iter() {
            let stacked = |i: usize| status[node.inputs[i].idx()] == BatchStatus::Stacked;
            let any_stacked = node.inputs.iter().any(|id| status[id.idx()] == BatchStatus::Stacked);
            let s = match &node.kind {
                OpKind::Input(name) => {
                    if is_varying(name) {
                        has_varying = true;
                        BatchStatus::Stacked
                    } else {
                        BatchStatus::Shared
                    }
                }
                // A node fed only shared values is itself shared,
                // whatever it computes.
                _ if !any_stacked => BatchStatus::Shared,
                OpKind::MatMul { tb, .. } if !stacked(0) && stacked(1) && *tb == Trans::No => {
                    BatchStatus::Stacked
                }
                OpKind::Add | OpKind::Sub if stacked(0) && stacked(1) => BatchStatus::Stacked,
                OpKind::Scale(_) => BatchStatus::Stacked,
                OpKind::TridiagMatMul if !stacked(0) && stacked(1) => BatchStatus::Stacked,
                // Everything else touched by a stacked value — stacked
                // left operands, transposed stacked operands, mixed
                // shared±stacked sums, transpose/slicing/concatenation/
                // block assembly of a stacked value: no column-stacked
                // form proven here.
                _ => {
                    legal = false;
                    BatchStatus::Stacked
                }
            };
            status.push(s);
        }
        Self { status, stackable: legal && has_varying }
    }

    /// `true` when the whole plan executes in one stacked sweep;
    /// `false` sends [`execute_batched_on`] down the per-environment
    /// fallback.
    pub fn stackable(&self) -> bool {
        self.stackable
    }

    /// The classification of node `id`.
    pub fn status(&self, id: NodeId) -> BatchStatus {
        self.status[id.idx()]
    }

    /// Number of classified nodes.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// `true` for the empty graph's analysis.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }
}

/// One in-flight value of the batched sweep.
enum BVal<'e, T: Scalar> {
    SharedRef(&'e Matrix<T>),
    SharedOwned(Matrix<T>),
    StackedRef(Vec<&'e Matrix<T>>),
    StackedOwned(Vec<Matrix<T>>),
}

impl<'e, T: Scalar> BVal<'e, T> {
    /// The shared value (analysis guarantees the status).
    fn shared(&self) -> &Matrix<T> {
        match self {
            BVal::SharedRef(m) => m,
            BVal::SharedOwned(m) => m,
            _ => unreachable!("analysis marked a stacked value as shared"),
        }
    }

    /// The stacked parts as a fresh reference vector (analysis guarantees
    /// the status).
    fn parts(&self) -> Vec<&Matrix<T>> {
        match self {
            BVal::StackedRef(parts) => parts.clone(),
            BVal::StackedOwned(parts) => parts.iter().collect(),
            _ => unreachable!("analysis marked a shared value as stacked"),
        }
    }
}

/// Execute the graph once over `B` operand environments, dispatching
/// through `backend`.
///
/// Returns one output vector per environment, in `envs` order. When
/// `analysis` proves the plan stackable (and `B > 1`), the sweep runs
/// once: shared nodes execute a single time, varying matmuls go through
/// [`Backend::matmul_batched`], and everything else is per-part through
/// the identical backend entry points the solo sweep uses. Otherwise the
/// call falls back to sequential [`execute_scheduled_on`] per
/// environment — bitwise-identical to solo serving.
///
/// The caller guarantees that every input *not* named varying by the
/// analysis binds the same value in all environments (shared nodes are
/// computed from `envs[0]`).
///
/// # Panics
/// When `envs` is empty, when `schedule`/`analysis` were built for a
/// different graph (length mismatch), plus everything
/// [`execute_scheduled_on`] panics on.
pub fn execute_batched_on<T: Scalar>(
    g: &Graph,
    schedule: &Schedule,
    analysis: &BatchAnalysis,
    envs: &[&Env<T>],
    backend: &dyn Backend<T>,
) -> Vec<Vec<Matrix<T>>> {
    assert!(!envs.is_empty(), "execute_batched_on: empty environment batch");
    assert_eq!(
        analysis.len(),
        g.len(),
        "analysis was built for a graph with {} nodes, this graph has {}",
        analysis.len(),
        g.len()
    );
    if !analysis.stackable() || envs.len() == 1 {
        return envs.iter().map(|env| execute_scheduled_on(g, schedule, env, backend)).collect();
    }
    assert_eq!(
        schedule.len(),
        g.len(),
        "schedule was built for a graph with {} nodes, this graph has {}",
        schedule.len(),
        g.len()
    );
    debug_assert_eq!(g.check_topology(), Ok(()));

    let q = envs.len();
    let mut remaining = schedule.use_counts().to_vec();
    let mut values: Vec<Option<BVal<'_, T>>> = Vec::with_capacity(g.len());

    for (i, node) in g.nodes.iter().enumerate() {
        let stacked_out = analysis.status[i] == BatchStatus::Stacked;
        let val: BVal<'_, T> = match &node.kind {
            OpKind::Input(name) => {
                if stacked_out {
                    let parts: Vec<&Matrix<T>> = envs
                        .iter()
                        .map(|env| {
                            let m = env.expect(name);
                            assert_eq!(
                                (m.rows(), m.cols()),
                                (node.shape.rows, node.shape.cols),
                                "feed `{name}` has shape {}x{}, graph expects {}",
                                m.rows(),
                                m.cols(),
                                node.shape
                            );
                            m
                        })
                        .collect();
                    BVal::StackedRef(parts)
                } else {
                    let m = envs[0].expect(name);
                    assert_eq!(
                        (m.rows(), m.cols()),
                        (node.shape.rows, node.shape.cols),
                        "feed `{name}` has shape {}x{}, graph expects {}",
                        m.rows(),
                        m.cols(),
                        node.shape
                    );
                    BVal::SharedRef(m)
                }
            }
            OpKind::Identity(n) => BVal::SharedOwned(Matrix::identity(*n)),
            OpKind::MatMul { ta, tb, alpha_bits } => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap();
                let b = values[node.inputs[1].idx()].as_ref().unwrap();
                let alpha = T::from_f64(f64::from_bits(*alpha_bits));
                if stacked_out {
                    // Analysis guarantees: shared LHS, stacked RHS, tb = No.
                    BVal::StackedOwned(backend.matmul_batched(alpha, a.shared(), *ta, &b.parts()))
                } else {
                    BVal::SharedOwned(backend.matmul(alpha, a.shared(), *ta, b.shared(), *tb))
                }
            }
            OpKind::Add | OpKind::Sub => {
                let beta = if matches!(node.kind, OpKind::Add) { T::ONE } else { -T::ONE };
                let a = values[node.inputs[0].idx()].as_ref().unwrap();
                let b = values[node.inputs[1].idx()].as_ref().unwrap();
                if stacked_out {
                    let out: Vec<Matrix<T>> = a
                        .parts()
                        .iter()
                        .zip(b.parts())
                        .map(|(pa, pb)| backend.geadd(T::ONE, pa, beta, pb))
                        .collect();
                    BVal::StackedOwned(out)
                } else {
                    BVal::SharedOwned(backend.geadd(T::ONE, a.shared(), beta, b.shared()))
                }
            }
            OpKind::Scale(bits) => {
                let c = T::from_f64(f64::from_bits(*bits));
                let x = values[node.inputs[0].idx()].as_ref().unwrap();
                if stacked_out {
                    BVal::StackedOwned(x.parts().iter().map(|p| backend.scale(c, p)).collect())
                } else {
                    BVal::SharedOwned(backend.scale(c, x.shared()))
                }
            }
            OpKind::TridiagMatMul => {
                let t = values[node.inputs[0].idx()].as_ref().unwrap();
                let b = values[node.inputs[1].idx()].as_ref().unwrap();
                // The compact form is built once per batch either way.
                let compact = Tridiagonal::from_dense(t.shared());
                if stacked_out {
                    let out: Vec<Matrix<T>> =
                        b.parts().iter().map(|p| backend.tridiag_matmul(&compact, p)).collect();
                    BVal::StackedOwned(out)
                } else {
                    BVal::SharedOwned(backend.tridiag_matmul(&compact, b.shared()))
                }
            }
            // Analysis guarantees the remaining (data-movement) kinds are
            // fed only shared values: execute them once, as the solo
            // sweep would.
            OpKind::Transpose => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap();
                counters::record(Kernel::Transpose, 0);
                BVal::SharedOwned(x.shared().transpose())
            }
            OpKind::Elem(r, c) => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap();
                counters::record(Kernel::Slice, 0);
                BVal::SharedOwned(Matrix::filled(1, 1, x.shared()[(*r, *c)]))
            }
            OpKind::Row(r) => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap();
                counters::record(Kernel::Slice, 0);
                BVal::SharedOwned(Matrix::row_vector(x.shared().row(*r)))
            }
            OpKind::Col(c) => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap();
                counters::record(Kernel::Slice, 0);
                BVal::SharedOwned(x.shared().col_matrix(*c))
            }
            OpKind::VCat => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap();
                let b = values[node.inputs[1].idx()].as_ref().unwrap();
                counters::record(Kernel::Concat, 0);
                BVal::SharedOwned(a.shared().vcat(b.shared()))
            }
            OpKind::HCat => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap();
                let b = values[node.inputs[1].idx()].as_ref().unwrap();
                counters::record(Kernel::Concat, 0);
                BVal::SharedOwned(a.shared().hcat(b.shared()))
            }
            OpKind::BlockDiag => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap();
                let b = values[node.inputs[1].idx()].as_ref().unwrap();
                counters::record(Kernel::Concat, 0);
                BVal::SharedOwned(Matrix::block_diag(a.shared(), b.shared()))
            }
        };
        values.push(Some(val));

        // Free operands whose last consumer has now run.
        for inp in &node.inputs {
            let r = &mut remaining[inp.idx()];
            *r -= 1;
            if *r == 0 {
                values[inp.idx()] = None;
            }
        }
    }

    // Push one fetched value to every environment's output vector by
    // cloning: a shared value is replicated, stacked parts go to their
    // own environments.
    fn push_cloned<T: Scalar>(out: &mut [Vec<Matrix<T>>], val: &BVal<'_, T>) {
        match val {
            BVal::SharedRef(m) => {
                for per_env in out.iter_mut() {
                    per_env.push((*m).clone());
                }
            }
            BVal::SharedOwned(m) => {
                for per_env in out.iter_mut() {
                    per_env.push(m.clone());
                }
            }
            BVal::StackedRef(parts) => {
                for (per_env, part) in out.iter_mut().zip(parts) {
                    per_env.push((*part).clone());
                }
            }
            BVal::StackedOwned(parts) => {
                for (per_env, part) in out.iter_mut().zip(parts) {
                    per_env.push(part.clone());
                }
            }
        }
    }

    let mut out: Vec<Vec<Matrix<T>>> =
        (0..q).map(|_| Vec::with_capacity(g.outputs.len())).collect();
    for id in &g.outputs {
        let r = &mut remaining[id.idx()];
        *r -= 1;
        if *r == 0 {
            // Final fetch: move owned stacked parts out instead of cloning.
            match values[id.idx()].take().expect("output already freed") {
                BVal::StackedOwned(parts) => {
                    for (per_env, part) in out.iter_mut().zip(parts) {
                        per_env.push(part);
                    }
                }
                val => push_cloned(&mut out, &val),
            }
        } else {
            push_cloned(&mut out, values[id.idx()].as_ref().expect("output already freed"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GraphBuilder;
    use crate::passes::{optimize, PassConfig};
    use laab_dense::gen::OperandGen;

    const VARYING: [&str; 2] = ["x", "y"];

    fn is_varying(name: &str) -> bool {
        VARYING.contains(&name)
    }

    /// `B` environments sharing `H` (and `T`), each with its own `x`/`y`.
    fn envs(n: usize, q: usize, seed: u64) -> Vec<Env<f64>> {
        let mut shared = OperandGen::new(seed);
        let h = shared.matrix::<f64>(n, n);
        let t = shared.tridiagonal::<f64>(n).to_dense();
        (0..q)
            .map(|i| {
                let mut g = OperandGen::new(seed ^ (0xB00 + i as u64));
                Env::new()
                    .with("H", h.clone())
                    .with("T", t.clone())
                    .with("x", g.matrix(n, 1))
                    .with("y", g.matrix(n, 1))
            })
            .collect()
    }

    /// The solver-residual plan `Hᵀ(y − Hx)`, optimized (transposes fold
    /// into GEMM flags, so the varying path is pure RHS-stacking).
    fn residual_graph(n: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let h = gb.input("H", n, n);
        let x = gb.input("x", n, 1);
        let y = gb.input("y", n, 1);
        let hx = gb.matmul(h, x);
        let r = gb.sub(y, hx);
        let ht = gb.transpose(h);
        let out = gb.matmul(ht, r);
        let mut g = gb.finish(vec![out]);
        optimize(&mut g, &PassConfig::all());
        g
    }

    fn solo_all(g: &Graph, schedule: &Schedule, envs: &[&Env<f64>]) -> Vec<Vec<Matrix<f64>>> {
        envs.iter().map(|e| execute_scheduled_on(g, schedule, e, laab_backend::engine())).collect()
    }

    #[test]
    fn residual_plan_is_stackable_and_matches_solo() {
        // n = 80 (> the engine's 32KB L1 cutoff at f64), so the engine's
        // stacked multi-RHS path engages rather than its per-item loop.
        let n = 80;
        let g = residual_graph(n);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(analysis.stackable(), "residual plan must RHS-stack");
        let owned = envs(n, 8, 3);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
        let solo = solo_all(&g, &schedule, &refs);
        assert_eq!(batched.len(), 8);
        for (b, s) in batched.iter().zip(&solo) {
            assert!(b[0].approx_eq(&s[0], 1e-12), "batched drifted: {}", b[0].rel_dist(&s[0]));
        }
    }

    #[test]
    fn reference_backend_batched_is_bitwise_solo() {
        // The default matmul_batched is a per-item loop and every other
        // stacked op is per-part through identical entry points, so the
        // reference backend's batched sweep is bit-for-bit its solo sweep.
        let n = 10;
        let g = residual_graph(n);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        let owned = envs(n, 5, 7);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let backend = laab_backend::registry::find("reference").unwrap().resolve::<f64>().unwrap();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, backend);
        for (env, b) in refs.iter().zip(&batched) {
            let s = execute_scheduled_on(&g, &schedule, env, backend);
            assert_eq!(b, &s);
        }
    }

    #[test]
    fn gemm_free_plan_is_bitwise_on_every_backend() {
        // 2·(x − y) + x: adds, subs, scales only — per-part dispatch is
        // the identical kernel per element, so batched ≡ solo bitwise for
        // all backends, engine included.
        let n = 12;
        let mut gb = GraphBuilder::new();
        let x = gb.input("x", n, 1);
        let y = gb.input("y", n, 1);
        let d = gb.sub(x, y);
        let s = gb.scale(2.0, d);
        let out = gb.add(s, x);
        let g = gb.finish(vec![out]);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(analysis.stackable());
        let owned = envs(n, 6, 11);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        for reg in laab_backend::registry::builtins() {
            let backend = reg.resolve::<f64>().unwrap();
            let batched = execute_batched_on(&g, &schedule, &analysis, &refs, backend);
            for (env, b) in refs.iter().zip(&batched) {
                assert_eq!(b, &execute_scheduled_on(&g, &schedule, env, backend), "{}", reg.name());
            }
        }
    }

    #[test]
    fn tridiag_plan_stacks_per_part() {
        let n = 14;
        let mut gb = GraphBuilder::new();
        let t = gb.input("T", n, n);
        let x = gb.input("x", n, 1);
        let out = gb.tridiag_matmul(t, x);
        let g = gb.finish(vec![out]);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(analysis.stackable());
        let owned = envs(n, 4, 13);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
        for (env, b) in refs.iter().zip(&batched) {
            let s = execute_scheduled_on(&g, &schedule, env, laab_backend::engine());
            assert_eq!(b, &s, "structured per-part path must be bitwise");
        }
    }

    #[test]
    fn illegal_shapes_fall_back_bitwise() {
        // xᵀx (a varying Gram scalar): the optimized graph multiplies a
        // stacked operand on the left — no column-stacked form, so the
        // analysis refuses and execution falls back per environment.
        let n = 9;
        let mut gb = GraphBuilder::new();
        let x = gb.input("x", n, 1);
        let xt = gb.transpose(x);
        let out = gb.matmul(xt, x);
        let mut g = gb.finish(vec![out]);
        optimize(&mut g, &PassConfig::all());
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(!analysis.stackable(), "stacked LHS must be illegal");
        let owned = envs(n, 6, 17);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
        for (env, b) in refs.iter().zip(&batched) {
            let s = execute_scheduled_on(&g, &schedule, env, laab_backend::engine());
            assert_eq!(b, &s, "fallback must be bitwise-identical to solo");
        }
    }

    #[test]
    fn mixed_add_and_transposed_stacked_are_illegal() {
        let n = 6;
        // x + H (shared + stacked elementwise): illegal.
        let mut gb = GraphBuilder::new();
        let h = gb.input("H", n, 1); // n×1 shared here, name not varying
        let x = gb.input("x", n, 1);
        let s = gb.add(x, h);
        let g = gb.finish(vec![s]);
        assert!(!BatchAnalysis::analyze(&g, is_varying).stackable());

        // Transposing a stacked value: illegal.
        let mut gb = GraphBuilder::new();
        let x = gb.input("x", n, 1);
        let xt = gb.transpose(x);
        let g = gb.finish(vec![xt]);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(!analysis.stackable());
        assert_eq!(analysis.status(NodeId(0)), BatchStatus::Stacked);
    }

    #[test]
    fn all_shared_plans_do_not_stack() {
        // No varying input → batching would be result deduplication, not
        // batched serving; the analysis must refuse (fallback serves each
        // request honestly).
        let n = 8;
        let mut gb = GraphBuilder::new();
        let h = gb.input("H", n, n);
        let hh = gb.matmul(h, h);
        let g = gb.finish(vec![hh]);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(!analysis.stackable());
        assert_eq!(analysis.status(NodeId(1)), BatchStatus::Shared);
        assert_eq!(analysis.len(), 2);
        assert!(!analysis.is_empty());
        let schedule = Schedule::new(&g);
        let owned = envs(n, 3, 19);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
        let solo = solo_all(&g, &schedule, &refs);
        assert_eq!(batched, solo);
    }

    #[test]
    fn batch_of_one_takes_the_solo_path() {
        let n = 10;
        let g = residual_graph(n);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        let owned = envs(n, 1, 23);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
        let solo = solo_all(&g, &schedule, &refs);
        assert_eq!(batched, solo, "a one-request batch is exactly a solo execution");
    }

    #[test]
    fn shared_outputs_and_multi_fetch() {
        // Fetch a shared value, a stacked value, and the stacked value
        // again: every environment sees its own copy, and repeated
        // fetches are equal.
        let n = 7;
        let mut gb = GraphBuilder::new();
        let h = gb.input("H", n, n);
        let x = gb.input("x", n, 1);
        let hx = gb.matmul(h, x);
        let g = gb.finish(vec![h, hx, hx]);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        assert!(analysis.stackable());
        let owned = envs(n, 4, 29);
        let refs: Vec<&Env<f64>> = owned.iter().collect();
        let batched = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
        for (env, b) in refs.iter().zip(&batched) {
            assert_eq!(b.len(), 3);
            assert_eq!(&b[0], env.expect("H"));
            assert_eq!(b[1], b[2]);
        }
    }

    #[test]
    #[should_panic(expected = "empty environment batch")]
    fn empty_batch_panics() {
        let g = residual_graph(4);
        let schedule = Schedule::new(&g);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        let refs: Vec<&Env<f64>> = Vec::new();
        let _ = execute_batched_on(&g, &schedule, &analysis, &refs, laab_backend::engine());
    }
}
