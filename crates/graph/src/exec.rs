//! The DAG executor and the precomputed execution [`Schedule`].
//!
//! A single forward sweep in topological order. Every kernel-backed node
//! dispatches through a `laab-backend` [`Backend`] — the live engine by
//! default ([`execute`] / [`execute_scheduled`]), or any registered
//! backend via [`execute_on`] / [`execute_scheduled_on`], so identical
//! graphs can be A/B'd across kernel strategies the way one traced
//! `tf.function` graph dispatches to multiple runtimes. Pure data
//! movement (transpose, slicing, concatenation) is executor-level and
//! backend-independent. The thread-local FLOP/call counters give a
//! faithful kernel-level trace of the graph's execution — the data behind
//! the paper's analytical claims. Intermediate buffers are freed as soon
//! as their last consumer has run (reference counting), bounding peak
//! memory to the live frontier of the DAG.
//!
//! Vector-shaped products dispatch to Level-1/2 kernels the way the
//! frameworks' `matmul` lowers to MKL: `1×k · k×1` → `DOT`,
//! `m×k · k×1` → `GEMV`, `1×k · k×n` → `GEMV` on the transpose, everything
//! else → `GEMM` (with transposition and `alpha` as kernel attributes).
//!
//! [`execute`] recomputes the reference counts on every call — fine for a
//! one-shot experiment. A serving system re-executing the same graph per
//! request amortizes that bookkeeping through a [`Schedule`]: the use
//! counts, per-node output sizes, and the peak-live workspace layout are
//! computed once at plan-compile time and re-used by
//! [`execute_scheduled`] with fresh operand bindings (the `tf.function`
//! concrete-function analogue that `laab-serve` caches).

use laab_backend::{engine, Backend};
use laab_dense::{Matrix, Scalar, Tridiagonal};
use laab_expr::eval::Env;
use laab_kernels::counters::{self, Kernel};

use crate::ir::{Graph, NodeId, OpKind};

enum Val<'e, T: Scalar> {
    Ref(&'e Matrix<T>),
    Owned(Matrix<T>),
}

impl<'e, T: Scalar> Val<'e, T> {
    fn get(&self) -> &Matrix<T> {
        match self {
            Val::Ref(m) => m,
            Val::Owned(m) => m,
        }
    }
    fn into_owned(self) -> Matrix<T> {
        match self {
            Val::Ref(m) => m.clone(),
            Val::Owned(m) => m,
        }
    }
}

/// Steal the buffer of `id` when this node is its only remaining consumer
/// and the value is an owned intermediate (not a borrowed feed). The freed
/// slot stays `None`; the release loop after the node tolerates that.
fn take_unique<'e, T: Scalar>(
    values: &mut [Option<Val<'e, T>>],
    remaining: &[u32],
    id: NodeId,
) -> Option<Matrix<T>> {
    if remaining[id.idx()] == 1 && matches!(values[id.idx()], Some(Val::Owned(_))) {
        match values[id.idx()].take() {
            Some(Val::Owned(m)) => Some(m),
            _ => unreachable!("checked Owned just above"),
        }
    } else {
        None
    }
}

/// The precomputed execution plan for one [`Graph`]: everything the
/// executor derives from graph *structure* (as opposed to operand
/// *values*), hoisted out of the per-call path.
///
/// A schedule is valid only for the exact graph it was built from;
/// [`execute_scheduled`] cross-checks the node count and (in debug
/// builds) the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Per-node reference counts (operand edges + output fetches), the
    /// seed of the executor's free-after-last-use sweep.
    use_counts: Vec<u32>,
    /// Per-node output element counts (`rows · cols`).
    out_elems: Vec<usize>,
    /// Peak sum of live intermediate elements across the sweep — the
    /// workspace-size layout a serving system reserves per in-flight
    /// request. Fed inputs are borrowed, not allocated, so they are
    /// excluded; in-place buffer reuse (Add/Sub/Scale stealing a
    /// uniquely-owned operand) only lowers the true footprint, so this
    /// is a safe upper bound.
    peak_live_elems: usize,
}

impl Schedule {
    /// Precompute the schedule for `g` by simulating the executor's
    /// reference-counting sweep without touching any operand data.
    pub fn new(g: &Graph) -> Self {
        let use_counts = g.use_counts();
        let out_elems: Vec<usize> = g.nodes.iter().map(|n| n.shape.len()).collect();
        let mut remaining = use_counts.clone();
        let mut live = 0usize;
        let mut peak = 0usize;
        for (i, node) in g.nodes.iter().enumerate() {
            if !matches!(node.kind, OpKind::Input(_)) {
                live += out_elems[i];
                peak = peak.max(live);
            }
            for inp in &node.inputs {
                remaining[inp.idx()] -= 1;
                if remaining[inp.idx()] == 0 && !matches!(g.nodes[inp.idx()].kind, OpKind::Input(_))
                {
                    live -= out_elems[inp.idx()];
                }
            }
        }
        Self { use_counts, out_elems, peak_live_elems: peak }
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.use_counts.len()
    }

    /// `true` for the empty graph's schedule.
    pub fn is_empty(&self) -> bool {
        self.use_counts.is_empty()
    }

    /// The per-node reference counts the executor starts from.
    pub fn use_counts(&self) -> &[u32] {
        &self.use_counts
    }

    /// Output element count of node `id`.
    pub fn out_elems(&self, id: NodeId) -> usize {
        self.out_elems[id.idx()]
    }

    /// Peak live intermediate elements (see the field docs for what is
    /// and is not counted).
    pub fn peak_live_elems(&self) -> usize {
        self.peak_live_elems
    }

    /// The peak-live workspace in bytes for element type `T`.
    pub fn workspace_bytes<T: Scalar>(&self) -> usize {
        self.peak_live_elems * std::mem::size_of::<T>()
    }
}

/// Execute the graph against the fed operands, returning the outputs in
/// fetch order.
///
/// # Panics
/// On missing feeds, feed-shape mismatches, or (in debug builds) a graph
/// violating the topological invariant.
pub fn execute<T: Scalar>(g: &Graph, env: &Env<T>) -> Vec<Matrix<T>> {
    execute_on(g, env, engine::<T>())
}

/// [`execute`] through an explicit execution [`Backend`] — the same
/// sweep, buffer stealing, and free order, with every kernel-backed node
/// dispatched to `backend`'s entry points instead of the default engine.
///
/// # Panics
/// Everything [`execute`] panics on.
pub fn execute_on<T: Scalar>(g: &Graph, env: &Env<T>, backend: &dyn Backend<T>) -> Vec<Matrix<T>> {
    execute_with_counts(g, g.use_counts(), env, backend)
}

/// Execute the graph under a precomputed [`Schedule`], skipping the
/// per-call reference-count derivation. Numerically this is the *same
/// sweep* as [`execute`] — kernel dispatch, buffer stealing, and free
/// order are identical — so a plan-cache hit is bitwise-identical to a
/// cold trace.
///
/// # Panics
/// When `schedule` was built for a graph with a different node count, plus
/// everything [`execute`] panics on.
pub fn execute_scheduled<T: Scalar>(
    g: &Graph,
    schedule: &Schedule,
    env: &Env<T>,
) -> Vec<Matrix<T>> {
    execute_scheduled_on(g, schedule, env, engine::<T>())
}

/// [`execute_scheduled`] through an explicit execution [`Backend`] — what
/// `laab-serve` calls with the backend a plan was compiled for, so one
/// request stream can be A/B'd across backends under identical schedules.
///
/// # Panics
/// Everything [`execute_scheduled`] panics on.
pub fn execute_scheduled_on<T: Scalar>(
    g: &Graph,
    schedule: &Schedule,
    env: &Env<T>,
    backend: &dyn Backend<T>,
) -> Vec<Matrix<T>> {
    assert_eq!(
        schedule.len(),
        g.len(),
        "schedule was built for a graph with {} nodes, this graph has {}",
        schedule.len(),
        g.len()
    );
    execute_with_counts(g, schedule.use_counts.clone(), env, backend)
}

fn execute_with_counts<'e, T: Scalar>(
    g: &Graph,
    mut remaining: Vec<u32>,
    env: &'e Env<T>,
    backend: &dyn Backend<T>,
) -> Vec<Matrix<T>> {
    debug_assert_eq!(g.check_topology(), Ok(()));
    let mut values: Vec<Option<Val<'e, T>>> = Vec::with_capacity(g.len());

    for node in g.nodes.iter() {
        let val: Val<'e, T> = match &node.kind {
            OpKind::Input(name) => {
                let m = env.expect(name);
                assert_eq!(
                    (m.rows(), m.cols()),
                    (node.shape.rows, node.shape.cols),
                    "feed `{name}` has shape {}x{}, graph expects {}",
                    m.rows(),
                    m.cols(),
                    node.shape
                );
                Val::Ref(m)
            }
            OpKind::Identity(n) => Val::Owned(Matrix::identity(*n)),
            OpKind::MatMul { ta, tb, alpha_bits } => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                let alpha = T::from_f64(f64::from_bits(*alpha_bits));
                Val::Owned(backend.matmul(alpha, a, *ta, b, *tb))
            }
            OpKind::Add => {
                // Reuse a uniquely-owned operand buffer instead of
                // allocating a fresh output (addition commutes exactly, so
                // either side may accumulate the other).
                if let Some(mut a) = take_unique(&mut values, &remaining, node.inputs[0]) {
                    let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                    backend.geadd_assign(T::ONE, &mut a, T::ONE, b);
                    Val::Owned(a)
                } else if let Some(mut b) = take_unique(&mut values, &remaining, node.inputs[1]) {
                    let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                    backend.geadd_assign(T::ONE, &mut b, T::ONE, a);
                    Val::Owned(b)
                } else {
                    let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                    let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                    Val::Owned(backend.geadd(T::ONE, a, T::ONE, b))
                }
            }
            OpKind::Sub => {
                if let Some(mut a) = take_unique(&mut values, &remaining, node.inputs[0]) {
                    let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                    backend.geadd_assign(T::ONE, &mut a, -T::ONE, b);
                    Val::Owned(a)
                } else if let Some(mut b) = take_unique(&mut values, &remaining, node.inputs[1]) {
                    // a − b == (−1)·b + a, exactly, in either operand order.
                    let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                    backend.geadd_assign(-T::ONE, &mut b, T::ONE, a);
                    Val::Owned(b)
                } else {
                    let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                    let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                    Val::Owned(backend.geadd(T::ONE, a, -T::ONE, b))
                }
            }
            OpKind::Scale(bits) => {
                let c = T::from_f64(f64::from_bits(*bits));
                if let Some(mut x) = take_unique(&mut values, &remaining, node.inputs[0]) {
                    backend.scale_assign(c, &mut x);
                    Val::Owned(x)
                } else {
                    let x = values[node.inputs[0].idx()].as_ref().unwrap().get();
                    Val::Owned(backend.scale(c, x))
                }
            }
            OpKind::Transpose => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Transpose, 0);
                Val::Owned(x.transpose())
            }
            OpKind::Elem(r, c) => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Slice, 0);
                Val::Owned(Matrix::filled(1, 1, x[(*r, *c)]))
            }
            OpKind::Row(r) => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Slice, 0);
                Val::Owned(Matrix::row_vector(x.row(*r)))
            }
            OpKind::Col(c) => {
                let x = values[node.inputs[0].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Slice, 0);
                Val::Owned(x.col_matrix(*c))
            }
            OpKind::VCat => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Concat, 0);
                Val::Owned(a.vcat(b))
            }
            OpKind::HCat => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Concat, 0);
                Val::Owned(a.hcat(b))
            }
            OpKind::BlockDiag => {
                let a = values[node.inputs[0].idx()].as_ref().unwrap().get();
                let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                counters::record(Kernel::Concat, 0);
                Val::Owned(Matrix::block_diag(a, b))
            }
            OpKind::TridiagMatMul => {
                let t = values[node.inputs[0].idx()].as_ref().unwrap().get();
                let b = values[node.inputs[1].idx()].as_ref().unwrap().get();
                let compact = Tridiagonal::from_dense(t);
                Val::Owned(backend.tridiag_matmul(&compact, b))
            }
        };
        values.push(Some(val));

        // Free operands whose last consumer has now run.
        for inp in &node.inputs {
            let r = &mut remaining[inp.idx()];
            *r -= 1;
            if *r == 0 {
                values[inp.idx()] = None;
            }
        }
    }

    let mut out = Vec::with_capacity(g.outputs.len());
    for id in &g.outputs {
        let r = &mut remaining[id.idx()];
        *r -= 1;
        if *r == 0 {
            out.push(values[id.idx()].take().expect("output already freed").into_owned());
        } else {
            out.push(values[id.idx()].as_ref().expect("output already freed").get().clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GraphBuilder;
    use crate::passes::{optimize, PassConfig};
    use laab_dense::gen::OperandGen;
    use laab_expr::eval::{eval, Env};
    use laab_expr::var;

    fn env(n: usize, seed: u64) -> Env<f64> {
        let mut g = OperandGen::new(seed);
        Env::new()
            .with("A", g.matrix(n, n))
            .with("B", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1))
    }

    /// (AᵀB)ᵀ(AᵀB) built through the graph API.
    fn fig3_graph(n: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let at = gb.transpose(a);
        let t0 = gb.matmul(at, b);
        let at2 = gb.transpose(a);
        let t1 = gb.matmul(at2, b);
        let t0t = gb.transpose(t0);
        let ret = gb.matmul(t0t, t1);
        gb.finish(vec![ret])
    }

    #[test]
    fn unoptimized_and_optimized_agree_with_oracle() {
        let n = 16;
        let e = env(n, 42);
        let oracle = {
            let s = var("A").t() * var("B");
            eval(&(s.t() * s.clone()), &e)
        };
        let g0 = fig3_graph(n);
        let unopt = execute(&g0, &e);
        assert!(unopt[0].approx_eq(&oracle, 1e-12));

        let mut g1 = fig3_graph(n);
        optimize(&mut g1, &PassConfig::all());
        let opt = execute(&g1, &e);
        assert!(opt[0].approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn optimization_changes_gemm_count_not_value() {
        let n = 12;
        let e = env(n, 7);
        let g0 = fig3_graph(n);
        let (_r0, c0) = counters::measure(|| execute(&g0, &e));
        assert_eq!(c0.calls(Kernel::Gemm), 3, "unoptimized graph runs 3 GEMMs");

        let mut g1 = fig3_graph(n);
        optimize(&mut g1, &PassConfig::all());
        let (_r1, c1) = counters::measure(|| execute(&g1, &e));
        assert_eq!(c1.calls(Kernel::Gemm), 2, "CSE saves one GEMM (Table I row 2)");
        assert_eq!(c1.calls(Kernel::Transpose), 0, "transposes folded into flags");
    }

    #[test]
    fn vector_products_dispatch_to_level1_and_2() {
        let n = 10;
        let e = env(n, 9);
        // Hᵀ(Hx): two GEMVs, zero GEMMs.
        let mut gb = GraphBuilder::new();
        let h = gb.input("A", n, n);
        let x = gb.input("x", n, 1);
        let hx = gb.matmul(h, x);
        let ht = gb.transpose(h);
        let r = gb.matmul(ht, hx);
        let mut g = gb.finish(vec![r]);
        optimize(&mut g, &PassConfig::all());
        let (out, c) = counters::measure(|| execute(&g, &e));
        assert_eq!(c.calls(Kernel::Gemv), 2);
        assert_eq!(c.calls(Kernel::Gemm), 0);
        let oracle = eval(&(var("A").t() * (var("A") * var("x"))), &e);
        assert!(out[0].approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn dot_dispatch_for_scalar_product() {
        let n = 10;
        let e = env(n, 11);
        let mut gb = GraphBuilder::new();
        let x = gb.input("x", n, 1);
        let y = gb.input("y", n, 1);
        let xt = gb.transpose(x);
        let d = gb.matmul(xt, y);
        let mut g = gb.finish(vec![d]);
        optimize(&mut g, &PassConfig::all());
        let (out, c) = counters::measure(|| execute(&g, &e));
        assert_eq!(c.calls(Kernel::Dot), 1);
        let oracle = eval(&(var("x").t() * var("y")), &e);
        assert!((out[0][(0, 0)] - oracle[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn row_vector_times_matrix_uses_gemv() {
        // yᵀ Hᵀ H evaluated left-to-right: two GEMVs (Table III, L→R case).
        let n = 10;
        let e = env(n, 13);
        let mut gb = GraphBuilder::new();
        let h = gb.input("A", n, n);
        let y = gb.input("y", n, 1);
        let yt = gb.transpose(y);
        let ht = gb.transpose(h);
        let m1 = gb.matmul(yt, ht);
        let m2 = gb.matmul(m1, h);
        let mut g = gb.finish(vec![m2]);
        optimize(&mut g, &PassConfig::all());
        let (out, c) = counters::measure(|| execute(&g, &e));
        assert_eq!(c.calls(Kernel::Gemv), 2);
        assert_eq!(c.calls(Kernel::Gemm), 0);
        let oracle = eval(&(var("y").t() * var("A").t() * var("A")), &e);
        assert!(out[0].approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn alpha_fused_matmul_scales_output() {
        let n = 8;
        let e = env(n, 15);
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let m1 = gb.matmul(a, b);
        let m2 = gb.matmul(a, b);
        let s = gb.add(m1, m2);
        let mut g = gb.finish(vec![s]);
        optimize(&mut g, &PassConfig::all());
        let (out, c) = counters::measure(|| execute(&g, &e));
        assert_eq!(c.calls(Kernel::Gemm), 1);
        assert_eq!(c.calls(Kernel::GeAdd), 0);
        let oracle = eval(&(var("A") * var("B")), &e).scale(2.0);
        assert!(out[0].approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn multiple_outputs_and_shared_values() {
        let n = 6;
        let e = env(n, 17);
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let ab = gb.matmul(a, b);
        let sum = gb.add(ab, a);
        let g = gb.finish(vec![ab, sum, ab]);
        let out = execute(&g, &e);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2]);
        let oracle = eval(&(var("A") * var("B") + var("A")), &e);
        assert!(out[1].approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn tridiag_node_uses_structured_kernel() {
        let n = 12;
        let mut og = OperandGen::new(19);
        let t = og.tridiagonal::<f64>(n);
        let b = og.matrix::<f64>(n, n);
        let e = Env::new().with("T", t.to_dense()).with("B", b.clone());
        let mut gb = GraphBuilder::new();
        let tn = gb.input("T", n, n);
        let bn = gb.input("B", n, n);
        let r = gb.tridiag_matmul(tn, bn);
        let g = gb.finish(vec![r]);
        let (out, c) = counters::measure(|| execute(&g, &e));
        assert_eq!(c.calls(Kernel::TridiagMatmul), 1);
        assert_eq!(c.calls(Kernel::Gemm), 0);
        let oracle = laab_kernels::reference::tridiag_matmul_naive(&t, &b);
        assert!(out[0].approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn backend_dispatch_swaps_kernels_not_results() {
        // The same optimized graph through all three built-in backends:
        // same sweep, different kernels. The reference backend is the
        // oracle; engine/seed differ from it only by FMA contraction in
        // the products, so agreement is approx (tight), not bitwise.
        let n = 16;
        let e = env(n, 31);
        let mut g = fig3_graph(n);
        optimize(&mut g, &PassConfig::all());
        let schedule = Schedule::new(&g);
        let via_default = execute(&g, &e);
        for reg in laab_backend::registry::builtins() {
            let backend = reg.resolve::<f64>().expect("builtins support f64");
            let out = execute_on(&g, &e, backend);
            let scheduled = execute_scheduled_on(&g, &schedule, &e, backend);
            // Per backend, plain and scheduled sweeps are bitwise equal.
            assert_eq!(out, scheduled, "{} scheduled sweep drifted", reg.name());
            assert!(out[0].approx_eq(&via_default[0], 1e-13), "{} disagrees", reg.name());
        }
    }

    #[test]
    fn scheduled_execution_is_bitwise_identical() {
        let n = 16;
        let e = env(n, 23);
        let mut g = fig3_graph(n);
        optimize(&mut g, &PassConfig::all());
        let plain = execute(&g, &e);
        let schedule = Schedule::new(&g);
        let scheduled = execute_scheduled(&g, &schedule, &e);
        // Same sweep, same kernels: exact equality, not approx.
        assert_eq!(plain, scheduled);
    }

    #[test]
    fn schedule_counts_and_workspace() {
        let n = 8;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let ab = gb.matmul(a, b); // n² live
        let s = gb.add(ab, a); // steals or allocates; schedule counts both
        let g = gb.finish(vec![s]);
        let schedule = Schedule::new(&g);
        assert_eq!(schedule.len(), g.len());
        assert_eq!(schedule.use_counts(), g.use_counts().as_slice());
        assert_eq!(schedule.out_elems(ab), n * n);
        // Peak: `ab` and the add's output are simultaneously live; the
        // borrowed inputs are not counted.
        assert_eq!(schedule.peak_live_elems(), 2 * n * n);
        assert_eq!(schedule.workspace_bytes::<f64>(), 2 * n * n * 8);
        assert_eq!(schedule.workspace_bytes::<f32>(), 2 * n * n * 4);
        assert!(!schedule.is_empty());
    }

    #[test]
    fn schedule_frees_intermediates_in_peak_accounting() {
        // A chain a·b·c·d of square matmuls keeps at most two
        // intermediates live at once (the running product and the next).
        let n = 4;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let mut acc = a;
        for name in ["B", "C", "D"] {
            let m = gb.input(name, n, n);
            acc = gb.matmul(acc, m);
        }
        let g = gb.finish(vec![acc]);
        let schedule = Schedule::new(&g);
        assert_eq!(schedule.peak_live_elems(), 2 * n * n);
    }

    #[test]
    #[should_panic(expected = "schedule was built for a graph")]
    fn stale_schedule_is_rejected() {
        let e = env(8, 29);
        let g_small = fig3_graph(8);
        let schedule = Schedule::new(&g_small);
        let mut g_opt = fig3_graph(8);
        optimize(&mut g_opt, &PassConfig::all());
        let _ = execute_scheduled(&g_opt, &schedule, &e);
    }

    #[test]
    #[should_panic(expected = "feed `A` has shape")]
    fn feed_shape_mismatch_panics() {
        let e = Env::<f64>::new().with("A", Matrix::zeros(3, 3));
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 4, 4);
        let g = gb.finish(vec![a]);
        let _ = execute(&g, &e);
    }
}
