//! DAG node and graph definitions, the builder, and DOT export.

use laab_expr::Shape;
use laab_kernels::Trans;

/// Index of a node within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in its graph's `nodes` vector.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The operation computed by a node.
///
/// Scalar attributes (`alpha` in `MatMul`, the factor in `Scale`) are stored
/// as IEEE bit patterns so nodes are `Eq + Hash` for the CSE pass.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A fed operand (the circular I/O nodes of the paper's Fig. 3).
    Input(String),
    /// The `n×n` identity constant.
    Identity(usize),
    /// `alpha · op(a) · op(b)` — transposition and scaling are kernel
    /// attributes, not data movement, mirroring BLAS GEMM.
    MatMul {
        /// Transposition of the first operand.
        ta: Trans,
        /// Transposition of the second operand.
        tb: Trans,
        /// Scaling factor (IEEE bits of an `f64`).
        alpha_bits: u64,
    },
    /// Elementwise sum.
    Add,
    /// Elementwise difference.
    Sub,
    /// Scalar scaling (IEEE bits of an `f64`).
    Scale(u64),
    /// Explicit transpose materialization (survives optimization only when
    /// the consumer cannot absorb it).
    Transpose,
    /// Element extraction `x[i, j]` (a `1×1` result).
    Elem(usize, usize),
    /// Row extraction `x[i, :]`.
    Row(usize),
    /// Column extraction `x[:, j]`.
    Col(usize),
    /// Vertical concatenation.
    VCat,
    /// Horizontal concatenation.
    HCat,
    /// Block-diagonal assembly.
    BlockDiag,
    /// The specialized tridiagonal product (`tf.linalg.tridiagonal_matmul`
    /// analogue): first input is the dense tridiagonal operand, second the
    /// dense right-hand side.
    TridiagMatMul,
}

impl OpKind {
    /// The `alpha` attribute of a `MatMul` (1.0 for other kinds).
    pub fn alpha(&self) -> f64 {
        match self {
            OpKind::MatMul { alpha_bits, .. } => f64::from_bits(*alpha_bits),
            _ => 1.0,
        }
    }

    /// Short label for DOT export and debugging.
    pub fn label(&self) -> String {
        match self {
            OpKind::Input(name) => name.clone(),
            OpKind::Identity(n) => format!("I{n}"),
            OpKind::MatMul { ta, tb, alpha_bits } => {
                let mut s = String::from("matmul");
                if *ta == Trans::Yes {
                    s.push_str("[ta]");
                }
                if *tb == Trans::Yes {
                    s.push_str("[tb]");
                }
                let alpha = f64::from_bits(*alpha_bits);
                if alpha != 1.0 {
                    s.push_str(&format!("[x{alpha}]"));
                }
                s
            }
            OpKind::Add => "add".into(),
            OpKind::Sub => "sub".into(),
            OpKind::Scale(bits) => format!("scale[{}]", f64::from_bits(*bits)),
            OpKind::Transpose => "transpose".into(),
            OpKind::Elem(i, j) => format!("elem[{i},{j}]"),
            OpKind::Row(i) => format!("row[{i}]"),
            OpKind::Col(j) => format!("col[{j}]"),
            OpKind::VCat => "vcat".into(),
            OpKind::HCat => "hcat".into(),
            OpKind::BlockDiag => "blkdiag".into(),
            OpKind::TridiagMatMul => "tridiag_matmul".into(),
        }
    }
}

/// One DAG node: an operation, its operand edges, and its inferred shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// What this node computes.
    pub kind: OpKind,
    /// Operand nodes (order matters).
    pub inputs: Vec<NodeId>,
    /// Statically inferred output shape.
    pub shape: Shape,
}

/// A computational DAG.
///
/// Nodes are stored in topological order (every input index is smaller than
/// the node's own index); the builder and all passes maintain this
/// invariant, so execution is a single forward sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// The nodes, topologically ordered.
    pub nodes: Vec<Node>,
    /// The fetched outputs.
    pub outputs: Vec<NodeId>,
}

impl Graph {
    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Count nodes matching a predicate (tests assert the paper's node
    /// counts, e.g. "one matmul was removed by CSE").
    pub fn count_kind(&self, pred: impl Fn(&OpKind) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.kind)).count()
    }

    /// Number of `MatMul` nodes (the paper's unit of analysis).
    pub fn matmul_count(&self) -> usize {
        self.count_kind(|k| matches!(k, OpKind::MatMul { .. }))
    }

    /// Per-node use counts (how many operand edges point at each node).
    pub fn use_counts(&self) -> Vec<u32> {
        let mut uses = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for inp in &node.inputs {
                uses[inp.idx()] += 1;
            }
        }
        for out in &self.outputs {
            uses[out.idx()] += 1;
        }
        uses
    }

    /// Verify the topological invariant (inputs precede users). Used by
    /// pass tests.
    pub fn check_topology(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            for inp in &node.inputs {
                if inp.idx() >= i {
                    return Err(format!(
                        "node {i} ({}) uses input {} which does not precede it",
                        node.kind.label(),
                        inp.idx()
                    ));
                }
            }
        }
        for out in &self.outputs {
            if out.idx() >= self.nodes.len() {
                return Err(format!("output {} out of range", out.idx()));
            }
        }
        Ok(())
    }

    /// Graphviz DOT rendering (reproduces the paper's Figs. 3 & 4: circles
    /// for I/O, rounded boxes for operations).
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{title}\" {{");
        let _ = writeln!(s, "  rankdir=TB;");
        for (i, node) in self.nodes.iter().enumerate() {
            let (shape_attr, label) = match &node.kind {
                OpKind::Input(name) => ("circle", name.clone()),
                k => ("box, style=rounded", k.label()),
            };
            let _ = writeln!(s, "  n{i} [shape={shape_attr}, label=\"{label}\"];");
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for inp in &node.inputs {
                let _ = writeln!(s, "  n{} -> n{i};", inp.idx());
            }
        }
        for (oi, out) in self.outputs.iter().enumerate() {
            let _ = writeln!(s, "  ret{oi} [shape=circle, label=\"ret\"];");
            let _ = writeln!(s, "  n{} -> ret{oi};", out.idx());
        }
        s.push_str("}\n");
        s
    }
}

/// Appends nodes to a [`Graph`] with shape checking.
///
/// The builder performs **no deduplication and no simplification** — it
/// records exactly what the user's trace did, like TF's initial graph in
/// Fig. 3. All cleverness lives in [`passes`](crate::passes).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: OpKind, inputs: Vec<NodeId>, shape: Shape) -> NodeId {
        let id = NodeId(self.graph.nodes.len() as u32);
        self.graph.nodes.push(Node { kind, inputs, shape });
        id
    }

    /// Shape of an already-built node.
    pub fn shape(&self, id: NodeId) -> Shape {
        self.graph.node(id).shape
    }

    /// Declare a fed input.
    pub fn input(&mut self, name: &str, rows: usize, cols: usize) -> NodeId {
        self.push(OpKind::Input(name.to_string()), vec![], Shape::new(rows, cols))
    }

    /// The `n×n` identity constant.
    pub fn identity(&mut self, n: usize) -> NodeId {
        self.push(OpKind::Identity(n), vec![], Shape::new(n, n))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa.cols, sb.rows, "matmul: dimension mismatch {sa} · {sb}");
        self.push(
            OpKind::MatMul { ta: Trans::No, tb: Trans::No, alpha_bits: 1.0f64.to_bits() },
            vec![a, b],
            Shape::new(sa.rows, sb.cols),
        )
    }

    /// Explicit transpose node (the optimizer folds it into consumers where
    /// possible).
    pub fn transpose(&mut self, x: NodeId) -> NodeId {
        let s = self.shape(x);
        self.push(OpKind::Transpose, vec![x], s.t())
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa, sb, "add: shape mismatch {sa} vs {sb}");
        self.push(OpKind::Add, vec![a, b], sa)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa, sb, "sub: shape mismatch {sa} vs {sb}");
        self.push(OpKind::Sub, vec![a, b], sa)
    }

    /// Scalar scaling `c · x`.
    pub fn scale(&mut self, c: f64, x: NodeId) -> NodeId {
        let s = self.shape(x);
        self.push(OpKind::Scale(c.to_bits()), vec![x], s)
    }

    /// Element extraction `x[i, j]`.
    pub fn elem(&mut self, x: NodeId, i: usize, j: usize) -> NodeId {
        let s = self.shape(x);
        assert!(i < s.rows && j < s.cols, "elem: ({i},{j}) out of bounds for {s}");
        self.push(OpKind::Elem(i, j), vec![x], Shape::new(1, 1))
    }

    /// Row extraction `x[i, :]`.
    pub fn row(&mut self, x: NodeId, i: usize) -> NodeId {
        let s = self.shape(x);
        assert!(i < s.rows, "row: {i} out of bounds for {s}");
        self.push(OpKind::Row(i), vec![x], Shape::new(1, s.cols))
    }

    /// Column extraction `x[:, j]`.
    pub fn col(&mut self, x: NodeId, j: usize) -> NodeId {
        let s = self.shape(x);
        assert!(j < s.cols, "col: {j} out of bounds for {s}");
        self.push(OpKind::Col(j), vec![x], Shape::new(s.rows, 1))
    }

    /// Vertical concatenation `[a; b]`.
    pub fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa.cols, sb.cols, "vcat: column mismatch {sa} vs {sb}");
        self.push(OpKind::VCat, vec![a, b], Shape::new(sa.rows + sb.rows, sa.cols))
    }

    /// Horizontal concatenation `[a, b]`.
    pub fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa.rows, sb.rows, "hcat: row mismatch {sa} vs {sb}");
        self.push(OpKind::HCat, vec![a, b], Shape::new(sa.rows, sa.cols + sb.cols))
    }

    /// Block-diagonal assembly.
    pub fn block_diag(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        self.push(OpKind::BlockDiag, vec![a, b], Shape::new(sa.rows + sb.rows, sa.cols + sb.cols))
    }

    /// The specialized tridiagonal product node (first operand must be the
    /// dense tridiagonal matrix).
    pub fn tridiag_matmul(&mut self, t: NodeId, b: NodeId) -> NodeId {
        let (st, sb) = (self.shape(t), self.shape(b));
        assert!(st.is_square(), "tridiag_matmul: operand must be square");
        assert_eq!(st.cols, sb.rows, "tridiag_matmul: dimension mismatch");
        self.push(OpKind::TridiagMatMul, vec![t, b], Shape::new(st.rows, sb.cols))
    }

    /// Finish the graph, fetching `outputs`.
    pub fn finish(mut self, outputs: Vec<NodeId>) -> Graph {
        for out in &outputs {
            assert!(out.idx() < self.graph.nodes.len(), "finish: unknown output node");
        }
        self.graph.outputs = outputs;
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Fig. 3 initial graph for (AᵀB)ᵀ(AᵀB): the user
    /// trace computes AᵀB twice.
    fn fig3_initial(n: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let at = gb.transpose(a);
        let t0 = gb.matmul(at, b);
        let at2 = gb.transpose(a);
        let t1 = gb.matmul(at2, b);
        let t0t = gb.transpose(t0);
        let ret = gb.matmul(t0t, t1);
        gb.finish(vec![ret])
    }

    #[test]
    fn builder_records_duplicates_verbatim() {
        let g = fig3_initial(8);
        // Initial graph: 3 matmuls, 3 transposes — no dedup at trace time.
        assert_eq!(g.matmul_count(), 3);
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Transpose)), 3);
        g.check_topology().unwrap();
    }

    #[test]
    fn shapes_inferred() {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 3, 5);
        let b = gb.input("B", 3, 7);
        let at = gb.transpose(a);
        let m = gb.matmul(at, b);
        assert_eq!(gb.shape(m), Shape::new(5, 7));
        let r = gb.row(m, 2);
        assert_eq!(gb.shape(r), Shape::new(1, 7));
        let g = gb.finish(vec![m]);
        assert_eq!(g.node(g.outputs[0]).shape, Shape::new(5, 7));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 3, 5);
        let b = gb.input("B", 3, 7);
        let _ = gb.matmul(a, b);
    }

    #[test]
    fn use_counts_include_outputs() {
        let g = fig3_initial(4);
        let uses = g.use_counts();
        // Input A feeds two transpose nodes.
        assert_eq!(uses[0], 2);
        // The final matmul is used once (as the output).
        assert_eq!(uses[g.outputs[0].idx()], 1);
    }

    #[test]
    fn dot_export_mentions_nodes_and_edges() {
        let g = fig3_initial(4);
        let dot = g.to_dot("fig3");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("matmul"));
        assert!(dot.contains("transpose"));
        assert!(dot.contains("shape=circle")); // I/O nodes are circles
        assert!(dot.contains("ret"));
    }

    #[test]
    fn concat_and_structured_builders() {
        let mut gb = GraphBuilder::new();
        let a1 = gb.input("A1", 2, 2);
        let a2 = gb.input("A2", 3, 3);
        let bd = gb.block_diag(a1, a2);
        assert_eq!(gb.shape(bd), Shape::new(5, 5));
        let b1 = gb.input("B1", 2, 4);
        let b2 = gb.input("B2", 3, 4);
        let bb = gb.vcat(b1, b2);
        assert_eq!(gb.shape(bb), Shape::new(5, 4));
        let prod = gb.matmul(bd, bb);
        assert_eq!(gb.shape(prod), Shape::new(5, 4));

        let t = gb.input("T", 5, 5);
        let tm = gb.tridiag_matmul(t, bb);
        assert_eq!(gb.shape(tm), Shape::new(5, 4));
        gb.finish(vec![prod, tm]).check_topology().unwrap();
    }
}
