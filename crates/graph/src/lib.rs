//! # laab-graph — the computational-graph IR (the "Graph mode" machinery)
//!
//! The paper's Sec. III describes the two execution modes of TF/PyT: Eager
//! (op-by-op) and Graph (trace to a DAG, optimize, execute). This crate is
//! the Graph half of the analogue framework:
//!
//! * [`Graph`] / [`GraphBuilder`] — a DAG of matrix operations with static
//!   shape inference. Tracing a user function appends nodes *without*
//!   deduplication, producing the "Initial Graph" of the paper's Fig. 3;
//!   loops in user code unroll at trace time (like `tf.function` retracing
//!   a Python `range(3)` loop), which is what makes loop-invariant code
//!   motion reduce to CSE.
//! * [`passes`] — the Grappler-analogue optimizer: transpose folding into
//!   GEMM flags, hash-consing CSE (duplicate-node elimination, Fig. 3's
//!   "Optimized Graph"), scale fusion (`S + S → 2·S`, folded into the GEMM
//!   `alpha`, the BLAS observation in Experiment 1), and dead-code
//!   elimination. The pipeline is deliberately *exactly* this inventory —
//!   no chain re-association, no property dispatch, no distributivity —
//!   because that is what the paper measures the frameworks doing.
//! * [`exec`] — a reference-counting executor that walks the DAG in
//!   topological order and dispatches each kernel-backed node through a
//!   `laab-backend` execution backend (the live engine by default;
//!   [`execute_on`] takes any registered backend), recording kernel calls
//!   and FLOPs for the analytical tables. For systems that re-execute one
//!   graph many times (the `laab-serve` plan cache), [`Schedule`]
//!   precomputes the structural bookkeeping — use counts and the
//!   peak-live workspace layout — and [`execute_scheduled`] /
//!   [`execute_scheduled_on`] re-run the identical sweep against fresh
//!   operand bindings.
//! * [`batch`] — batched (multi-environment) execution for serving
//!   systems that coalesce same-signature requests: [`BatchAnalysis`]
//!   classifies each node shared/stacked and proves RHS-stackability,
//!   and [`execute_batched_on`] runs one stacked sweep (a multi-RHS
//!   product for every shared·varying matmul) with a bitwise-identical
//!   per-request fallback when stacking is illegal.
//! * [`Graph::to_dot`] — Graphviz export regenerating the paper's
//!   Figs. 3 & 4.

#![deny(missing_docs)]

pub mod batch;
pub mod exec;
mod ir;
pub mod passes;

pub use batch::{execute_batched_on, BatchAnalysis, BatchStatus};
pub use exec::{execute, execute_on, execute_scheduled, execute_scheduled_on, Schedule};
pub use ir::{Graph, GraphBuilder, Node, NodeId, OpKind};
pub use passes::{optimize, PassConfig, PassStats};
