//! The Grappler-analogue graph optimizer.
//!
//! The pipeline implements exactly the optimization inventory the paper
//! observes in TF/PyT graph mode — and nothing more:
//!
//! 1. **Transpose folding** — explicit `transpose` nodes feeding a `matmul`
//!    become kernel flags (`GEMM`'s `transa`/`transb`), so `AᵀB` costs one
//!    GEMM (Table I, row 1). Double transposes cancel everywhere.
//! 2. **CSE** — hash-consing over `(kind, inputs)`: duplicate nodes that
//!    "compute the exact same operation for the same input data" are merged
//!    (the Fig. 3 optimization). Because the key is structural, the
//!    non-parenthesized chain of Fig. 4 is *not* deduplicated — reproducing
//!    the paper's central CSE finding.
//! 3. **Scale fusion** — `x + x → 2·x`, nested scalings combine, and a
//!    scaling of a single-use `matmul` folds into the kernel's `alpha`
//!    (the "no additional overhead" BLAS observation in Experiment 1).
//! 4. **DCE** — unreachable nodes are dropped.
//!
//! Chain re-association, distributivity, property dispatch and slicing
//! push-down are deliberately absent (Experiments 2–5 show the frameworks
//! lack them); they live in `laab-rewrite` instead.

use std::collections::HashMap;

use crate::ir::{Graph, NodeId, OpKind};

/// Which passes to run (the ablation benchmark toggles these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Fold `transpose` nodes into `matmul` flags.
    pub fold_transpose: bool,
    /// Hash-consing common-subexpression elimination.
    pub cse: bool,
    /// `x+x → 2x` and scale-into-`alpha` fusion.
    pub fuse_scale: bool,
    /// Dead-code elimination.
    pub dce: bool,
}

impl PassConfig {
    /// The full graph-mode pipeline (what `@tf.function` enables).
    pub fn all() -> Self {
        Self { fold_transpose: true, cse: true, fuse_scale: true, dce: true }
    }

    /// No optimization at all — executing the trace verbatim (the paper's
    /// Eager-mode cost model).
    pub fn none() -> Self {
        Self { fold_transpose: false, cse: false, fuse_scale: false, dce: false }
    }
}

impl Default for PassConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// What the pipeline did (asserted by tests, reported by the ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Transpose nodes absorbed into matmul flags (including cancelled
    /// double transposes).
    pub transposes_folded: usize,
    /// Nodes merged by CSE.
    pub nodes_deduped: usize,
    /// Scale fusions applied.
    pub scales_fused: usize,
    /// Nodes removed by DCE.
    pub nodes_removed: usize,
}

/// Run the configured pipeline to a fixpoint.
///
/// The passes interact — scale fusion can rewire a matmul onto a transpose
/// node that folding must then absorb, and CSE can create the identical
/// operands that `x+x → 2x` needs — so the sequence repeats until the graph
/// stops changing (bounded; each iteration strictly shrinks or stabilizes
/// the graph in practice).
pub fn optimize(g: &mut Graph, cfg: &PassConfig) -> PassStats {
    let mut stats = PassStats::default();
    for _ in 0..8 {
        let before = g.clone();
        if cfg.fold_transpose {
            stats.transposes_folded += fold_transpose(g);
        }
        if cfg.cse {
            stats.nodes_deduped += cse(g);
        }
        if cfg.fuse_scale {
            stats.scales_fused += fuse_scale(g);
        }
        if cfg.dce {
            stats.nodes_removed += dce(g);
        }
        if *g == before {
            break;
        }
    }
    debug_assert_eq!(g.check_topology(), Ok(()));
    stats
}

/// Strip `transpose` chains feeding matmuls into flags and cancel
/// double transposes on every edge. Returns the number of foldings.
pub fn fold_transpose(g: &mut Graph) -> usize {
    let mut folded = 0;

    // Cancel transpose(transpose(x)) on every edge first.
    for i in 0..g.nodes.len() {
        for slot in 0..g.nodes[i].inputs.len() {
            loop {
                let inp = g.nodes[i].inputs[slot];
                let OpKind::Transpose = g.nodes[inp.idx()].kind else { break };
                let inner = g.nodes[inp.idx()].inputs[0];
                let OpKind::Transpose = g.nodes[inner.idx()].kind else { break };
                g.nodes[i].inputs[slot] = g.nodes[inner.idx()].inputs[0];
                folded += 1;
            }
        }
    }
    for slot in 0..g.outputs.len() {
        loop {
            let out = g.outputs[slot];
            let OpKind::Transpose = g.nodes[out.idx()].kind else { break };
            let inner = g.nodes[out.idx()].inputs[0];
            let OpKind::Transpose = g.nodes[inner.idx()].kind else { break };
            g.outputs[slot] = g.nodes[inner.idx()].inputs[0];
            folded += 1;
        }
    }

    // Absorb remaining single transposes into matmul flags.
    for i in 0..g.nodes.len() {
        let OpKind::MatMul { mut ta, mut tb, alpha_bits } = g.nodes[i].kind else {
            continue;
        };
        let mut a = g.nodes[i].inputs[0];
        while let OpKind::Transpose = g.nodes[a.idx()].kind {
            a = g.nodes[a.idx()].inputs[0];
            ta = ta.flip();
            folded += 1;
        }
        let mut b = g.nodes[i].inputs[1];
        while let OpKind::Transpose = g.nodes[b.idx()].kind {
            b = g.nodes[b.idx()].inputs[0];
            tb = tb.flip();
            folded += 1;
        }
        g.nodes[i].kind = OpKind::MatMul { ta, tb, alpha_bits };
        g.nodes[i].inputs = vec![a, b];
    }
    folded
}

/// Hash-consing CSE: one forward sweep merging nodes with identical
/// `(kind, canonical inputs)`. Returns the number of merged nodes.
pub fn cse(g: &mut Graph) -> usize {
    let n = g.nodes.len();
    let mut remap: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut seen: HashMap<(OpKind, Vec<NodeId>), NodeId> = HashMap::new();
    let mut deduped = 0;

    for i in 0..n {
        let canon: Vec<NodeId> = g.nodes[i].inputs.iter().map(|id| remap[id.idx()]).collect();
        g.nodes[i].inputs = canon.clone();
        let key = (g.nodes[i].kind.clone(), canon);
        match seen.get(&key) {
            Some(&prev) => {
                remap[i] = prev;
                deduped += 1;
            }
            None => {
                seen.insert(key, NodeId(i as u32));
            }
        }
    }
    for out in &mut g.outputs {
        *out = remap[out.idx()];
    }
    deduped
}

/// Scale fusions. Runs to a fixpoint; returns the number of rewrites.
pub fn fuse_scale(g: &mut Graph) -> usize {
    let mut fused = 0;
    loop {
        let mut changed = false;
        let uses = g.use_counts();
        for i in 0..g.nodes.len() {
            match g.nodes[i].kind.clone() {
                // x + x  →  2·x (the duplicate-summand case of Experiment 1;
                // only fires after CSE has unified the two summands).
                OpKind::Add if g.nodes[i].inputs[0] == g.nodes[i].inputs[1] => {
                    let x = g.nodes[i].inputs[0];
                    g.nodes[i].kind = OpKind::Scale(2.0f64.to_bits());
                    g.nodes[i].inputs = vec![x];
                    fused += 1;
                    changed = true;
                }
                // c·(d·x) → (c·d)·x
                OpKind::Scale(c_bits) => {
                    let inner = g.nodes[i].inputs[0];
                    match g.nodes[inner.idx()].kind.clone() {
                        OpKind::Scale(d_bits) => {
                            let c = f64::from_bits(c_bits) * f64::from_bits(d_bits);
                            let x = g.nodes[inner.idx()].inputs[0];
                            g.nodes[i].kind = OpKind::Scale(c.to_bits());
                            g.nodes[i].inputs = vec![x];
                            fused += 1;
                            changed = true;
                        }
                        // c·matmul(a, b) → matmul[alpha=c](a, b) when the
                        // product has no other consumer ("scaling can be
                        // done alongside multiplication without additional
                        // overheads" — Experiment 1).
                        OpKind::MatMul { ta, tb, alpha_bits } if uses[inner.idx()] == 1 => {
                            let alpha = f64::from_bits(alpha_bits) * f64::from_bits(c_bits);
                            let inputs = g.nodes[inner.idx()].inputs.clone();
                            g.nodes[i].kind =
                                OpKind::MatMul { ta, tb, alpha_bits: alpha.to_bits() };
                            g.nodes[i].inputs = inputs;
                            fused += 1;
                            changed = true;
                        }
                        _ => {}
                    }
                }
                // matmul(c·x, y) → matmul[alpha·c](x, y), either operand.
                OpKind::MatMul { ta, tb, alpha_bits } => {
                    for slot in 0..2 {
                        let inp = g.nodes[i].inputs[slot];
                        if let OpKind::Scale(c_bits) = g.nodes[inp.idx()].kind {
                            let alpha = f64::from_bits(alpha_bits) * f64::from_bits(c_bits);
                            let x = g.nodes[inp.idx()].inputs[0];
                            g.nodes[i].kind =
                                OpKind::MatMul { ta, tb, alpha_bits: alpha.to_bits() };
                            g.nodes[i].inputs[slot] = x;
                            fused += 1;
                            changed = true;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        if !changed {
            return fused;
        }
    }
}

/// Remove nodes unreachable from the outputs, compacting indices.
/// Returns the number of nodes removed.
pub fn dce(g: &mut Graph) -> usize {
    let n = g.nodes.len();
    let mut live = vec![false; n];
    let mut stack: Vec<NodeId> = g.outputs.clone();
    while let Some(id) = stack.pop() {
        if live[id.idx()] {
            continue;
        }
        live[id.idx()] = true;
        stack.extend(g.nodes[id.idx()].inputs.iter().copied());
    }
    let removed = live.iter().filter(|&&l| !l).count();
    if removed == 0 {
        return 0;
    }
    let mut remap = vec![NodeId(u32::MAX); n];
    let mut kept = Vec::with_capacity(n - removed);
    for (i, node) in g.nodes.drain(..).enumerate() {
        if live[i] {
            remap[i] = NodeId(kept.len() as u32);
            kept.push(node);
        }
    }
    for node in &mut kept {
        for inp in &mut node.inputs {
            *inp = remap[inp.idx()];
        }
    }
    for out in &mut g.outputs {
        *out = remap[out.idx()];
    }
    g.nodes = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GraphBuilder;
    use laab_kernels::Trans;

    /// Fig. 3: (AᵀB)ᵀ(AᵀB) traced with the duplicate sub-expression.
    fn fig3(n: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let at = gb.transpose(a);
        let t0 = gb.matmul(at, b);
        let at2 = gb.transpose(a);
        let t1 = gb.matmul(at2, b);
        let t0t = gb.transpose(t0);
        let ret = gb.matmul(t0t, t1);
        gb.finish(vec![ret])
    }

    /// Fig. 4: the flat chain (AᵀB)ᵀ Aᵀ B — no duplicate subtree.
    fn fig4(n: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let at = gb.transpose(a);
        let m1 = gb.matmul(at, b);
        let m1t = gb.transpose(m1);
        let at2 = gb.transpose(a);
        let m2 = gb.matmul(m1t, at2);
        let m3 = gb.matmul(m2, b);
        gb.finish(vec![m3])
    }

    #[test]
    fn fig3_cse_removes_one_matmul() {
        let mut g = fig3(8);
        assert_eq!(g.matmul_count(), 3);
        let stats = optimize(&mut g, &PassConfig::all());
        // The optimized graph of Fig. 3: two matmuls, zero transposes.
        assert_eq!(g.matmul_count(), 2);
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Transpose)), 0);
        assert!(stats.nodes_deduped >= 1);
        assert!(stats.nodes_removed >= 1);
        g.check_topology().unwrap();
    }

    #[test]
    fn fig4_chain_not_deduplicated() {
        let mut g = fig4(8);
        optimize(&mut g, &PassConfig::all());
        // The paper's Fig. 4 finding: the flat chain keeps all 3 matmuls.
        assert_eq!(g.matmul_count(), 3);
    }

    #[test]
    fn transpose_folds_to_flags() {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 4, 6);
        let b = gb.input("B", 4, 7);
        let at = gb.transpose(a);
        let m = gb.matmul(at, b);
        let mut g = gb.finish(vec![m]);
        optimize(&mut g, &PassConfig::all());
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Transpose)), 0);
        let mm = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, OpKind::MatMul { .. }))
            .expect("matmul survives");
        match mm.kind {
            OpKind::MatMul { ta, tb, .. } => {
                assert_eq!(ta, Trans::Yes);
                assert_eq!(tb, Trans::No);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn double_transpose_cancels() {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 3, 5);
        let t1 = gb.transpose(a);
        let t2 = gb.transpose(t1);
        let s = gb.scale(2.0, t2);
        let mut g = gb.finish(vec![s]);
        optimize(&mut g, &PassConfig::all());
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Transpose)), 0);
        // scale feeds directly from the input now.
        let scale_node = g.nodes.iter().find(|n| matches!(n.kind, OpKind::Scale(_))).unwrap();
        assert!(matches!(g.node(scale_node.inputs[0]).kind, OpKind::Input(_)));
    }

    #[test]
    fn add_same_node_becomes_alpha_fused_matmul() {
        // AᵀB + AᵀB (Table II, E1): after CSE the add has identical
        // operands; fusion turns it into a single GEMM with alpha = 2.
        let n = 8;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let at1 = gb.transpose(a);
        let m1 = gb.matmul(at1, b);
        let at2 = gb.transpose(a);
        let m2 = gb.matmul(at2, b);
        let sum = gb.add(m1, m2);
        let mut g = gb.finish(vec![sum]);
        optimize(&mut g, &PassConfig::all());
        assert_eq!(g.matmul_count(), 1, "one GEMM total");
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Add)), 0);
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Scale(_))), 0);
        let mm = g.nodes.iter().find(|n| matches!(n.kind, OpKind::MatMul { .. })).unwrap();
        assert_eq!(mm.kind.alpha(), 2.0, "scaling folded into GEMM alpha");
    }

    #[test]
    fn nested_scales_combine() {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 3, 3);
        let s1 = gb.scale(2.0, a);
        let s2 = gb.scale(3.0, s1);
        let mut g = gb.finish(vec![s2]);
        optimize(&mut g, &PassConfig::all());
        let scales: Vec<_> =
            g.nodes.iter().filter(|n| matches!(n.kind, OpKind::Scale(_))).collect();
        assert_eq!(scales.len(), 1);
        match scales[0].kind {
            OpKind::Scale(bits) => assert_eq!(f64::from_bits(bits), 6.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn scale_into_matmul_requires_single_use() {
        // The product is consumed twice: folding alpha into it would change
        // the other consumer's value — must NOT fuse.
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 4, 4);
        let b = gb.input("B", 4, 4);
        let m = gb.matmul(a, b);
        let s = gb.scale(2.0, m);
        let both = gb.add(s, m);
        let mut g = gb.finish(vec![both]);
        optimize(&mut g, &PassConfig::all());
        let mm = g.nodes.iter().find(|n| matches!(n.kind, OpKind::MatMul { .. })).unwrap();
        assert_eq!(mm.kind.alpha(), 1.0, "shared matmul must keep alpha = 1");
        assert_eq!(g.count_kind(|k| matches!(k, OpKind::Scale(_))), 1);
    }

    #[test]
    fn dce_removes_unreachable() {
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", 4, 4);
        let b = gb.input("B", 4, 4);
        let _dead = gb.matmul(a, b);
        let live = gb.add(a, b);
        let mut g = gb.finish(vec![live]);
        let removed = dce(&mut g);
        assert_eq!(removed, 1);
        assert_eq!(g.matmul_count(), 0);
        g.check_topology().unwrap();
    }

    #[test]
    fn pass_config_none_is_identity() {
        let mut g = fig3(4);
        let before = g.clone();
        let stats = optimize(&mut g, &PassConfig::none());
        assert_eq!(g, before);
        assert_eq!(stats, PassStats::default());
    }

    #[test]
    fn unrolled_loop_invariant_is_hoisted_by_cse() {
        // Experiment 5 (loop-invariant code motion): the "naive" user code
        // recomputes A·B in every unrolled iteration; CSE leaves one.
        let n = 6;
        let mut gb = GraphBuilder::new();
        let a = gb.input("A", n, n);
        let b = gb.input("B", n, n);
        let mut outs = Vec::new();
        for i in 0..3 {
            let ab = gb.matmul(a, b); // re-traced each iteration
            let v = gb.input(&format!("v{i}"), n, 1);
            let vt = gb.transpose(v);
            let outer = gb.matmul(v, vt);
            let y = gb.add(ab, outer);
            outs.push(y);
        }
        let mut g = gb.finish(outs);
        assert_eq!(g.matmul_count(), 6);
        optimize(&mut g, &PassConfig::all());
        // One hoisted A·B + three distinct outer products.
        assert_eq!(g.matmul_count(), 4);
    }
}
