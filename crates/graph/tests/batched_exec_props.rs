//! Batched-execution properties: coalescing `B` same-signature requests
//! into one stacked sweep must be indistinguishable from serving each
//! request solo.
//!
//! For random RHS-stackable plans (chains/residual shapes over a shared
//! `H` and varying `x`/`y`), random batch sizes 1–32, and **every
//! registered backend**:
//!
//! * the `reference` backend (default per-item `matmul_batched` loop) is
//!   **bitwise** identical to sequential per-request execution;
//! * GEMM-free plans (adds/subs/scales only) are **bitwise** on every
//!   backend — per-part dispatch reuses the identical elementwise entry
//!   points;
//! * backends overriding the batched product (the engine's stacked
//!   multi-RHS GEMM versus its solo GEMV dispatch) stay within a
//!   documented ULP bound: relative distance ≤ 1e-11 (`f64`) / 1e-4
//!   (`f32`) — FMA-chain drift only, never structural;
//! * illegal-stacking plans (varying left operands, transposed or sliced
//!   varying values) are refused by the analysis and fall back to the
//!   sequential path **bitwise**, on every backend.

use laab_dense::gen::OperandGen;
use laab_dense::Scalar;
use laab_expr::eval::Env;
use laab_graph::{
    execute_batched_on, execute_scheduled_on, optimize, BatchAnalysis, Graph, GraphBuilder, NodeId,
    PassConfig, Schedule,
};
use proptest::prelude::*;

fn is_varying(name: &str) -> bool {
    name == "x" || name == "y"
}

fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random RHS-stackable trace: shared `H` (`n×n`), varying `x`, `y`
/// (`n×1`), combined by shared·varying products (plain and transposed
/// `H`), varying±varying sums, and scalings. `gemm_free` restricts the
/// draw to the elementwise ops.
fn random_stackable_graph(seed: u64, ops: usize, n: usize, gemm_free: bool) -> Graph {
    let mut state = seed | 1;
    let mut gb = GraphBuilder::new();
    let h = gb.input("H", n, n);
    let x = gb.input("x", n, 1);
    let y = gb.input("y", n, 1);
    let mut stacked: Vec<NodeId> = vec![x, y];
    for _ in 0..ops {
        let pick =
            |state: &mut u64, pool: &[NodeId]| pool[(next(state) % pool.len() as u64) as usize];
        let kinds = if gemm_free { 3 } else { 5 };
        let node = match next(&mut state) % kinds {
            0 => {
                let (a, b) = (pick(&mut state, &stacked), pick(&mut state, &stacked));
                gb.add(a, b)
            }
            1 => {
                let (a, b) = (pick(&mut state, &stacked), pick(&mut state, &stacked));
                gb.sub(a, b)
            }
            2 => {
                let v = pick(&mut state, &stacked);
                gb.scale(((next(&mut state) % 7) as f64) / 2.0 - 1.5, v)
            }
            3 => {
                let v = pick(&mut state, &stacked);
                gb.matmul(h, v)
            }
            _ => {
                let v = pick(&mut state, &stacked);
                let ht = gb.transpose(h);
                gb.matmul(ht, v)
            }
        };
        stacked.push(node);
    }
    let out = *stacked.last().unwrap();
    let mut g = gb.finish(vec![out]);
    optimize(&mut g, &PassConfig::all());
    g
}

/// A trace guaranteed to be stacking-illegal: a varying Gram product
/// (`xᵀ·x`, stacked left operand after transpose folding), optionally
/// post-processed by legal shared ops.
fn random_illegal_graph(seed: u64, n: usize) -> Graph {
    let mut state = seed | 1;
    let mut gb = GraphBuilder::new();
    let _h = gb.input("H", n, n);
    let x = gb.input("x", n, 1);
    let xt = gb.transpose(x);
    let gram = gb.matmul(xt, x);
    let out = if next(&mut state).is_multiple_of(2) { gb.scale(2.0, gram) } else { gram };
    let mut g = gb.finish(vec![out]);
    optimize(&mut g, &PassConfig::all());
    g
}

/// `q` environments sharing `H`, each with its own `x`/`y` payload.
fn envs<T: Scalar>(n: usize, q: usize, seed: u64) -> Vec<Env<T>> {
    let mut shared = OperandGen::new(seed);
    let h = shared.matrix::<T>(n, n);
    (0..q)
        .map(|i| {
            let mut g = OperandGen::new(seed ^ (0xBA7C4 + i as u64));
            Env::new().with("H", h.clone()).with("x", g.matrix(n, 1)).with("y", g.matrix(n, 1))
        })
        .collect()
}

/// Batched and solo outputs for every registered backend at precision `T`;
/// `tol = 0` demands bitwise equality, otherwise a relative bound.
fn check_all_backends<T: laab_backend::BackendScalar>(
    g: &Graph,
    n: usize,
    q: usize,
    seed: u64,
    tol: f64,
) {
    let schedule = Schedule::new(g);
    let analysis = BatchAnalysis::analyze(g, is_varying);
    let owned = envs::<T>(n, q, seed);
    let refs: Vec<&Env<T>> = owned.iter().collect();
    for reg in laab_backend::registry::all() {
        let backend = reg.resolve::<T>().expect("registered backends support both dtypes");
        let batched = execute_batched_on(g, &schedule, &analysis, &refs, backend);
        assert_eq!(batched.len(), q);
        for (env, b) in refs.iter().zip(&batched) {
            let solo = execute_scheduled_on(g, &schedule, env, backend);
            if tol == 0.0 || reg.name() == "reference" {
                assert_eq!(b, &solo, "{}: batched must be bitwise solo", reg.name());
            } else {
                for (bm, sm) in b.iter().zip(&solo) {
                    assert!(
                        bm.approx_eq(sm, tol),
                        "{}: batched drifted past {tol} (rel {})",
                        reg.name(),
                        bm.rel_dist(sm)
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// RHS-stackable plans: batched ≡ solo within the documented ULP
    /// bound on every backend, bitwise on the reference oracle, for
    /// batch sizes across 1–32.
    #[test]
    fn stackable_plans_match_solo(
        seed in any::<u64>(),
        ops in 1usize..6,
        n in 3usize..12,
        q in 1usize..=32,
    ) {
        let g = random_stackable_graph(seed, ops, n, false);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        prop_assert!(analysis.stackable(), "generator only emits stackable shapes");
        check_all_backends::<f64>(&g, n, q, seed ^ 0xD0, 1e-11);
    }

    /// Past the engine's L1 cutoff (A > 32KB, i.e. n ≥ 66 at f64) the
    /// stacked multi-RHS path actually engages — below it the engine's
    /// `matmul_batched` takes the bitwise per-item loop, so this is the
    /// range where the documented engine ULP bound is really tested.
    #[test]
    fn stackable_plans_match_solo_past_l1_cutoff(
        seed in any::<u64>(),
        ops in 1usize..4,
        n in 66usize..96,
        q in 2usize..=8,
    ) {
        let g = random_stackable_graph(seed, ops, n, false);
        check_all_backends::<f64>(&g, n, q, seed ^ 0xD4, 1e-11);
    }

    /// The f32 twin of the cutoff property (A > 32KB needs n ≥ 91 at
    /// four bytes per element).
    #[test]
    fn stackable_plans_match_solo_past_l1_cutoff_f32(
        seed in any::<u64>(),
        ops in 1usize..3,
        n in 91usize..112,
        q in 2usize..=8,
    ) {
        let g = random_stackable_graph(seed, ops, n, false);
        check_all_backends::<f32>(&g, n, q, seed ^ 0xD5, 1e-4);
    }

    /// The same property at f32 — the looser bound tracks the shorter
    /// mantissa, nothing else.
    #[test]
    fn stackable_plans_match_solo_f32(
        seed in any::<u64>(),
        ops in 1usize..5,
        n in 3usize..10,
        q in 1usize..=16,
    ) {
        let g = random_stackable_graph(seed, ops, n, false);
        check_all_backends::<f32>(&g, n, q, seed ^ 0xD1, 1e-4);
    }

    /// GEMM-free plans are bitwise on EVERY backend: without a product
    /// node there is no stacked-dispatch regime change anywhere.
    #[test]
    fn gemm_free_plans_are_bitwise_everywhere(
        seed in any::<u64>(),
        ops in 1usize..7,
        n in 2usize..14,
        q in 1usize..=32,
    ) {
        let g = random_stackable_graph(seed, ops, n, true);
        check_all_backends::<f64>(&g, n, q, seed ^ 0xD2, 0.0);
    }

    /// Illegal-stacking plans: the analysis refuses, and the fallback is
    /// bitwise-identical sequential execution on every backend.
    #[test]
    fn illegal_plans_fall_back_bitwise(
        seed in any::<u64>(),
        n in 3usize..12,
        q in 1usize..=32,
    ) {
        let g = random_illegal_graph(seed, n);
        let analysis = BatchAnalysis::analyze(&g, is_varying);
        prop_assert!(!analysis.stackable(), "varying Gram products must be illegal");
        check_all_backends::<f64>(&g, n, q, seed ^ 0xD3, 0.0);
    }
}
