//! Pass-pipeline properties: idempotence, semantic preservation across
//! arbitrary pass subsets, and executor/oracle agreement on randomly
//! generated traces.

use laab_dense::gen::OperandGen;
use laab_expr::eval::Env;
use laab_graph::{execute, optimize, Graph, GraphBuilder, NodeId, PassConfig};
use proptest::prelude::*;

/// Build a random but well-formed trace over inputs A, B (n×n) and x (n×1).
fn random_graph(seed: u64, ops: usize, n: usize) -> Graph {
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }
    let mut state = seed | 1;
    let mut gb = GraphBuilder::new();
    let a = gb.input("A", n, n);
    let b = gb.input("B", n, n);
    // Pool of square nodes we can combine freely.
    let mut square: Vec<NodeId> = vec![a, b];
    for _ in 0..ops {
        let pick =
            |state: &mut u64, pool: &[NodeId]| pool[(next(state) % pool.len() as u64) as usize];
        let node = match next(&mut state) % 5 {
            0 => {
                let x = pick(&mut state, &square);
                gb.transpose(x)
            }
            1 => {
                let (x, y) = (pick(&mut state, &square), pick(&mut state, &square));
                gb.matmul(x, y)
            }
            2 => {
                let (x, y) = (pick(&mut state, &square), pick(&mut state, &square));
                gb.add(x, y)
            }
            3 => {
                let (x, y) = (pick(&mut state, &square), pick(&mut state, &square));
                gb.sub(x, y)
            }
            _ => {
                let x = pick(&mut state, &square);
                gb.scale(((next(&mut state) % 5) as f64) - 2.0, x)
            }
        };
        square.push(node);
    }
    let out = *square.last().unwrap();
    gb.finish(vec![out])
}

fn env(n: usize, seed: u64) -> Env<f64> {
    let mut g = OperandGen::new(seed);
    Env::new().with("A", g.matrix(n, n)).with("B", g.matrix(n, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_is_idempotent(seed in any::<u64>(), ops in 1usize..12) {
        let mut g = random_graph(seed, ops, 4);
        optimize(&mut g, &PassConfig::all());
        let once = g.clone();
        optimize(&mut g, &PassConfig::all());
        prop_assert_eq!(g, once, "second optimization pass must be a no-op");
    }

    #[test]
    fn every_pass_subset_preserves_values(
        seed in any::<u64>(),
        ops in 1usize..10,
        fold in any::<bool>(),
        cse in any::<bool>(),
        fuse in any::<bool>(),
        dce in any::<bool>(),
        data_seed in any::<u64>(),
    ) {
        let n = 5;
        let e = env(n, data_seed);
        let reference = execute(&random_graph(seed, ops, n), &e);
        prop_assume!(reference[0].all_finite());

        let mut g = random_graph(seed, ops, n);
        let cfg = PassConfig { fold_transpose: fold, cse, fuse_scale: fuse, dce };
        optimize(&mut g, &cfg);
        g.check_topology().map_err(TestCaseError::fail)?;
        let got = execute(&g, &e);
        prop_assert!(
            got[0].approx_eq(&reference[0], 1e-9),
            "pass subset {:?} changed the value (dist {})",
            cfg,
            got[0].rel_dist(&reference[0])
        );
    }

    #[test]
    fn optimization_never_adds_matmuls(seed in any::<u64>(), ops in 1usize..12) {
        let g0 = random_graph(seed, ops, 4);
        let before = g0.matmul_count();
        let mut g = g0;
        optimize(&mut g, &PassConfig::all());
        prop_assert!(g.matmul_count() <= before);
    }

    #[test]
    fn dce_only_graph_is_minimal(seed in any::<u64>(), ops in 1usize..12) {
        let mut g = random_graph(seed, ops, 4);
        optimize(&mut g, &PassConfig { dce: true, ..PassConfig::none() });
        // After DCE every node must be reachable from the outputs.
        let uses = g.use_counts();
        for (i, u) in uses.iter().enumerate() {
            prop_assert!(
                *u > 0 || g.outputs.iter().any(|o| o.idx() == i),
                "node {i} survives DCE but is unused"
            );
        }
    }
}
