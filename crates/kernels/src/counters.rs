//! Thread-local kernel-invocation and FLOP counters.
//!
//! The paper's analysis is stated in kernel calls and FLOPs ("without CSE the
//! execution time for `E1` would be approximately 2× higher…"). These
//! counters let tests assert those statements exactly: reset, run an
//! expression, snapshot, and compare call/FLOP counts.
//!
//! Counters are *thread-local* so that concurrently running tests (and
//! benchmark pilots) never observe each other's kernel traffic. Kernels
//! record on the thread that invoked the public entry point; worker threads
//! spawned internally by a parallel kernel do not record separately.

use std::cell::RefCell;

/// Identity of each instrumented kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Kernel {
    /// General matrix-matrix multiply.
    Gemm,
    /// General matrix-vector multiply.
    Gemv,
    /// Rank-1 update (outer product accumulate).
    Ger,
    /// Inner (dot) product.
    Dot,
    /// `y := αx + y`.
    Axpy,
    /// `x := αx`.
    Scal,
    /// Euclidean norm.
    Nrm2,
    /// Triangular matrix-matrix multiply.
    Trmm,
    /// Symmetric rank-k update (`AAᵀ`).
    Syrk,
    /// Tridiagonal × dense multiply.
    TridiagMatmul,
    /// Diagonal × dense multiply (row scaling).
    DiagMatmul,
    /// Elementwise `C := αA + βB`.
    GeAdd,
    /// Explicit transpose materialization.
    Transpose,
    /// Slicing / element extraction.
    Slice,
    /// Concatenation / block assembly.
    Concat,
    /// Triangular solve.
    Trsm,
    /// Cholesky factorization.
    Potrf,
    /// LU factorization with partial pivoting.
    Getrf,
}

/// Number of kernel kinds (array size for the counter banks).
pub const N_KERNELS: usize = 18;

/// All kernels, in discriminant order (for iteration in reports).
pub const ALL_KERNELS: [Kernel; N_KERNELS] = [
    Kernel::Gemm,
    Kernel::Gemv,
    Kernel::Ger,
    Kernel::Dot,
    Kernel::Axpy,
    Kernel::Scal,
    Kernel::Nrm2,
    Kernel::Trmm,
    Kernel::Syrk,
    Kernel::TridiagMatmul,
    Kernel::DiagMatmul,
    Kernel::GeAdd,
    Kernel::Transpose,
    Kernel::Slice,
    Kernel::Concat,
    Kernel::Trsm,
    Kernel::Potrf,
    Kernel::Getrf,
];

impl Kernel {
    /// Stable display name (BLAS-style, upper-case).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Gemm => "GEMM",
            Kernel::Gemv => "GEMV",
            Kernel::Ger => "GER",
            Kernel::Dot => "DOT",
            Kernel::Axpy => "AXPY",
            Kernel::Scal => "SCAL",
            Kernel::Nrm2 => "NRM2",
            Kernel::Trmm => "TRMM",
            Kernel::Syrk => "SYRK",
            Kernel::TridiagMatmul => "TRIDIAG_MM",
            Kernel::DiagMatmul => "DIAG_MM",
            Kernel::GeAdd => "GEADD",
            Kernel::Transpose => "TRANSPOSE",
            Kernel::Slice => "SLICE",
            Kernel::Concat => "CONCAT",
            Kernel::Trsm => "TRSM",
            Kernel::Potrf => "POTRF",
            Kernel::Getrf => "GETRF",
        }
    }
}

thread_local! {
    static CALLS: RefCell<[u64; N_KERNELS]> = const { RefCell::new([0; N_KERNELS]) };
    static FLOPS: RefCell<[u64; N_KERNELS]> = const { RefCell::new([0; N_KERNELS]) };
}

/// Record one invocation of `kernel` performing `flops` floating-point
/// operations. Called by every public kernel entry point.
#[inline]
pub fn record(kernel: Kernel, flops: u64) {
    let idx = kernel as usize;
    CALLS.with(|c| c.borrow_mut()[idx] += 1);
    FLOPS.with(|f| f.borrow_mut()[idx] += flops);
}

/// Reset this thread's counters to zero.
pub fn reset() {
    CALLS.with(|c| *c.borrow_mut() = [0; N_KERNELS]);
    FLOPS.with(|f| *f.borrow_mut() = [0; N_KERNELS]);
}

/// An immutable copy of this thread's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    calls: [u64; N_KERNELS],
    flops: [u64; N_KERNELS],
}

/// Take a snapshot of this thread's counters.
pub fn snapshot() -> Snapshot {
    Snapshot { calls: CALLS.with(|c| *c.borrow()), flops: FLOPS.with(|f| *f.borrow()) }
}

impl Snapshot {
    /// Calls recorded for `kernel`.
    pub fn calls(&self, kernel: Kernel) -> u64 {
        self.calls[kernel as usize]
    }

    /// FLOPs recorded for `kernel`.
    pub fn flops(&self, kernel: Kernel) -> u64 {
        self.flops[kernel as usize]
    }

    /// Total calls across all kernels.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Total FLOPs across all kernels.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Counter deltas `self − earlier` (element-wise, saturating).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for i in 0..N_KERNELS {
            out.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
            out.flops[i] = self.flops[i].saturating_sub(earlier.flops[i]);
        }
        out
    }

    /// Human-readable non-zero rows, e.g. `GEMM x3 (54e9 flops)`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for k in ALL_KERNELS {
            let c = self.calls(k);
            if c > 0 {
                parts.push(format!("{} x{} ({} flops)", k.name(), c, self.flops(k)));
            }
        }
        if parts.is_empty() {
            "(no kernel calls)".to_string()
        } else {
            parts.join(", ")
        }
    }
}

/// Run `f` and return `(result, counters recorded during f)`.
///
/// The surrounding counter state is preserved: recording done inside `f` is
/// still visible to outer `measure` calls.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    let before = snapshot();
    let r = f();
    let after = snapshot();
    (r, after.since(&before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        reset();
        record(Kernel::Gemm, 100);
        record(Kernel::Gemm, 50);
        record(Kernel::Dot, 7);
        let s = snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 2);
        assert_eq!(s.flops(Kernel::Gemm), 150);
        assert_eq!(s.calls(Kernel::Dot), 1);
        assert_eq!(s.total_calls(), 3);
        assert_eq!(s.total_flops(), 157);
    }

    #[test]
    fn since_subtracts() {
        reset();
        record(Kernel::Scal, 10);
        let a = snapshot();
        record(Kernel::Scal, 10);
        record(Kernel::Axpy, 20);
        let b = snapshot();
        let d = b.since(&a);
        assert_eq!(d.calls(Kernel::Scal), 1);
        assert_eq!(d.calls(Kernel::Axpy), 1);
        assert_eq!(d.flops(Kernel::Scal), 10);
    }

    #[test]
    fn measure_scopes_counts() {
        reset();
        record(Kernel::Gemm, 5);
        let ((), inner) = measure(|| record(Kernel::Gemm, 7));
        assert_eq!(inner.calls(Kernel::Gemm), 1);
        assert_eq!(inner.flops(Kernel::Gemm), 7);
        // Outer state still includes both records.
        assert_eq!(snapshot().calls(Kernel::Gemm), 2);
    }

    #[test]
    fn describe_mentions_nonzero_kernels() {
        reset();
        record(Kernel::Trmm, 42);
        let s = snapshot();
        assert!(s.describe().contains("TRMM"));
        reset();
        assert_eq!(snapshot().describe(), "(no kernel calls)");
    }

    #[test]
    fn thread_isolation() {
        reset();
        record(Kernel::Gemm, 1);
        let handle = std::thread::spawn(|| {
            // Fresh thread sees zeroed counters.
            let s = snapshot();
            s.total_calls()
        });
        assert_eq!(handle.join().unwrap(), 0);
        assert_eq!(snapshot().calls(Kernel::Gemm), 1);
    }
}
