//! Shape-directed product dispatch.
//!
//! Frameworks lower a single `matmul` op onto different BLAS kernels
//! depending on operand shapes: `1×k · k×1` → `DOT`, `m×k · k×1` → `GEMV`,
//! `1×k · k×n` → `GEMV` on the transposed matrix, anything else → `GEMM`.
//! Both the graph executor and `multi_dot` route their products through
//! [`matmul_dispatch`] so the whole suite shares one lowering (and one
//! instrumentation story).

use laab_dense::{Matrix, Scalar};

use crate::{dot, gemm, gemv, Trans};

/// Compute `alpha · op(a) · op(b)`, selecting the cheapest kernel for the
/// logical shapes.
///
/// # Panics
/// On inner-dimension mismatch.
pub fn matmul_dispatch<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    b: &Matrix<T>,
    tb: Trans,
) -> Matrix<T> {
    let (m, ka) = ta.dims(a.rows(), a.cols());
    let (kb, n) = tb.dims(b.rows(), b.cols());
    assert_eq!(ka, kb, "matmul_dispatch: inner dimensions differ ({ka} vs {kb})");

    if m == 1 && n == 1 {
        // Inner product — vector storage is contiguous in either
        // orientation, so the transposition flags are moot.
        let d = dot(a.as_slice(), b.as_slice());
        return Matrix::filled(1, 1, alpha * d);
    }
    if n == 1 {
        // op(A)·x → GEMV.
        let mut y = Matrix::zeros(m, 1);
        if tb == Trans::No && b.cols() == 1 {
            gemv(alpha, a, ta, b, T::ZERO, &mut y);
        } else {
            let x = Matrix::col_vector(b.as_slice());
            gemv(alpha, a, ta, &x, T::ZERO, &mut y);
        }
        return y;
    }
    if m == 1 {
        // xᵀ·op(B) → (op(B)ᵀ·x)ᵀ via GEMV; the final transpose is an O(n)
        // relabeling of a vector.
        let x = Matrix::col_vector(a.as_slice());
        let mut y = Matrix::zeros(n, 1);
        gemv(alpha, b, tb.flip(), &x, T::ZERO, &mut y);
        return Matrix::row_vector(y.as_slice());
    }
    let mut c = Matrix::zeros(m, n);
    gemm(alpha, a, ta, b, tb, T::ZERO, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{self, Kernel};
    use crate::reference;
    use laab_dense::gen::OperandGen;

    #[test]
    fn scalar_product_uses_dot() {
        let mut g = OperandGen::new(41);
        let x = g.col_vector::<f64>(20);
        let y = g.col_vector::<f64>(20);
        counters::reset();
        let r = matmul_dispatch(1.0, &x, Trans::Yes, &y, Trans::No);
        assert_eq!(counters::snapshot().calls(Kernel::Dot), 1);
        let want =
            reference::gemm_naive(1.0, &x, Trans::Yes, &y, Trans::No, 0.0, &Matrix::zeros(1, 1));
        assert!((r[(0, 0)] - want[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn matrix_vector_uses_gemv() {
        let mut g = OperandGen::new(42);
        let a = g.matrix::<f64>(12, 9);
        let x = g.col_vector::<f64>(9);
        counters::reset();
        let r = matmul_dispatch(2.0, &a, Trans::No, &x, Trans::No);
        assert_eq!(counters::snapshot().calls(Kernel::Gemv), 1);
        let want = reference::gemv_naive(&a, Trans::No, &x).scale(2.0);
        assert!(r.approx_eq(&want, 1e-12));
    }

    #[test]
    fn row_vector_matrix_uses_gemv_transposed() {
        let mut g = OperandGen::new(43);
        let y = g.col_vector::<f64>(12);
        let a = g.matrix::<f64>(12, 9);
        counters::reset();
        let r = matmul_dispatch(1.0, &y, Trans::Yes, &a, Trans::No);
        assert_eq!(counters::snapshot().calls(Kernel::Gemv), 1);
        assert_eq!(r.shape(), (1, 9));
        let want =
            reference::gemm_naive(1.0, &y, Trans::Yes, &a, Trans::No, 0.0, &Matrix::zeros(1, 9));
        assert!(r.approx_eq(&want, 1e-12));
    }

    #[test]
    fn general_product_uses_gemm() {
        let mut g = OperandGen::new(44);
        let a = g.matrix::<f64>(7, 5);
        let b = g.matrix::<f64>(7, 6);
        counters::reset();
        let r = matmul_dispatch(1.0, &a, Trans::Yes, &b, Trans::No);
        assert_eq!(counters::snapshot().calls(Kernel::Gemm), 1);
        let want =
            reference::gemm_naive(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &Matrix::zeros(5, 6));
        assert!(r.approx_eq(&want, 1e-12));
    }

    #[test]
    fn transposed_vector_operand_is_rebuilt() {
        // op(B) is a k×1 logical column given as a 1×k stored row.
        let mut g = OperandGen::new(45);
        let a = g.matrix::<f64>(6, 8);
        let xr = g.row_vector::<f64>(8);
        let r = matmul_dispatch(1.0, &a, Trans::No, &xr, Trans::Yes);
        let want =
            reference::gemm_naive(1.0, &a, Trans::No, &xr, Trans::Yes, 0.0, &Matrix::zeros(6, 1));
        assert!(r.approx_eq(&want, 1e-12));
    }
}
