//! Canonical FLOP-count formulas.
//!
//! These formulas are the single source of truth shared by the kernel
//! instrumentation (`counters`), the cost models in `laab-expr` /
//! `laab-chain`, and the analytical columns of the reproduced tables. They
//! follow the conventions of the paper (Sec. III): a fused multiply-add
//! counts as two FLOPs; GEMM on `m×k · k×n` costs `2mkn`; structure-aware
//! kernels cost what the paper states (TRMM `n³` for square operands, SYRK
//! `n³`, tridiagonal product `6n²`, diagonal product `n²`).

/// GEMM `C(m×n) := A(m×k) · B(k×n)`: `2·m·n·k` FLOPs.
#[inline]
pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// GEMV `y(m) := A(m×n) · x(n)`: `2·m·n` FLOPs.
#[inline]
pub fn gemv(m: usize, n: usize) -> u64 {
    2 * m as u64 * n as u64
}

/// GER rank-1 update `A(m×n) += x·yᵀ`: `2·m·n` FLOPs.
#[inline]
pub fn ger(m: usize, n: usize) -> u64 {
    2 * m as u64 * n as u64
}

/// DOT `xᵀy` over length-`n` vectors: `2n` FLOPs.
#[inline]
pub fn dot(n: usize) -> u64 {
    2 * n as u64
}

/// AXPY `y := αx + y` over length-`n` vectors: `2n` FLOPs.
#[inline]
pub fn axpy(n: usize) -> u64 {
    2 * n as u64
}

/// SCAL `x := αx` over length `n`: `n` FLOPs.
#[inline]
pub fn scal(n: usize) -> u64 {
    n as u64
}

/// NRM2 over length `n`: `2n` FLOPs.
#[inline]
pub fn nrm2(n: usize) -> u64 {
    2 * n as u64
}

/// TRMM `B(n×m) := L(n×n)·B` with triangular `L`: `n²·m` FLOPs —
/// half of the corresponding GEMM, as in the paper's Experiment 3.
#[inline]
pub fn trmm(n: usize, m: usize) -> u64 {
    n as u64 * n as u64 * m as u64
}

/// SYRK `C(n×n) := A(n×k)·Aᵀ` (one triangle): `n²·k` FLOPs —
/// half of the corresponding GEMM.
#[inline]
pub fn syrk(n: usize, k: usize) -> u64 {
    n as u64 * n as u64 * k as u64
}

/// Tridiagonal × dense `T(n×n)·B(n×m)`: `6·n·m` FLOPs (three scalings plus
/// two additions per output element, counted as in the paper: `6n²` for
/// square `B`).
#[inline]
pub fn tridiag_matmul(n: usize, m: usize) -> u64 {
    6 * n as u64 * m as u64
}

/// Diagonal × dense `D(n×n)·B(n×m)`: `n·m` FLOPs.
#[inline]
pub fn diag_matmul(n: usize, m: usize) -> u64 {
    n as u64 * m as u64
}

/// Elementwise `C(m×n) := αA + βB`: counted as `m·n` FLOPs (one add per
/// element; the scalings are absorbed, matching the paper's `O(n²)` count
/// for a matrix sum).
#[inline]
pub fn geadd(m: usize, n: usize) -> u64 {
    m as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_hold() {
        let n = 3000;
        // TRMM and SYRK are half of GEMM (Experiment 3).
        assert_eq!(gemm(n, n, n) / trmm(n, n), 2);
        assert_eq!(gemm(n, n, n) / syrk(n, n), 2);
        // Tridiagonal product is O(n²): 6n² per the paper.
        assert_eq!(tridiag_matmul(n, n), 6 * (n as u64) * (n as u64));
        // Diagonal product is n².
        assert_eq!(diag_matmul(n, n), (n as u64) * (n as u64));
    }

    #[test]
    fn level1_counts() {
        assert_eq!(dot(100), 200);
        assert_eq!(axpy(100), 200);
        assert_eq!(scal(100), 100);
        assert_eq!(nrm2(100), 200);
        assert_eq!(gemv(10, 20), 400);
        assert_eq!(ger(10, 20), 400);
        assert_eq!(geadd(10, 20), 200);
    }

    #[test]
    fn fig7_formulas() {
        // Fig 7 of the paper: chain A(m×k) B(k×n) costs 2mkn; verify the
        // formula reproduces the paper's annotated costs for a 4-chain.
        let (a, b, c, d) = (1000usize, 2000usize, 500usize, 3000usize);
        // ((AB)C)D with A: a×b, B: b×c, C: c×d ... representative shapes.
        let ab = gemm(a, c, b);
        assert_eq!(ab, 2 * 1000 * 500 * 2000);
        let _ = d;
    }
}
