//! Packed, blocked GEMM with 2-D parallel tiling and specialized
//! microkernels.
//!
//! The structure follows the BLIS/Goto decomposition: three cache-blocking
//! loops (`NC`/`KC`/`MC`) around packed panels of `A` and `B`, with an
//! `MR×NR` register-tile microkernel innermost. Transposition is absorbed
//! by the packing routines (the strided [`View`](crate::view::View) simply
//! swaps strides), so `op(A)·op(B)` costs the same for every flag
//! combination — the behaviour the paper observes for MKL-backed `AᵀB` in
//! Table I.
//!
//! ## Execution engine
//!
//! Within each `(jc, pc)` step, `B` is packed **once** into a shared
//! panel, and the `mc×nc` macro-space is cut into a 2-D grid of
//! `(MC-row-block × column-chunk)` tiles drained from the persistent
//! worker pool ([`crate::parallel_for`]). Short-and-wide products (small
//! `m`, large `n`) — which the previous rows-only split ran serially —
//! parallelize over column chunks; tall products parallelize over row
//! blocks; big squares over both. Each tile packs its `A` block into a
//! **reusable thread-local workspace** ([`crate::workspace`]), so
//! steady-state calls allocate nothing.
//!
//! ## Determinism
//!
//! The tile grid only partitions *independent* output regions; every
//! `C[i,j]` is accumulated in the same order (`pc` loop outermost, fixed
//! `k`-order microkernel) regardless of the thread count, so 1-thread and
//! N-thread runs are **bit-identical**.

use std::any::TypeId;

use laab_dense::{Matrix, Scalar};

use crate::counters::{self, Kernel};
use crate::parallel::parallel_for;
use crate::simd::fma_f32;
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "fma",
    any(target_feature = "avx512f", target_feature = "avx2")
)))]
use crate::simd::fma_f64;
use crate::view::{MutView, View};
use crate::workspace::{with_packed_a, with_packed_b};
use crate::{flops, num_threads, Trans};

/// Register tile rows. With `NR` accumulator lanes per row, 6 rows keep
/// 12 SIMD accumulators live — the classic FMA-latency-hiding shape that
/// still fits the 16 architectural vector registers of AVX2 (and leaves
/// headroom under AVX-512).
pub(crate) const MR: usize = 6;
/// Register tile columns. On AVX-512 targets the `f64` microkernel is
/// written with explicit 512-bit intrinsics (the autovectorizer prefers
/// 256-bit vectors there), so a row is two zmm registers — 12 zmm
/// accumulators out of 32. Elsewhere, 8 columns are two 256-bit lanes and
/// the 6×8 accumulator set fills 12 of the 16 architectural registers.
pub(crate) const NR: usize =
    if cfg!(all(target_arch = "x86_64", target_feature = "avx512f")) { 16 } else { 8 };
/// Rows of the packed A block (L2-resident panel height, multiple of `MR`).
const MC: usize = 120;
/// Depth of the packed panels. Deep panels (L2-resident A block) halve
/// the number of read-modify-write passes over `C` relative to the
/// classic L1-sized choice — measurably faster here, where the
/// microkernel is FMA-bound and `C` traffic is the next cost.
const KC: usize = 1024;
/// Columns of the packed B block (L3-resident panel width, multiple of `NR`).
const NC: usize = 2048;

/// Below this many FLOPs (`2mnk`) the spawn/handoff overhead of the pool
/// outweighs the work; run serially even when threads are configured.
const PAR_MIN_FLOPS: u64 = 2_000_000;

/// `C := α·op(A)·op(B) + β·C`.
///
/// Shapes: with `op(A)` of shape `m×k` and `op(B)` of shape `k×n`, `C` must
/// be `m×n`.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    b: &Matrix<T>,
    tb: Trans,
    beta: T,
    c: &mut Matrix<T>,
) {
    let av = View::of(a, ta);
    let bv = View::of(b, tb);
    let (m, ka) = (av.rows, av.cols);
    let (kb, n) = (bv.rows, bv.cols);
    assert_eq!(ka, kb, "gemm: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(c.shape(), (m, n), "gemm: C has shape {:?}, expected ({m}, {n})", c.shape());
    counters::record(Kernel::Gemm, flops::gemm(m, n, ka));
    let threads = effective_threads(m, n, ka);
    gemm_blocked(alpha, av, BSrc::One(bv), beta, CDst::One(MutView::of(c)), threads);
}

/// Convenience wrapper allocating the output: `op(A)·op(B)`.
pub fn matmul<T: Scalar>(a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
    let (m, _) = ta.dims(a.rows(), a.cols());
    let (_, n) = tb.dims(b.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    gemm(T::ONE, a, ta, b, tb, T::ZERO, &mut c);
    c
}

/// `C := α·op(A)·[B₀ | B₁ | … | B_{q−1}] + β·C` — the multi-RHS GEMM.
///
/// The batched-serving entry point: `q` same-shape right-hand sides are
/// treated as the column-wise concatenation without ever materializing
/// it — the packing routine streams panels straight out of the parts, so
/// each `A` panel is packed **once** for all `q` products and the
/// microkernel sees one `m×(q·n)` GEMM instead of `q` GEMV-shaped calls.
/// That is the Level-2 → Level-3 regime conversion the paper identifies:
/// a thin (`n×1`) right-hand side runs memory-bound (every request re-reads
/// all of `A`), while the stacked product re-enters the compute-bound GEMM
/// regime the engine is tuned for.
///
/// Every `B_i` must have the identical `k×n` shape and is used
/// untransposed (column stacking has no meaning across a transposed
/// operand). `C` must be `m×(q·n)`; its `i`-th `n`-column block is
/// **bitwise-identical** to `gemm` on the materialized concatenation —
/// same packed bytes, same per-element reduction order.
///
/// # Panics
/// On ragged `B_i` shapes or inconsistent `A`/`C` shapes.
pub fn gemm_multi_rhs<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    bs: &[&Matrix<T>],
    beta: T,
    c: &mut Matrix<T>,
) {
    let av = View::of(a, ta);
    let (m, k) = (av.rows, av.cols);
    let (bk, bn) = bs.first().map_or((k, 0), |b| b.shape());
    for b in bs {
        assert_eq!(
            b.shape(),
            (bk, bn),
            "gemm_multi_rhs: ragged RHS shapes ({:?} vs ({bk}, {bn}))",
            b.shape()
        );
    }
    assert_eq!(bk, k, "gemm_multi_rhs: inner dimensions differ ({k} vs {bk})");
    let n = bn * bs.len();
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm_multi_rhs: C has shape {:?}, expected ({m}, {n})",
        c.shape()
    );
    if bs.is_empty() {
        return; // C is m×0 — nothing to compute.
    }
    counters::record(Kernel::Gemm, flops::gemm(m, n, k));
    let threads = effective_threads(m, n, k);
    gemm_blocked(
        alpha,
        av,
        BSrc::Stacked { parts: bs, part_cols: bn },
        beta,
        CDst::One(MutView::of(c)),
        threads,
    );
}

/// Allocating wrapper for [`gemm_multi_rhs`]: the `m×(q·n)` stacked
/// product `α·op(A)·[B₀ | … | B_{q−1}]`.
pub fn matmul_multi_rhs<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    bs: &[&Matrix<T>],
) -> Matrix<T> {
    let (m, _) = ta.dims(a.rows(), a.cols());
    let n = bs.first().map_or(0, |b| b.cols()) * bs.len();
    let mut c = Matrix::zeros(m, n);
    gemm_multi_rhs(alpha, a, ta, bs, T::ZERO, &mut c);
    c
}

/// `Cᵢ := α·op(A)·Bᵢ + β·Cᵢ` for all `i` in **one** multi-RHS sweep — the
/// zero-copy twin of [`gemm_multi_rhs`]. The stacked `m×(q·n)` product is
/// never materialized: the write-back addresses each logical column
/// straight into its part's output matrix, so batched callers skip both
/// the stacked allocation and the `split_cols` re-split (a second full
/// pass over `C`). Packing, microkernel, and per-element reduction order
/// are shared with the stacked path, so part `i` is **bitwise-identical**
/// to the `i`-th `n`-column block of the stacked result.
///
/// # Panics
/// On ragged `B_i` shapes, inconsistent `A` shape, or `cs` not matching
/// `bs` in count or per-part `m×n` shape.
pub fn gemm_multi_rhs_into<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    bs: &[&Matrix<T>],
    beta: T,
    cs: &mut [Matrix<T>],
) {
    let av = View::of(a, ta);
    let (m, k) = (av.rows, av.cols);
    let (bk, bn) = bs.first().map_or((k, 0), |b| b.shape());
    for b in bs {
        assert_eq!(
            b.shape(),
            (bk, bn),
            "gemm_multi_rhs_into: ragged RHS shapes ({:?} vs ({bk}, {bn}))",
            b.shape()
        );
    }
    assert_eq!(bk, k, "gemm_multi_rhs_into: inner dimensions differ ({k} vs {bk})");
    assert_eq!(
        cs.len(),
        bs.len(),
        "gemm_multi_rhs_into: {} outputs for {} RHS",
        cs.len(),
        bs.len()
    );
    for c in cs.iter() {
        assert_eq!(
            c.shape(),
            (m, bn),
            "gemm_multi_rhs_into: output has shape {:?}, expected ({m}, {bn})",
            c.shape()
        );
    }
    if bs.is_empty() {
        return;
    }
    counters::record(Kernel::Gemm, flops::gemm(m, bn * bs.len(), k));
    let threads = effective_threads(m, bn * bs.len(), k);
    gemm_blocked(
        alpha,
        av,
        BSrc::Stacked { parts: bs, part_cols: bn },
        beta,
        CDst::Parts { parts: cs, part_cols: bn },
        threads,
    );
}

/// Allocating wrapper for [`gemm_multi_rhs_into`]: the per-part products
/// `α·op(A)·Bᵢ`, one owned matrix per right-hand side, computed in a
/// single multi-RHS sweep with no stacked intermediate.
pub fn matmul_multi_rhs_parts<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    bs: &[&Matrix<T>],
) -> Vec<Matrix<T>> {
    let (m, _) = ta.dims(a.rows(), a.cols());
    let bn = bs.first().map_or(0, |b| b.cols());
    let mut cs: Vec<Matrix<T>> = (0..bs.len()).map(|_| Matrix::zeros(m, bn)).collect();
    gemm_multi_rhs_into(alpha, a, ta, bs, T::ZERO, &mut cs);
    cs
}

/// Thread count for a product of the given logical shape: the configured
/// count, unless the product is too small to amortize pool hand-off. The
/// decision looks at total FLOPs — *not* at `m` alone, so wide-but-short
/// products (small `m`, large `n`) parallelize over columns instead of
/// silently degrading to one thread.
fn effective_threads(m: usize, n: usize, k: usize) -> usize {
    let t = num_threads();
    if t <= 1 {
        return 1;
    }
    let flops = 2u64 * m as u64 * n as u64 * k as u64;
    if flops < PAR_MIN_FLOPS {
        1
    } else {
        t
    }
}

/// Serial blocked GEMM over strided views (also the building block for TRMM
/// and SYRK, which call it on sub-views).
pub(crate) fn gemm_serial<T: Scalar>(
    alpha: T,
    a: View<'_, T>,
    b: View<'_, T>,
    beta: T,
    c: &mut MutView<'_, T>,
) {
    gemm_blocked(alpha, a, BSrc::One(b), beta, CDst::One(c.reborrow()), 1);
}

/// The blocked driver's right-hand side: one strided view, or the logical
/// column-wise concatenation `[B₀ | B₁ | …]` of equal-shape untransposed
/// matrices (the multi-RHS path). The concatenation is never materialized;
/// [`pack_b_stacked`] reads panels straight from the parts, so the two
/// variants produce byte-identical packed panels for the same logical
/// operand.
#[derive(Clone, Copy)]
enum BSrc<'a, T: Scalar> {
    One(View<'a, T>),
    Stacked { parts: &'a [&'a Matrix<T>], part_cols: usize },
}

impl<T: Scalar> BSrc<'_, T> {
    fn rows(&self) -> usize {
        match self {
            BSrc::One(v) => v.rows,
            BSrc::Stacked { parts, .. } => parts.first().map_or(0, |b| b.rows()),
        }
    }

    fn cols(&self) -> usize {
        match self {
            BSrc::One(v) => v.cols,
            BSrc::Stacked { parts, part_cols } => part_cols * parts.len(),
        }
    }
}

/// The blocked driver's output destination: one row-major panel, or the
/// logical column-wise concatenation `[C₀ | C₁ | …]` of equal-shape
/// per-part output matrices — [`BSrc`]'s write-side twin. The multi-RHS
/// batched path hands each part its own owned output, so the stacked
/// result is never materialized and never re-split.
enum CDst<'a, T: Scalar> {
    One(MutView<'a, T>),
    Parts { parts: &'a mut [Matrix<T>], part_cols: usize },
}

impl<T: Scalar> CDst<'_, T> {
    fn rows(&self) -> usize {
        match self {
            CDst::One(v) => v.rows,
            CDst::Parts { parts, .. } => parts.first().map_or(0, |c| c.rows()),
        }
    }

    fn cols(&self) -> usize {
        match self {
            CDst::One(v) => v.cols,
            CDst::Parts { parts, part_cols } => part_cols * parts.len(),
        }
    }
}

/// Raw pointers to the output destination, shared across tile workers.
/// Tiles write disjoint `(row, column-range)` fragments, so the aliasing
/// `&mut` slices manufactured in [`RawC::row_segments`] never overlap.
/// Mirrors [`CDst`]: one panel, or per-part panels a logical column range
/// may straddle.
enum RawC<T> {
    One { ptr: *mut T, rs: usize },
    Parts { ptrs: Vec<*mut T>, part_cols: usize },
}

// SAFETY: see the enum docs — the tile scheduler hands every fragment to
// exactly one task, and `T: Send` moves element access across threads.
unsafe impl<T: Send> Sync for RawC<T> {}

impl<T: Scalar> RawC<T> {
    fn of(c: &mut CDst<'_, T>) -> Self {
        match c {
            CDst::One(v) => RawC::One { ptr: v.data.as_mut_ptr(), rs: v.rs },
            CDst::Parts { parts, part_cols } => RawC::Parts {
                ptrs: parts.iter_mut().map(|p| p.as_mut_slice().as_mut_ptr()).collect(),
                part_cols: *part_cols,
            },
        }
    }

    /// Address of element `(i, j)` — the start of its contiguous segment.
    /// Used only for prefetch (no dereference on this path).
    ///
    /// # Safety
    /// `(i, j)` must be in bounds of the logical destination.
    #[inline(always)]
    unsafe fn addr(&self, i: usize, j: usize) -> *const T {
        match self {
            RawC::One { ptr, rs } => ptr.add(i * rs + j),
            RawC::Parts { ptrs, part_cols } => {
                ptrs[j / part_cols].add(i * part_cols + j % part_cols)
            }
        }
    }

    /// Visit the mutable fragment of row `i`, columns `[j, j+len)`, as
    /// contiguous segments: the closure receives each segment's offset
    /// within the fragment and its slice. A single-panel destination is
    /// one segment; a per-part destination splits at part boundaries.
    ///
    /// # Safety
    /// The caller must guarantee no concurrently live fragment overlaps.
    /// The `&mut`-from-`&self` is the point: `RawC` is the shared handle
    /// through which disjoint tiles write, so the aliasing discipline
    /// lives in the tile scheduler, not the borrow checker.
    #[inline(always)]
    unsafe fn row_segments(
        &self,
        i: usize,
        j: usize,
        len: usize,
        mut f: impl FnMut(usize, &mut [T]),
    ) {
        match self {
            RawC::One { ptr, rs } => {
                f(0, std::slice::from_raw_parts_mut(ptr.add(i * rs + j), len));
            }
            RawC::Parts { ptrs, part_cols } => {
                let mut done = 0;
                while done < len {
                    let (part, pcol) = ((j + done) / part_cols, (j + done) % part_cols);
                    let run = (part_cols - pcol).min(len - done);
                    let seg =
                        std::slice::from_raw_parts_mut(ptrs[part].add(i * part_cols + pcol), run);
                    f(done, seg);
                    done += run;
                }
            }
        }
    }
}

/// The blocked driver: shared packed-B panel per `(jc, pc)` step, 2-D
/// `(row-block × column-chunk)` tile grid on the worker pool.
fn gemm_blocked<T: Scalar>(
    alpha: T,
    a: View<'_, T>,
    b: BSrc<'_, T>,
    beta: T,
    mut c: CDst<'_, T>,
    threads: usize,
) {
    let (m, k) = (a.rows, a.cols);
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!((c.rows(), c.cols()), (m, n));

    // Apply beta once, up front: C := beta*C. (beta == 0 writes zeros so
    // uninitialized NaNs never propagate, matching BLAS semantics.)
    scale_c(beta, &mut c);
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let raw = RawC::of(&mut c);
    let b_len = KC.min(k) * NC.min(n).next_multiple_of(NR);
    with_packed_b::<T, _>(b_len, |packed_b| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                match b {
                    BSrc::One(bv) => pack_b(packed_b, bv, pc, kc, jc, nc),
                    BSrc::Stacked { parts, part_cols } => {
                        pack_b_stacked(packed_b, parts, part_cols, pc, kc, jc, nc)
                    }
                }
                let m_tiles = m.div_ceil(MC);
                let (n_chunks, chunk_cols) = column_chunks(nc, m_tiles, threads);
                let pb: &[T] = packed_b;
                parallel_for(threads, m_tiles * n_chunks, |t| {
                    let ic = (t % m_tiles) * MC;
                    let mc = MC.min(m - ic);
                    let j0 = (t / m_tiles) * chunk_cols;
                    let j1 = (j0 + chunk_cols).min(nc);
                    with_packed_a::<T, _>(mc.next_multiple_of(MR) * kc, |pa| {
                        pack_a(pa, a, ic, mc, pc, kc);
                        let pb_chunk = &pb[(j0 / NR) * NR * kc..];
                        macro_block(alpha, pa, pb_chunk, mc, j1 - j0, kc, ic, jc + j0, &raw);
                    });
                });
            }
        }
    });
}

/// Split the `nc`-wide panel into column chunks so the tile grid exposes
/// roughly `2·threads` units of work even when there are few row blocks
/// (the wide-but-short case). Chunks are `NR`-aligned so packed-B panel
/// boundaries stay intact; with one thread the panel is a single chunk
/// (no redundant A packing).
fn column_chunks(nc: usize, m_tiles: usize, threads: usize) -> (usize, usize) {
    if threads <= 1 || m_tiles >= 2 * threads {
        return (1, nc);
    }
    let want = (2 * threads).div_ceil(m_tiles).min(nc.div_ceil(NR));
    let chunk = nc.div_ceil(want).next_multiple_of(NR);
    (nc.div_ceil(chunk), chunk)
}

fn scale_c<T: Scalar>(beta: T, c: &mut CDst<'_, T>) {
    if beta == T::ONE {
        return;
    }
    let scale_rows = |data: &mut [T], rows: usize, cols: usize, rs: usize| {
        for i in 0..rows {
            let row = &mut data[i * rs..i * rs + cols];
            if beta == T::ZERO {
                for v in row.iter_mut() {
                    *v = T::ZERO;
                }
            } else {
                for v in row.iter_mut() {
                    *v *= beta;
                }
            }
        }
    };
    match c {
        CDst::One(v) => scale_rows(&mut *v.data, v.rows, v.cols, v.rs),
        CDst::Parts { parts, part_cols } => {
            for p in parts.iter_mut() {
                let rows = p.rows();
                scale_rows(p.as_mut_slice(), rows, *part_cols, *part_cols);
            }
        }
    }
}

/// Pack `mc×kc` of `A` (from `(ic, pc)`) into row-panels of height `MR`,
/// zero-padding the ragged final panel. The unit-column-stride fast path
/// reads each source row contiguously.
fn pack_a<T: Scalar>(buf: &mut [T], a: View<'_, T>, ic: usize, mc: usize, pc: usize, kc: usize) {
    let panels = mc.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kc);
    for p in 0..panels {
        let out = &mut buf[p * MR * kc..(p + 1) * MR * kc];
        let rows = MR.min(mc - p * MR);
        if rows < MR {
            out.fill(T::ZERO);
        }
        let r0 = ic + p * MR;
        if a.cs == 1 {
            for ir in 0..rows {
                let src = &a.data[(r0 + ir) * a.rs + pc..][..kc];
                for (kk, &v) in src.iter().enumerate() {
                    out[kk * MR + ir] = v;
                }
            }
        } else {
            // Transposed (or generally strided) source: for a fixed kk the
            // `ir` run strides by `a.rs` (contiguous when rs == 1).
            for kk in 0..kc {
                let base = (pc + kk) * a.cs + r0 * a.rs;
                for ir in 0..rows {
                    out[kk * MR + ir] = a.data[base + ir * a.rs];
                }
            }
        }
    }
}

/// Pack `kc×nc` of `B` (from `(pc, jc)`) into column-panels of width `NR`,
/// zero-padding the ragged final panel. The unit-column-stride fast path
/// is a straight row-fragment copy.
fn pack_b<T: Scalar>(buf: &mut [T], b: View<'_, T>, pc: usize, kc: usize, jc: usize, nc: usize) {
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kc);
    for p in 0..panels {
        let out = &mut buf[p * NR * kc..(p + 1) * NR * kc];
        let cols = NR.min(nc - p * NR);
        if cols < NR {
            out.fill(T::ZERO);
        }
        let c0 = jc + p * NR;
        if b.cs == 1 {
            for kk in 0..kc {
                let src = &b.data[(pc + kk) * b.rs + c0..][..cols];
                out[kk * NR..kk * NR + cols].copy_from_slice(src);
            }
        } else {
            for jr in 0..cols {
                let base = (c0 + jr) * b.cs + pc * b.rs;
                for kk in 0..kc {
                    out[kk * NR + jr] = b.data[base + kk * b.rs];
                }
            }
        }
    }
}

/// Pack `kc×nc` of the logical concatenation `[B₀ | B₁ | …]` (from
/// `(pc, jc)`) into column-panels of width `NR`, zero-padding the ragged
/// final panel — [`pack_b`]'s multi-RHS twin. Logical column `j` maps to
/// part `j / part_cols`, column `j % part_cols`; a panel straddling a part
/// boundary is filled segment-wise with contiguous row-fragment copies
/// (every part is an owned row-major matrix). Produces byte-identical
/// panels to [`pack_b`] on the materialized concatenation.
fn pack_b_stacked<T: Scalar>(
    buf: &mut [T],
    parts: &[&Matrix<T>],
    part_cols: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kc);
    for p in 0..panels {
        let out = &mut buf[p * NR * kc..(p + 1) * NR * kc];
        let cols = NR.min(nc - p * NR);
        if cols < NR {
            out.fill(T::ZERO);
        }
        let c0 = jc + p * NR;
        for kk in 0..kc {
            let row = &mut out[kk * NR..kk * NR + cols];
            let mut j = 0;
            while j < cols {
                let (part, pcol) = ((c0 + j) / part_cols, (c0 + j) % part_cols);
                let run = (part_cols - pcol).min(cols - j);
                let src = &parts[part].as_slice()[(pc + kk) * part_cols + pcol..][..run];
                row[j..j + run].copy_from_slice(src);
                j += run;
            }
        }
    }
}

/// Sweep all `MR×NR` tiles of one `mc × chunk_n` macro-tile, accumulating
/// `alpha`-scaled results into `C` through disjoint row fragments.
#[allow(clippy::too_many_arguments)]
fn macro_block<T: Scalar>(
    alpha: T,
    packed_a: &[T],
    packed_b: &[T],
    mc: usize,
    chunk_n: usize,
    kc: usize,
    i0: usize,
    j0: usize,
    c: &RawC<T>,
) {
    let a_panels = mc.div_ceil(MR);
    let b_panels = chunk_n.div_ceil(NR);
    for jp in 0..b_panels {
        let pb = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
        let cols = NR.min(chunk_n - jp * NR);
        for ip in 0..a_panels {
            let pa = &packed_a[ip * MR * kc..(ip + 1) * MR * kc];
            let rows = MR.min(mc - ip * MR);
            // Pull the C destination rows towards the core while the
            // microkernel runs — the write-back below is the only
            // non-packed memory traffic in the macro sweep.
            #[cfg(target_arch = "x86_64")]
            for ir in 0..rows {
                // SAFETY: in-bounds row fragment start (same indices the
                // write-back uses); prefetch has no architectural effect.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        c.addr(i0 + ip * MR + ir, j0 + jp * NR).cast(),
                        std::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
            let mut acc = [[T::ZERO; NR]; MR];
            micro_kernel(kc, pa, pb, &mut acc);
            // Accumulate the tile: C[i0+ip*MR.., j0+jp*NR..] += alpha * acc.
            // Per-element updates are independent, so the segment-wise
            // walk over a per-part destination is bitwise-identical to
            // the contiguous single-panel write.
            for (ir, acc_row) in acc.iter().enumerate().take(rows) {
                // SAFETY: this tile owns rows [i0, i0+mc) × cols
                // [j0, j0+chunk_n) exclusively (disjoint tile grid).
                unsafe {
                    c.row_segments(i0 + ip * MR + ir, j0 + jp * NR, cols, |off, seg| {
                        for (sv, &av) in seg.iter_mut().zip(&acc_row[off..]) {
                            *sv = alpha.mul_add(av, *sv);
                        }
                    });
                }
            }
        }
    }
}

/// The register-tile microkernel: `acc[MR][NR] = Σ_k a[k][·] ⊗ b[k][·]`,
/// dispatching to the fused `f32`/`f64` specializations. `acc` must be
/// zero-initialized by the caller.
#[inline(always)]
fn micro_kernel<T: Scalar>(kc: usize, pa: &[T], pb: &[T], acc: &mut [[T; NR]; MR]) {
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    if TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: T == f64, so the reinterpretations are identities.
        let pa = unsafe { &*(pa as *const [T] as *const [f64]) };
        let pb = unsafe { &*(pb as *const [T] as *const [f64]) };
        let acc = unsafe { &mut *(acc as *mut [[T; NR]; MR]).cast::<[[f64; NR]; MR]>() };
        micro_kernel_f64(kc, pa, pb, acc);
    } else if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: T == f32, so the reinterpretations are identities.
        let pa = unsafe { &*(pa as *const [T] as *const [f32]) };
        let pb = unsafe { &*(pb as *const [T] as *const [f32]) };
        let acc = unsafe { &mut *(acc as *mut [[T; NR]; MR]).cast::<[[f32; NR]; MR]>() };
        micro_kernel_f32(kc, pa, pb, acc);
    } else {
        micro_kernel_generic(kc, pa, pb, acc);
    }
}

macro_rules! micro_kernel_impl {
    ($name:ident, $t:ty, $fma:ident) => {
        /// Fixed-size, fully unrolled rank-1-update sweep: per `k` step,
        /// `MR` broadcasts against one `NR`-wide packed row, every update a
        /// hardware FMA when the target has one. The constant trip counts
        /// let LLVM keep all `MR×NR` accumulators in vector registers.
        #[inline(always)]
        fn $name(kc: usize, pa: &[$t], pb: &[$t], acc: &mut [[$t; NR]; MR]) {
            for (a, b) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
                let a: &[$t; MR] = a.try_into().unwrap();
                let b: &[$t; NR] = b.try_into().unwrap();
                for ir in 0..MR {
                    let av = a[ir];
                    let row = &mut acc[ir];
                    for jr in 0..NR {
                        row[jr] = $fma(av, b[jr], row[jr]);
                    }
                }
            }
        }
    };
}

#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "fma",
    any(target_feature = "avx512f", target_feature = "avx2")
)))]
micro_kernel_impl!(micro_kernel_f64, f64, fma_f64);
micro_kernel_impl!(micro_kernel_f32, f32, fma_f32);

/// Explicit 256-bit `f64` microkernel for AVX2+FMA targets without
/// AVX-512: 6 rows × 2 ymm accumulators — the classic Haswell 6×8 dgemm
/// shape, which the autovectorizer cannot hold in the 16 architectural
/// registers without spilling. Reduction order matches the scalar-FMA
/// formulation exactly.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
#[inline(always)]
fn micro_kernel_f64(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; NR]; MR]) {
    use std::arch::x86_64::{
        _mm256_broadcast_sd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm_prefetch, _MM_HINT_T0,
    };
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    // SAFETY: gated on compile-time avx2+fma; pointer arithmetic stays
    // inside the packed panels per the debug_assert'd lengths (prefetch
    // lookahead uses wrapping_add and has no architectural effect).
    unsafe {
        let mut lo = [_mm256_setzero_pd(); MR];
        let mut hi = [_mm256_setzero_pd(); MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        const LOOKAHEAD: usize = 8;
        for _ in 0..kc {
            _mm_prefetch(bp.wrapping_add(NR * LOOKAHEAD).cast(), _MM_HINT_T0);
            let b0 = _mm256_loadu_pd(bp);
            let b1 = _mm256_loadu_pd(bp.add(4));
            for ir in 0..MR {
                let av = _mm256_broadcast_sd(&*ap.add(ir));
                lo[ir] = _mm256_fmadd_pd(av, b0, lo[ir]);
                hi[ir] = _mm256_fmadd_pd(av, b1, hi[ir]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for ir in 0..MR {
            _mm256_storeu_pd(acc[ir].as_mut_ptr(), lo[ir]);
            _mm256_storeu_pd(acc[ir].as_mut_ptr().add(4), hi[ir]);
        }
    }
}

/// Explicit 512-bit `f64` microkernel: 6 rows × 2 zmm accumulators, one
/// broadcast + two fused updates per row per `k` step. Each output lane is
/// an independent fused chain in fixed `k` order, so results are bitwise
/// identical to the scalar-FMA formulation (and to any thread count).
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f", target_feature = "fma"))]
#[inline(always)]
fn micro_kernel_f64(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; NR]; MR]) {
    use std::arch::x86_64::{
        _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_set1_pd, _mm512_setzero_pd, _mm512_storeu_pd,
        _mm_prefetch, _MM_HINT_T0,
    };
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    // SAFETY: gated on compile-time avx512f; pointer arithmetic stays
    // inside the packed panels per the debug_assert'd lengths (prefetches
    // may run past the panel end — they are architecturally side-effect
    // free).
    unsafe {
        let mut lo = [_mm512_setzero_pd(); MR];
        let mut hi = [_mm512_setzero_pd(); MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        // How far ahead (in k steps) to pull the streamed B panel.
        const LOOKAHEAD: usize = 8;
        // Two k steps per trip cuts the loop-control share of the
        // front-end budget; the odd tail runs one plain step.
        for _ in 0..kc / 2 {
            // wrapping_add: the lookahead may point past the panel, which
            // is fine for a prefetch but would be UB for `add`.
            _mm_prefetch(bp.wrapping_add(NR * LOOKAHEAD).cast(), _MM_HINT_T0);
            _mm_prefetch(bp.wrapping_add(NR * LOOKAHEAD + 8).cast(), _MM_HINT_T0);
            _mm_prefetch(bp.wrapping_add(NR * (LOOKAHEAD + 1)).cast(), _MM_HINT_T0);
            _mm_prefetch(bp.wrapping_add(NR * (LOOKAHEAD + 1) + 8).cast(), _MM_HINT_T0);
            let b0 = _mm512_loadu_pd(bp);
            let b1 = _mm512_loadu_pd(bp.add(8));
            for ir in 0..MR {
                let av = _mm512_set1_pd(*ap.add(ir));
                lo[ir] = _mm512_fmadd_pd(av, b0, lo[ir]);
                hi[ir] = _mm512_fmadd_pd(av, b1, hi[ir]);
            }
            let b0 = _mm512_loadu_pd(bp.add(NR));
            let b1 = _mm512_loadu_pd(bp.add(NR + 8));
            for ir in 0..MR {
                let av = _mm512_set1_pd(*ap.add(MR + ir));
                lo[ir] = _mm512_fmadd_pd(av, b0, lo[ir]);
                hi[ir] = _mm512_fmadd_pd(av, b1, hi[ir]);
            }
            ap = ap.add(2 * MR);
            bp = bp.add(2 * NR);
        }
        if kc % 2 == 1 {
            let b0 = _mm512_loadu_pd(bp);
            let b1 = _mm512_loadu_pd(bp.add(8));
            for ir in 0..MR {
                let av = _mm512_set1_pd(*ap.add(ir));
                lo[ir] = _mm512_fmadd_pd(av, b0, lo[ir]);
                hi[ir] = _mm512_fmadd_pd(av, b1, hi[ir]);
            }
        }
        for ir in 0..MR {
            _mm512_storeu_pd(acc[ir].as_mut_ptr(), lo[ir]);
            _mm512_storeu_pd(acc[ir].as_mut_ptr().add(8), hi[ir]);
        }
    }
}

/// Generic fallback for hypothetical further `Scalar` types: same shape,
/// unfused updates.
#[inline(always)]
fn micro_kernel_generic<T: Scalar>(kc: usize, pa: &[T], pb: &[T], acc: &mut [[T; NR]; MR]) {
    for (a, b) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        for ir in 0..MR {
            let av = a[ir];
            let row = &mut acc[ir];
            for jr in 0..NR {
                row[jr] = av.mul_add(b[jr], row[jr]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use laab_dense::gen::OperandGen;

    fn check_case(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, alpha: f64, beta: f64) {
        let mut g = OperandGen::new((m * 31 + n * 7 + k) as u64);
        let (ar, ac) = match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = g.matrix::<f64>(ar, ac);
        let b = g.matrix::<f64>(br, bc);
        let c0 = g.matrix::<f64>(m, n);

        let mut c = c0.clone();
        gemm(alpha, &a, ta, &b, tb, beta, &mut c);
        let want = reference::gemm_naive(alpha, &a, ta, &b, tb, beta, &c0);
        assert!(
            c.approx_eq(&want, 1e-12),
            "gemm mismatch m={m} n={n} k={k} ta={ta:?} tb={tb:?} alpha={alpha} beta={beta}: \
             dist={}",
            c.rel_dist(&want)
        );
    }

    #[test]
    fn matches_reference_all_trans_combos() {
        for &(ta, tb) in &[
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            check_case(17, 13, 9, ta, tb, 1.0, 0.0);
        }
    }

    #[test]
    fn matches_reference_alpha_beta() {
        check_case(8, 8, 8, Trans::No, Trans::No, 2.5, 0.5);
        check_case(5, 9, 3, Trans::Yes, Trans::No, -1.0, 1.0);
        check_case(12, 4, 20, Trans::No, Trans::Yes, 0.0, 2.0);
    }

    #[test]
    fn ragged_sizes_cross_tile_boundaries() {
        // Exercise the zero-padding paths: sizes straddling MR/NR/MC/KC.
        for &(m, n, k) in &[(1, 1, 1), (3, 9, 5), (4, 8, 256), (5, 9, 257), (130, 17, 300)] {
            check_case(m, n, k, Trans::No, Trans::No, 1.0, 0.0);
        }
    }

    #[test]
    fn vector_shapes() {
        // n = 1 (matrix-vector through GEMM) and m = 1 (row-vector-matrix).
        check_case(64, 1, 64, Trans::No, Trans::No, 1.0, 0.0);
        check_case(1, 64, 64, Trans::No, Trans::No, 1.0, 0.0);
        check_case(1, 1, 128, Trans::No, Trans::No, 1.0, 0.0);
    }

    #[test]
    fn matmul_allocates_correct_shape() {
        let mut g = OperandGen::new(9);
        let a = g.matrix::<f32>(6, 4);
        let b = g.matrix::<f32>(6, 5);
        let c = matmul(&a, Trans::Yes, &b, Trans::No);
        assert_eq!(c.shape(), (4, 5));
    }

    #[test]
    fn beta_zero_overwrites_nans() {
        let a = Matrix::<f64>::identity(4);
        let b = Matrix::<f64>::identity(4);
        let mut c = Matrix::<f64>::filled(4, 4, f64::NAN);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
        assert!(c.all_finite(), "beta=0 must not propagate NaNs");
        assert!(c.approx_eq(&Matrix::identity(4), 1e-15));
    }

    #[test]
    fn records_counters() {
        counters::reset();
        let a = Matrix::<f32>::identity(10);
        let b = Matrix::<f32>::identity(10);
        let _ = matmul(&a, Trans::No, &b, Trans::No);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 1);
        assert_eq!(s.flops(Kernel::Gemm), 2000);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut g = OperandGen::new(77);
        let a = g.matrix::<f64>(97, 53);
        let b = g.matrix::<f64>(53, 41);
        let serial = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(4);
        let parallel = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(1);
        assert!(parallel.approx_eq(&serial, 1e-13));
    }

    #[test]
    fn parallel_is_bit_identical_above_dispatch_threshold() {
        // 160³ (> PAR_MIN_FLOPS) actually engages the tile scheduler.
        let mut g = OperandGen::new(78);
        let a = g.matrix::<f64>(160, 160);
        let b = g.matrix::<f64>(160, 160);
        let serial = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(4);
        let parallel = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(1);
        assert_eq!(serial.as_slice(), parallel.as_slice(), "tile grid changed reduction order");
    }

    #[test]
    fn wide_short_shapes_parallelize_over_columns() {
        // m = 8 < MR*2: the old heuristic ran this serially; the column
        // chunker must now expose > 1 tile.
        let (chunks, width) = column_chunks(2048, 1, 4);
        assert!(chunks > 1, "wide-short shape left serial");
        assert_eq!(width % NR, 0, "chunks must be NR-aligned");
        let mut g = OperandGen::new(79);
        let a = g.matrix::<f64>(8, 300);
        let b = g.matrix::<f64>(300, 1500);
        let serial = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(4);
        let parallel = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(1);
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn seed_and_engine_agree() {
        let mut g = OperandGen::new(80);
        let a = g.matrix::<f64>(70, 90);
        let b = g.matrix::<f64>(90, 40);
        let c0 = g.matrix::<f64>(70, 40);
        let mut c_new = c0.clone();
        gemm(1.25, &a, Trans::No, &b, Trans::No, -0.5, &mut c_new);
        let mut c_seed = c0.clone();
        crate::seed::gemm_seed(1.25, &a, Trans::No, &b, Trans::No, -0.5, &mut c_seed);
        assert!(c_new.approx_eq(&c_seed, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        let _ = matmul(&a, Trans::No, &b, Trans::No);
    }

    /// Materialize `[B₀ | B₁ | …]` the slow way, for the oracle.
    fn hstack(parts: &[&Matrix<f64>]) -> Matrix<f64> {
        let mut acc = parts[0].clone();
        for p in &parts[1..] {
            acc = acc.hcat(p);
        }
        acc
    }

    #[test]
    fn multi_rhs_is_bitwise_identical_to_hstacked_gemm() {
        // The multi-RHS path must produce the exact packed panels (and
        // therefore the exact results) of a single GEMM on the
        // materialized concatenation — for thin (n=1) and wide parts, both
        // transposition flags, and part widths that straddle NR panel
        // boundaries.
        let mut g = OperandGen::new(91);
        for &(m, k, bn, q, ta) in &[
            (64, 48, 1, 8, Trans::No),
            (48, 64, 1, 3, Trans::Yes),
            (33, 29, 5, 4, Trans::No),
            (17, 40, 11, 3, Trans::Yes),
            (130, 300, 3, 7, Trans::No),
        ] {
            let (ar, ac) = match ta {
                Trans::No => (m, k),
                Trans::Yes => (k, m),
            };
            let a = g.matrix::<f64>(ar, ac);
            let parts: Vec<Matrix<f64>> = (0..q).map(|_| g.matrix::<f64>(k, bn)).collect();
            let refs: Vec<&Matrix<f64>> = parts.iter().collect();
            let stacked = matmul_multi_rhs(1.25, &a, ta, &refs);
            let mut want = Matrix::<f64>::zeros(m, bn * q);
            gemm(1.25, &a, ta, &hstack(&refs), Trans::No, 0.0, &mut want);
            assert_eq!(
                stacked.as_slice(),
                want.as_slice(),
                "multi-RHS drifted from the hstacked GEMM (m={m} k={k} bn={bn} q={q} ta={ta:?})"
            );
        }
    }

    #[test]
    fn multi_rhs_parallel_is_bit_identical() {
        let mut g = OperandGen::new(92);
        let a = g.matrix::<f64>(160, 200);
        let parts: Vec<Matrix<f64>> = (0..16).map(|_| g.matrix::<f64>(200, 4)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        let serial = matmul_multi_rhs(1.0, &a, Trans::No, &refs);
        crate::set_num_threads(4);
        let parallel = matmul_multi_rhs(1.0, &a, Trans::No, &refs);
        crate::set_num_threads(1);
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn multi_rhs_beta_accumulates_and_counts_one_gemm() {
        let mut g = OperandGen::new(93);
        let a = g.matrix::<f64>(9, 7);
        let parts: Vec<Matrix<f64>> = (0..3).map(|_| g.matrix::<f64>(7, 2)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        let c0 = g.matrix::<f64>(9, 6);
        let mut c = c0.clone();
        counters::reset();
        gemm_multi_rhs(2.0, &a, Trans::No, &refs, -0.5, &mut c);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 1, "one logical GEMM, not q");
        assert_eq!(s.flops(Kernel::Gemm), flops::gemm(9, 6, 7));
        let mut want = c0.clone();
        gemm(2.0, &a, Trans::No, &hstack(&refs), Trans::No, -0.5, &mut want);
        assert_eq!(c.as_slice(), want.as_slice());
    }

    #[test]
    fn multi_rhs_empty_and_single_part_edges() {
        let mut g = OperandGen::new(94);
        let a = g.matrix::<f64>(6, 5);
        let empty: [&Matrix<f64>; 0] = [];
        assert_eq!(matmul_multi_rhs(1.0, &a, Trans::No, &empty).shape(), (6, 0));
        let b = g.matrix::<f64>(5, 3);
        let one = matmul_multi_rhs(1.0, &a, Trans::No, &[&b]);
        assert_eq!(one, matmul(&a, Trans::No, &b, Trans::No));
    }

    #[test]
    #[should_panic(expected = "ragged RHS shapes")]
    fn multi_rhs_ragged_parts_panic() {
        let a = Matrix::<f64>::zeros(4, 4);
        let b1 = Matrix::<f64>::zeros(4, 2);
        let b2 = Matrix::<f64>::zeros(4, 3);
        let _ = matmul_multi_rhs(1.0, &a, Trans::No, &[&b1, &b2]);
    }

    #[test]
    fn multi_rhs_parts_bitwise_matches_stacked_split() {
        // The per-part destination shares packing, microkernel, and
        // reduction order with the stacked path; only write-back
        // addressing differs, so each part must be bitwise-identical to
        // the corresponding column block of the stacked result — across
        // part widths that straddle NR panel boundaries, both transpose
        // flags, and thin (n=1) parts.
        let mut g = OperandGen::new(95);
        for &(m, k, bn, q, ta) in &[
            (64, 48, 1, 8, Trans::No),
            (48, 64, 1, 3, Trans::Yes),
            (33, 29, 5, 4, Trans::No),
            (17, 40, 11, 3, Trans::Yes),
            (130, 300, 3, 7, Trans::No),
        ] {
            let (ar, ac) = match ta {
                Trans::No => (m, k),
                Trans::Yes => (k, m),
            };
            let a = g.matrix::<f64>(ar, ac);
            let parts: Vec<Matrix<f64>> = (0..q).map(|_| g.matrix::<f64>(k, bn)).collect();
            let refs: Vec<&Matrix<f64>> = parts.iter().collect();
            let got = matmul_multi_rhs_parts(1.25, &a, ta, &refs);
            let want = matmul_multi_rhs(1.25, &a, ta, &refs).split_cols(q);
            assert_eq!(got.len(), q);
            for (i, (g_i, w_i)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g_i.as_slice(),
                    w_i.as_slice(),
                    "part {i} drifted (m={m} k={k} bn={bn} q={q} ta={ta:?})"
                );
            }
        }
    }

    #[test]
    fn multi_rhs_parts_parallel_is_bit_identical() {
        let mut g = OperandGen::new(96);
        let a = g.matrix::<f64>(160, 200);
        let parts: Vec<Matrix<f64>> = (0..16).map(|_| g.matrix::<f64>(200, 4)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        let serial = matmul_multi_rhs_parts(1.0, &a, Trans::No, &refs);
        crate::set_num_threads(4);
        let parallel = matmul_multi_rhs_parts(1.0, &a, Trans::No, &refs);
        crate::set_num_threads(1);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.as_slice(), p.as_slice());
        }
    }

    #[test]
    fn multi_rhs_into_beta_accumulates_per_part_and_counts_one_gemm() {
        let mut g = OperandGen::new(97);
        let a = g.matrix::<f64>(9, 7);
        let parts: Vec<Matrix<f64>> = (0..3).map(|_| g.matrix::<f64>(7, 2)).collect();
        let refs: Vec<&Matrix<f64>> = parts.iter().collect();
        let c0: Vec<Matrix<f64>> = (0..3).map(|_| g.matrix::<f64>(9, 2)).collect();
        let mut cs = c0.clone();
        counters::reset();
        gemm_multi_rhs_into(2.0, &a, Trans::No, &refs, -0.5, &mut cs);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 1, "one logical GEMM, not q");
        assert_eq!(s.flops(Kernel::Gemm), flops::gemm(9, 6, 7));
        for (i, (c, c0_i)) in cs.iter().zip(&c0).enumerate() {
            let mut want = c0_i.clone();
            gemm(2.0, &a, Trans::No, &parts[i], Trans::No, -0.5, &mut want);
            assert_eq!(c.as_slice(), want.as_slice(), "part {i}");
        }
    }

    #[test]
    fn multi_rhs_parts_empty_and_single_edges() {
        let mut g = OperandGen::new(98);
        let a = g.matrix::<f64>(6, 5);
        let empty: [&Matrix<f64>; 0] = [];
        assert!(matmul_multi_rhs_parts(1.0, &a, Trans::No, &empty).is_empty());
        let b = g.matrix::<f64>(5, 3);
        let one = matmul_multi_rhs_parts(1.0, &a, Trans::No, &[&b]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], matmul(&a, Trans::No, &b, Trans::No));
    }

    #[test]
    #[should_panic(expected = "outputs for")]
    fn multi_rhs_into_count_mismatch_panics() {
        let a = Matrix::<f64>::zeros(4, 4);
        let b = Matrix::<f64>::zeros(4, 2);
        let mut cs = vec![Matrix::<f64>::zeros(4, 2); 2];
        gemm_multi_rhs_into(1.0, &a, Trans::No, &[&b], 0.0, &mut cs);
    }
}
