//! Packed, blocked GEMM with a register-tiled microkernel.
//!
//! The structure follows the BLIS/Goto decomposition: three cache-blocking
//! loops (`NC`/`KC`/`MC`) around packed panels of `A` and `B`, with an
//! `MR×NR` register-tile microkernel innermost. Transposition is absorbed by
//! the packing routines (the strided [`View`](crate::view::View) simply swaps
//! strides), so `op(A)·op(B)` costs the same for every flag combination —
//! the behaviour the paper observes for MKL-backed `AᵀB` in Table I.

use laab_dense::{Matrix, Scalar};

use crate::counters::{self, Kernel};
use crate::view::{MutView, View};
use crate::{flops, num_threads, Trans};

/// Register tile rows. 4×8 accumulators keep f32 microkernels within the
/// 16 SIMD registers of SSE/NEON baselines while letting LLVM vectorize the
/// `NR`-wide inner updates.
const MR: usize = 4;
/// Register tile columns.
const NR: usize = 8;
/// Rows of the packed A block (L2-resident panel height).
const MC: usize = 128;
/// Depth of the packed panels (L1/L2-resident).
const KC: usize = 256;
/// Columns of the packed B block (L3-resident panel width).
const NC: usize = 2048;

/// `C := α·op(A)·op(B) + β·C`.
///
/// Shapes: with `op(A)` of shape `m×k` and `op(B)` of shape `k×n`, `C` must
/// be `m×n`.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    b: &Matrix<T>,
    tb: Trans,
    beta: T,
    c: &mut Matrix<T>,
) {
    let av = View::of(a, ta);
    let bv = View::of(b, tb);
    let (m, ka) = (av.rows, av.cols);
    let (kb, n) = (bv.rows, bv.cols);
    assert_eq!(ka, kb, "gemm: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(c.shape(), (m, n), "gemm: C has shape {:?}, expected ({m}, {n})", c.shape());
    counters::record(Kernel::Gemm, flops::gemm(m, n, ka));
    gemm_dispatch(alpha, av, bv, beta, c);
}

/// Convenience wrapper allocating the output: `op(A)·op(B)`.
pub fn matmul<T: Scalar>(a: &Matrix<T>, ta: Trans, b: &Matrix<T>, tb: Trans) -> Matrix<T> {
    let (m, _) = ta.dims(a.rows(), a.cols());
    let (_, n) = tb.dims(b.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    gemm(T::ONE, a, ta, b, tb, T::ZERO, &mut c);
    c
}

/// Choose serial or row-parallel execution. Parallelism splits the rows of
/// `C` (and correspondingly of `op(A)`) into contiguous chunks; `op(B)` is
/// shared read-only, so each worker packs it independently.
fn gemm_dispatch<T: Scalar>(alpha: T, a: View<'_, T>, b: View<'_, T>, beta: T, c: &mut Matrix<T>) {
    let threads = num_threads();
    let m = a.rows;
    if threads <= 1 || m < 2 * MR * threads {
        gemm_serial(alpha, a, b, beta, &mut MutView::of(c));
        return;
    }
    let rows_per = m.div_ceil(threads);
    let width = c.cols();
    std::thread::scope(|s| {
        for (ci, chunk) in c.as_mut_slice().chunks_mut(rows_per * width).enumerate() {
            let r0 = ci * rows_per;
            let rows = chunk.len() / width;
            let a_chunk = a.sub(r0, r0 + rows, 0, a.cols);
            s.spawn(move || {
                let mut cv = MutView { data: chunk, rows, cols: width, rs: width };
                gemm_serial(alpha, a_chunk, b, beta, &mut cv);
            });
        }
    });
}

/// Serial blocked GEMM over strided views (also the building block for TRMM
/// and SYRK, which call it on sub-views).
pub(crate) fn gemm_serial<T: Scalar>(
    alpha: T,
    a: View<'_, T>,
    b: View<'_, T>,
    beta: T,
    c: &mut MutView<'_, T>,
) {
    let (m, k) = (a.rows, a.cols);
    let n = b.cols;
    debug_assert_eq!(b.rows, k);
    debug_assert_eq!((c.rows, c.cols), (m, n));

    // Apply beta once, up front: C := beta*C. (beta == 0 writes zeros so
    // uninitialized NaNs never propagate, matching BLAS semantics.)
    scale_c(beta, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return;
    }

    let mut packed_a = vec![T::ZERO; MC.min(m).next_multiple_of(MR) * KC.min(k)];
    let mut packed_b = vec![T::ZERO; KC.min(k) * NC.min(n).next_multiple_of(NR)];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut packed_b, b, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut packed_a, a, ic, mc, pc, kc);
                macro_block(alpha, &packed_a, &packed_b, mc, nc, kc, ic, jc, c);
            }
        }
    }
}

fn scale_c<T: Scalar>(beta: T, c: &mut MutView<'_, T>) {
    if beta == T::ONE {
        return;
    }
    for i in 0..c.rows {
        let row = &mut c.data[i * c.rs..i * c.rs + c.cols];
        if beta == T::ZERO {
            for v in row.iter_mut() {
                *v = T::ZERO;
            }
        } else {
            for v in row.iter_mut() {
                *v *= beta;
            }
        }
    }
}

/// Pack `mc×kc` of `A` (from `(ic, pc)`) into row-panels of height `MR`,
/// zero-padding the ragged final panel.
fn pack_a<T: Scalar>(buf: &mut [T], a: View<'_, T>, ic: usize, mc: usize, pc: usize, kc: usize) {
    let panels = mc.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kc);
    for p in 0..panels {
        let base = p * MR * kc;
        let rows = MR.min(mc - p * MR);
        for kk in 0..kc {
            for ir in 0..MR {
                buf[base + kk * MR + ir] =
                    if ir < rows { a.get(ic + p * MR + ir, pc + kk) } else { T::ZERO };
            }
        }
    }
}

/// Pack `kc×nc` of `B` (from `(pc, jc)`) into column-panels of width `NR`,
/// zero-padding the ragged final panel.
fn pack_b<T: Scalar>(buf: &mut [T], b: View<'_, T>, pc: usize, kc: usize, jc: usize, nc: usize) {
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kc);
    for p in 0..panels {
        let base = p * NR * kc;
        let cols = NR.min(nc - p * NR);
        for kk in 0..kc {
            for jr in 0..NR {
                buf[base + kk * NR + jr] =
                    if jr < cols { b.get(pc + kk, jc + p * NR + jr) } else { T::ZERO };
            }
        }
    }
}

/// Sweep all `MR×NR` tiles of one `mc×nc` macro-block.
#[allow(clippy::too_many_arguments)]
fn macro_block<T: Scalar>(
    alpha: T,
    packed_a: &[T],
    packed_b: &[T],
    mc: usize,
    nc: usize,
    kc: usize,
    ic: usize,
    jc: usize,
    c: &mut MutView<'_, T>,
) {
    let a_panels = mc.div_ceil(MR);
    let b_panels = nc.div_ceil(NR);
    for jp in 0..b_panels {
        let pb = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
        let j0 = jc + jp * NR;
        let cols = NR.min(nc - jp * NR);
        for ip in 0..a_panels {
            let pa = &packed_a[ip * MR * kc..(ip + 1) * MR * kc];
            let i0 = ic + ip * MR;
            let rows = MR.min(mc - ip * MR);
            let acc = micro_kernel(kc, pa, pb);
            // Accumulate the tile: C[i0.., j0..] += alpha * acc.
            for (ir, acc_row) in acc.iter().enumerate().take(rows) {
                let crow = &mut c.data[(i0 + ir) * c.rs + j0..(i0 + ir) * c.rs + j0 + cols];
                for (cv, &av) in crow.iter_mut().zip(acc_row) {
                    *cv = alpha.mul_add(av, *cv);
                }
            }
        }
    }
}

/// The register-tile microkernel: `acc[MR][NR] = Σ_k a[k][·] ⊗ b[k][·]`.
///
/// Written so the `NR`-wide inner updates are straight-line code over a
/// contiguous slice, which LLVM vectorizes at `opt-level ≥ 2`.
#[inline(always)]
fn micro_kernel<T: Scalar>(kc: usize, pa: &[T], pb: &[T]) -> [[T; NR]; MR] {
    let mut acc = [[T::ZERO; NR]; MR];
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    for kk in 0..kc {
        let a = &pa[kk * MR..kk * MR + MR];
        let b = &pb[kk * NR..kk * NR + NR];
        for ir in 0..MR {
            let av = a[ir];
            let row = &mut acc[ir];
            for jr in 0..NR {
                row[jr] = av.mul_add(b[jr], row[jr]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use laab_dense::gen::OperandGen;

    fn check_case(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, alpha: f64, beta: f64) {
        let mut g = OperandGen::new((m * 31 + n * 7 + k) as u64);
        let (ar, ac) = match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = g.matrix::<f64>(ar, ac);
        let b = g.matrix::<f64>(br, bc);
        let c0 = g.matrix::<f64>(m, n);

        let mut c = c0.clone();
        gemm(alpha, &a, ta, &b, tb, beta, &mut c);
        let want = reference::gemm_naive(alpha, &a, ta, &b, tb, beta, &c0);
        assert!(
            c.approx_eq(&want, 1e-12),
            "gemm mismatch m={m} n={n} k={k} ta={ta:?} tb={tb:?} alpha={alpha} beta={beta}: \
             dist={}",
            c.rel_dist(&want)
        );
    }

    #[test]
    fn matches_reference_all_trans_combos() {
        for &(ta, tb) in &[
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            check_case(17, 13, 9, ta, tb, 1.0, 0.0);
        }
    }

    #[test]
    fn matches_reference_alpha_beta() {
        check_case(8, 8, 8, Trans::No, Trans::No, 2.5, 0.5);
        check_case(5, 9, 3, Trans::Yes, Trans::No, -1.0, 1.0);
        check_case(12, 4, 20, Trans::No, Trans::Yes, 0.0, 2.0);
    }

    #[test]
    fn ragged_sizes_cross_tile_boundaries() {
        // Exercise the zero-padding paths: sizes straddling MR/NR/MC/KC.
        for &(m, n, k) in &[(1, 1, 1), (3, 9, 5), (4, 8, 256), (5, 9, 257), (130, 17, 300)] {
            check_case(m, n, k, Trans::No, Trans::No, 1.0, 0.0);
        }
    }

    #[test]
    fn vector_shapes() {
        // n = 1 (matrix-vector through GEMM) and m = 1 (row-vector-matrix).
        check_case(64, 1, 64, Trans::No, Trans::No, 1.0, 0.0);
        check_case(1, 64, 64, Trans::No, Trans::No, 1.0, 0.0);
        check_case(1, 1, 128, Trans::No, Trans::No, 1.0, 0.0);
    }

    #[test]
    fn matmul_allocates_correct_shape() {
        let mut g = OperandGen::new(9);
        let a = g.matrix::<f32>(6, 4);
        let b = g.matrix::<f32>(6, 5);
        let c = matmul(&a, Trans::Yes, &b, Trans::No);
        assert_eq!(c.shape(), (4, 5));
    }

    #[test]
    fn beta_zero_overwrites_nans() {
        let a = Matrix::<f64>::identity(4);
        let b = Matrix::<f64>::identity(4);
        let mut c = Matrix::<f64>::filled(4, 4, f64::NAN);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
        assert!(c.all_finite(), "beta=0 must not propagate NaNs");
        assert!(c.approx_eq(&Matrix::identity(4), 1e-15));
    }

    #[test]
    fn records_counters() {
        counters::reset();
        let a = Matrix::<f32>::identity(10);
        let b = Matrix::<f32>::identity(10);
        let _ = matmul(&a, Trans::No, &b, Trans::No);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemm), 1);
        assert_eq!(s.flops(Kernel::Gemm), 2000);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut g = OperandGen::new(77);
        let a = g.matrix::<f64>(97, 53);
        let b = g.matrix::<f64>(53, 41);
        let serial = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(4);
        let parallel = matmul(&a, Trans::No, &b, Trans::No);
        crate::set_num_threads(1);
        assert!(parallel.approx_eq(&serial, 1e-13));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        let _ = matmul(&a, Trans::No, &b, Trans::No);
    }
}
