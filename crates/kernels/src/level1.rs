//! BLAS Level-1: vector-vector kernels.
//!
//! These are the building blocks of the "hand-coded SciPy" baselines in
//! Experiment 3 (a tridiagonal product expressed as a sequence of `SCAL`
//! calls) and of the recommended implementations in Experiment 5 (a single
//! `DOT` instead of a full GEMM).

use laab_dense::Scalar;

use crate::counters::{self, Kernel};
use crate::flops;

/// Inner product `xᵀ·y`.
///
/// # Panics
/// If the slices have different lengths.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    counters::record(Kernel::Dot, flops::dot(x.len()));
    // Four partial accumulators break the dependency chain so the loop
    // vectorizes; the remainder is handled scalar.
    let mut acc = [T::ZERO; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let xi = &x[c * 4..c * 4 + 4];
        let yi = &y[c * 4..c * 4 + 4];
        for l in 0..4 {
            acc[l] = xi[l].mul_add(yi[l], acc[l]);
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..x.len() {
        total = x[i].mul_add(y[i], total);
    }
    total
}

/// `y := α·x + y`.
///
/// # Panics
/// If the slices have different lengths.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    counters::record(Kernel::Axpy, flops::axpy(x.len()));
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// `x := α·x`.
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    counters::record(Kernel::Scal, flops::scal(x.len()));
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    counters::record(Kernel::Nrm2, flops::nrm2(x.len()));
    let mut acc = T::ZERO;
    for &xi in x {
        acc = xi.mul_add(xi, acc);
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i * 2) as f64).collect();
        let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(dot(&x, &y), want);
    }

    #[test]
    fn dot_empty_is_zero() {
        let e: [f32; 0] = [];
        assert_eq!(dot(&e, &e), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0f64, -2.0, 4.0];
        scal(0.5, &mut x);
        assert_eq!(x, [0.5, -1.0, 2.0]);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert!((nrm2(&[3.0f64, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn counters_recorded() {
        counters::reset();
        let x = [1.0f32; 8];
        let mut y = [0.0f32; 8];
        let _ = dot(&x, &x);
        axpy(1.0, &x, &mut y);
        scal(2.0, &mut y);
        let _ = nrm2(&y);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Dot), 1);
        assert_eq!(s.calls(Kernel::Axpy), 1);
        assert_eq!(s.calls(Kernel::Scal), 1);
        assert_eq!(s.calls(Kernel::Nrm2), 1);
        assert_eq!(s.flops(Kernel::Dot), 16);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0f32], &[1.0f32, 2.0]);
    }
}
