//! BLAS Level-2: matrix-vector kernels.
//!
//! `GEMV` is what makes the right-to-left parenthesization of `HᵀHx` an
//! O(n²) computation (Experiment 2); `GER` is the outer-product update used
//! by the loop-invariant code-motion workload (Experiment 5).

use laab_dense::{Matrix, Scalar};

use crate::counters::{self, Kernel};
use crate::view::View;
use crate::{flops, Trans};

/// `y := α·op(A)·x + β·y` for a column vector `x` (`k×1`) and `y` (`m×1`).
///
/// # Panics
/// On shape mismatch or if `x`/`y` are not column vectors.
pub fn gemv<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    x: &Matrix<T>,
    beta: T,
    y: &mut Matrix<T>,
) {
    assert_eq!(x.cols(), 1, "gemv: x must be a column vector");
    assert_eq!(y.cols(), 1, "gemv: y must be a column vector");
    let av = View::of(a, ta);
    let (m, k) = (av.rows, av.cols);
    assert_eq!(x.rows(), k, "gemv: x length {} != {k}", x.rows());
    assert_eq!(y.rows(), m, "gemv: y length {} != {m}", y.rows());
    counters::record(Kernel::Gemv, flops::gemv(m, k));

    let xs = x.as_slice();
    match ta {
        Trans::No => {
            // Row-major A: each y[i] is a contiguous dot product.
            for i in 0..m {
                let row = &av.data[i * av.rs..i * av.rs + k];
                let mut acc = T::ZERO;
                for (aij, &xj) in row.iter().zip(xs) {
                    acc = aij.mul_add(xj, acc);
                }
                let base = if beta == T::ZERO { T::ZERO } else { beta * y[(i, 0)] };
                y[(i, 0)] = alpha.mul_add(acc, base);
            }
        }
        Trans::Yes => {
            // Aᵀx: accumulate axpy-style over the rows of A (contiguous).
            let mut acc = vec![T::ZERO; m];
            for (j, &xj) in xs.iter().enumerate().take(k) {
                let row = &a.as_slice()[j * a.cols()..j * a.cols() + m];
                for (ai, &aji) in acc.iter_mut().zip(row) {
                    *ai = xj.mul_add(aji, *ai);
                }
            }
            for i in 0..m {
                let base = if beta == T::ZERO { T::ZERO } else { beta * y[(i, 0)] };
                y[(i, 0)] = alpha.mul_add(acc[i], base);
            }
        }
    }
}

/// Convenience wrapper allocating the output: `op(A)·x`.
pub fn gemv_alloc<T: Scalar>(a: &Matrix<T>, ta: Trans, x: &Matrix<T>) -> Matrix<T> {
    let (m, _) = ta.dims(a.rows(), a.cols());
    let mut y = Matrix::zeros(m, 1);
    gemv(T::ONE, a, ta, x, T::ZERO, &mut y);
    y
}

/// Rank-1 update `A := α·x·yᵀ + A` for column vectors `x` (`m×1`), `y` (`n×1`).
pub fn ger<T: Scalar>(alpha: T, x: &Matrix<T>, y: &Matrix<T>, a: &mut Matrix<T>) {
    assert_eq!(x.cols(), 1, "ger: x must be a column vector");
    assert_eq!(y.cols(), 1, "ger: y must be a column vector");
    let (m, n) = a.shape();
    assert_eq!(x.rows(), m, "ger: x length mismatch");
    assert_eq!(y.rows(), n, "ger: y length mismatch");
    counters::record(Kernel::Ger, flops::ger(m, n));
    for i in 0..m {
        let xi = alpha * x[(i, 0)];
        let row = a.row_mut(i);
        for (av, j) in row.iter_mut().zip(0..n) {
            *av = xi.mul_add(y[(j, 0)], *av);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use laab_dense::gen::OperandGen;

    #[test]
    fn gemv_matches_reference_no_trans() {
        let mut g = OperandGen::new(11);
        let a = g.matrix::<f64>(9, 7);
        let x = g.col_vector::<f64>(7);
        let y = gemv_alloc(&a, Trans::No, &x);
        assert!(y.approx_eq(&reference::gemv_naive(&a, Trans::No, &x), 1e-13));
    }

    #[test]
    fn gemv_matches_reference_trans() {
        let mut g = OperandGen::new(12);
        let a = g.matrix::<f64>(9, 7);
        let x = g.col_vector::<f64>(9);
        let y = gemv_alloc(&a, Trans::Yes, &x);
        assert!(y.approx_eq(&reference::gemv_naive(&a, Trans::Yes, &x), 1e-13));
    }

    #[test]
    fn gemv_alpha_beta() {
        let mut g = OperandGen::new(13);
        let a = g.matrix::<f64>(5, 5);
        let x = g.col_vector::<f64>(5);
        let y0 = g.col_vector::<f64>(5);
        let mut y = y0.clone();
        gemv(2.0, &a, Trans::No, &x, 3.0, &mut y);
        let ax = reference::gemv_naive(&a, Trans::No, &x);
        for i in 0..5 {
            let want = 2.0 * ax[(i, 0)] + 3.0 * y0[(i, 0)];
            assert!((y[(i, 0)] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn ger_matches_gemm_of_outer_product() {
        let mut g = OperandGen::new(14);
        let x = g.col_vector::<f64>(6);
        let y = g.col_vector::<f64>(4);
        let mut a = Matrix::<f64>::zeros(6, 4);
        ger(1.0, &x, &y, &mut a);
        let want =
            reference::gemm_naive(1.0, &x, Trans::No, &y, Trans::Yes, 0.0, &Matrix::zeros(6, 4));
        assert!(a.approx_eq(&want, 1e-13));
    }

    #[test]
    fn counters_recorded() {
        counters::reset();
        let a = Matrix::<f32>::identity(8);
        let x = Matrix::<f32>::col_vector(&[1.0; 8]);
        let _ = gemv_alloc(&a, Trans::No, &x);
        let mut m = Matrix::<f32>::zeros(8, 8);
        ger(1.0, &x, &x, &mut m);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Gemv), 1);
        assert_eq!(s.flops(Kernel::Gemv), 128);
        assert_eq!(s.calls(Kernel::Ger), 1);
    }

    #[test]
    #[should_panic(expected = "column vector")]
    fn gemv_rejects_row_vector() {
        let a = Matrix::<f32>::identity(3);
        let x = Matrix::<f32>::row_vector(&[1.0, 2.0, 3.0]);
        let _ = gemv_alloc(&a, Trans::No, &x);
    }
}
