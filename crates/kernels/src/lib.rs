//! # laab-kernels — the BLAS substrate
//!
//! A pure-Rust stand-in for the optimized BLAS library (Intel MKL in the
//! paper) that both the "hand-coded" (SciPy-style) baselines and the
//! framework analogue link against. One substrate, two consumers — exactly
//! the relationship the paper benchmarks.
//!
//! ## Kernel inventory
//!
//! | Level | Kernels |
//! |-------|---------|
//! | 1 | [`dot`], [`axpy`], [`scal`], [`nrm2`] |
//! | 2 | [`gemv`], [`ger`] |
//! | 3 | [`gemm`] (packed + blocked + microkernel), [`trmm`], [`syrk`] |
//! | structured | [`tridiag_matmul`], [`diag_matmul`] |
//! | elementwise | [`geadd`] (`C := αA + βB`) |
//!
//! ## Instrumentation
//!
//! Every public kernel records its invocation and FLOP count into
//! thread-local [`counters`]. The graph executor and the test-suite use the
//! counters to make the paper's *analytical* claims (e.g. "expression `E3`
//! costs three GEMMs, `E2` only two") machine-checkable, independent of
//! wall-clock noise.
//!
//! ## Parallelism
//!
//! The paper's measurements are single-threaded; so is the default here.
//! [`set_num_threads`] enables the persistent worker pool: GEMM schedules
//! a 2-D (row-block × column-chunk) tile grid over a shared packed-B
//! panel via [`parallel_for`], and the structured kernels split row
//! chunks the same way. The tile decomposition preserves each element's
//! reduction order, so 1-thread and N-thread runs are bit-identical. Used
//! by the thread-scaling ablation, `laab bench`, and the `Flow` profile's
//! `tridiagonal_matmul` (the paper notes TF parallelizes the row
//! scalings).

#![deny(missing_docs)]

pub mod counters;
mod dispatch;
pub mod flops;
mod gemm;
mod level1;
mod level2;
mod parallel;
pub mod reference;
pub mod seed;
mod simd;
pub mod solve;
mod structured;
mod trmm_syrk;
mod view;
mod workspace;

pub use dispatch::matmul_dispatch;
pub use gemm::{
    gemm, gemm_multi_rhs, gemm_multi_rhs_into, matmul, matmul_multi_rhs, matmul_multi_rhs_parts,
};
pub use level1::{axpy, dot, nrm2, scal};
pub use level2::{gemv, gemv_alloc, ger};
pub use parallel::{num_threads, parallel_for, parallel_row_chunks, set_num_threads};
pub use solve::{cholesky, cholesky_solve, lu_factor, lu_solve, lu_solve_full, trsm};
pub use structured::{diag_matmul, geadd, geadd_assign, gescale_assign, tridiag_matmul};
pub use trmm_syrk::{symmetrize_lower, syrk, trmm, UpLo};

/// Transposition flag for Level-2/3 kernels, mirroring the BLAS `trans`
/// parameter. Frameworks fold user-written transposes into this flag (rather
/// than materializing `Aᵀ`), which is why the paper's Table I row 1 shows
/// `AᵀB` costing exactly one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Logical `(rows, cols)` of `op(A)` for an `A` with shape `(r, c)`.
    #[inline]
    pub fn dims(self, r: usize, c: usize) -> (usize, usize) {
        match self {
            Trans::No => (r, c),
            Trans::Yes => (c, r),
        }
    }

    /// Flip the flag (used when rewriting `(AᵀB)ᵀ` style expressions).
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trans_dims_and_flip() {
        assert_eq!(Trans::No.dims(2, 3), (2, 3));
        assert_eq!(Trans::Yes.dims(2, 3), (3, 2));
        assert_eq!(Trans::No.flip(), Trans::Yes);
        assert_eq!(Trans::Yes.flip(), Trans::No);
    }
}
