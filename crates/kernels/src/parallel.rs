//! Thread configuration and the row-partitioned parallel helper.
//!
//! The paper measures single-threaded execution (Sec. III), so the default
//! thread count is 1. The thread-scaling ablation and the `Flow` profile's
//! parallel `tridiagonal_matmul` raise it via [`set_num_threads`]. Worker
//! threads are `std::thread` *scoped* threads: no pool lifetime management,
//! no `'static` bounds, and data-race freedom enforced by disjoint `&mut`
//! row chunks.

use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the number of threads used by parallel-capable kernels (clamped to a
/// minimum of 1). Affects all threads; intended to be set once per run.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current kernel thread count.
pub fn num_threads() -> usize {
    NUM_THREADS.load(Ordering::Relaxed)
}

/// Partition `buf` (a row-major buffer of `rows` rows, each `width` wide)
/// into contiguous row chunks and run `f(first_row, chunk)` on each, using up
/// to [`num_threads`] scoped threads.
///
/// With one thread (the default, matching the paper's setup) this is a plain
/// call with no spawn overhead.
pub fn parallel_row_chunks<T, F>(buf: &mut [T], rows: usize, width: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert!(buf.len() >= rows * width);
    let threads = num_threads().min(rows.max(1));
    if threads <= 1 || rows == 0 {
        f(0, buf);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, chunk) in buf[..rows * width].chunks_mut(rows_per * width).enumerate() {
            let f = &f;
            s.spawn(move || f(ci * rows_per, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_threaded() {
        // Other tests may have changed the global; force-check set/get.
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
        set_num_threads(0);
        assert_eq!(num_threads(), 1, "clamped to >= 1");
    }

    #[test]
    fn chunks_cover_all_rows_single_thread() {
        set_num_threads(1);
        let mut buf = vec![0u32; 12];
        parallel_row_chunks(&mut buf, 4, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as u32 + 1;
                }
            }
        });
        assert_eq!(buf, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn chunks_cover_all_rows_multi_thread() {
        set_num_threads(3);
        let mut buf = vec![0u32; 30];
        parallel_row_chunks(&mut buf, 10, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as u32 + 1;
                }
            }
        });
        set_num_threads(1);
        for r in 0..10 {
            for c in 0..3 {
                assert_eq!(buf[r * 3 + c], r as u32 + 1);
            }
        }
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        set_num_threads(16);
        let mut buf = vec![0u8; 6];
        parallel_row_chunks(&mut buf, 2, 3, |_r0, chunk| {
            for v in chunk.iter_mut() {
                *v = 9;
            }
        });
        set_num_threads(1);
        assert!(buf.iter().all(|&v| v == 9));
    }
}
