//! Thread configuration and the persistent kernel worker pool.
//!
//! The paper measures single-threaded execution (Sec. III), so the default
//! thread count is 1. The thread-scaling ablation, the `Flow` profile's
//! parallel `tridiagonal_matmul`, and `laab bench` raise it via
//! [`set_num_threads`].
//!
//! Parallel kernels are scheduled on a **persistent worker pool**: workers
//! are spawned lazily on first use, then park on a per-worker mailbox
//! between regions, so steady-state parallel GEMMs pay no thread-spawn
//! cost. A parallel region hands every worker the same job — a shared
//! task-index counter drained with `fetch_add` — which gives dynamic load
//! balancing over arbitrarily shaped tile grids (the 2-D m×n GEMM
//! decomposition) rather than the fixed row split the previous
//! scoped-thread design was limited to.
//!
//! Determinism: the pool only distributes *which thread* runs a task;
//! tasks themselves are fixed, disjoint units whose floating-point
//! evaluation order does not depend on the thread count. Kernels built on
//! [`parallel_for`] therefore produce bit-identical results at 1 and N
//! threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Upper bound on pool size; `set_num_threads` beyond this is clamped at
/// region-entry (a backstop against pathological configuration, not a
/// tuning knob).
const MAX_POOL: usize = 64;

/// Set the number of threads used by parallel-capable kernels (clamped to a
/// minimum of 1). Affects all threads; intended to be set once per run.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current kernel thread count.
pub fn num_threads() -> usize {
    NUM_THREADS.load(Ordering::Relaxed)
}

/// A lifetime-erased parallel region: workers call `body` with task
/// indices drained from the pool's shared counter.
///
/// Soundness: the reference is only dereferenced between job hand-off and
/// the worker's `done` increment, and [`Pool::run`] does not return (or
/// unwind) past its caller's frame until every helper has incremented
/// `done` — see the `WaitForHelpers` guard.
#[derive(Clone, Copy)]
struct Job {
    body: &'static (dyn Fn(usize) + Sync),
    tasks: usize,
}

struct Worker {
    mailbox: Mutex<Option<Job>>,
    cv: Condvar,
}

struct Pool {
    /// Serializes parallel regions: one region owns the pool at a time
    /// (concurrent callers run their region back-to-back, never
    /// interleaved on the same workers).
    region: Mutex<()>,
    /// Next task index of the active region.
    next: AtomicUsize,
    /// Helpers that finished the active region.
    done: Mutex<usize>,
    done_cv: Condvar,
    /// Set when a helper's task panicked; the region re-panics on the
    /// caller thread after completion.
    panicked: AtomicBool,
    workers: Mutex<Vec<Arc<Worker>>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        region: Mutex::new(()),
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        done_cv: Condvar::new(),
        panicked: AtomicBool::new(false),
        workers: Mutex::new(Vec::new()),
    })
}

thread_local! {
    /// `true` while this thread is inside a parallel region (as caller or
    /// as pool worker). Nested regions degrade to serial execution instead
    /// of deadlocking on the region lock.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Run `body(0..tasks)` with up to `threads` threads (the caller
/// participates; up to `threads - 1` pool workers help). Tasks are
/// claimed dynamically, one index at a time, from a shared counter.
/// Kernels typically pass [`num_threads`] — or a smaller count when the
/// problem is too small to amortize the hand-off.
///
/// Falls back to a plain serial loop when one thread suffices, when the
/// region is nested inside another parallel region, or when there is at
/// most one task. Callers must ensure distinct task indices touch
/// disjoint data.
///
/// # Panics
/// Propagates a panic from `body` (after all helpers have quiesced).
pub fn parallel_for<F>(threads: usize, tasks: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let helpers = threads.min(MAX_POOL).saturating_sub(1).min(tasks.saturating_sub(1));
    if helpers == 0 || IN_REGION.with(|f| f.get()) {
        for i in 0..tasks {
            body(i);
        }
        return;
    }
    IN_REGION.with(|f| f.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool().run(helpers, tasks, &body);
    }));
    IN_REGION.with(|f| f.set(false));
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Drop guard that blocks until `count` helpers have bumped the pool's
/// `done` latch. Running this in `Drop` keeps the erased `Job` reference
/// alive past the helpers' last dereference **even when the caller's own
/// share of the region panics**.
struct WaitForHelpers {
    pool: &'static Pool,
    count: usize,
}

impl Drop for WaitForHelpers {
    fn drop(&mut self) {
        let mut done = self.pool.done.lock().unwrap_or_else(|e| e.into_inner());
        while *done < self.count {
            done = self.pool.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Pool {
    fn run(&'static self, helpers: usize, tasks: usize, body: &(dyn Fn(usize) + Sync)) {
        let _region = self.region.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the erased reference outlives every dereference — the
        // WaitForHelpers guard below does not let this frame exit until
        // each helper has incremented `done`, which each helper does only
        // after its final `body` call.
        let body: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };
        self.next.store(0, Ordering::Relaxed);
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = 0;
        self.panicked.store(false, Ordering::Relaxed);

        let workers = self.ensure_workers(helpers);
        let wait = WaitForHelpers { pool: self, count: workers.len() };
        let job = Job { body, tasks };
        for w in &workers {
            *w.mailbox.lock().unwrap_or_else(|e| e.into_inner()) = Some(job);
            w.cv.notify_one();
        }
        // The caller is a full participant.
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            body(i);
        }
        drop(wait);
        if self.panicked.load(Ordering::Relaxed) {
            panic!("laab-kernels: a pool worker panicked inside a parallel region");
        }
    }

    /// Grow the pool to at least `want` workers and return the first
    /// `want` of them.
    fn ensure_workers(&'static self, want: usize) -> Vec<Arc<Worker>> {
        let mut ws = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while ws.len() < want {
            let worker = Arc::new(Worker { mailbox: Mutex::new(None), cv: Condvar::new() });
            let handle = Arc::clone(&worker);
            std::thread::Builder::new()
                .name(format!("laab-worker-{}", ws.len()))
                .spawn(move || worker_loop(pool(), &handle))
                .expect("laab-kernels: cannot spawn pool worker");
            ws.push(worker);
        }
        ws[..want].to_vec()
    }
}

fn worker_loop(pool: &'static Pool, me: &Worker) {
    // Workers never open nested regions of their own.
    IN_REGION.with(|f| f.set(true));
    loop {
        let job = {
            let mut mailbox = me.mailbox.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = mailbox.take() {
                    break job;
                }
                mailbox = me.cv.wait(mailbox).unwrap_or_else(|e| e.into_inner());
            }
        };
        let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let i = pool.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks {
                break;
            }
            (job.body)(i);
        }));
        if drained.is_err() {
            pool.panicked.store(true, Ordering::Relaxed);
            // Park the counter past the end so peers stop promptly.
            pool.next.store(usize::MAX / 2, Ordering::Relaxed);
        }
        // Last touch of the job: after this increment the erased `body`
        // reference is never dereferenced again by this worker.
        let mut done = pool.done.lock().unwrap_or_else(|e| e.into_inner());
        *done += 1;
        pool.done_cv.notify_all();
    }
}

/// Partition `buf` (a row-major buffer of `rows` rows, each `width` wide)
/// into contiguous row chunks and run `f(first_row, chunk)` on each, using
/// the worker pool (up to [`num_threads`] threads).
///
/// With one thread (the default, matching the paper's setup) this is a
/// plain call with no scheduling overhead. The chunk decomposition is a
/// pure partition of the index space, so results are bit-identical at any
/// thread count.
pub fn parallel_row_chunks<T, F>(buf: &mut [T], rows: usize, width: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    // Hard check (not debug_assert): the parallel path manufactures chunk
    // slices from raw offsets, so an undersized buffer must stay a
    // deterministic panic rather than become out-of-bounds writes.
    assert!(buf.len() >= rows * width, "parallel_row_chunks: buffer smaller than rows*width");
    let threads = num_threads().min(rows.max(1));
    if threads <= 1 || rows == 0 {
        f(0, buf);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let chunks = rows.div_ceil(rows_per);
    let base = buf.as_mut_ptr() as usize;
    parallel_for(threads, chunks, |ci| {
        let r0 = ci * rows_per;
        let r1 = (r0 + rows_per).min(rows);
        // SAFETY: chunk `ci` covers rows [r0, r1) — ranges for distinct
        // task indices are disjoint, and `buf` is borrowed mutably for the
        // whole region (T: Send moves the elements' access across threads).
        let chunk = unsafe {
            std::slice::from_raw_parts_mut((base as *mut T).add(r0 * width), (r1 - r0) * width)
        };
        f(r0, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_threaded() {
        // Other tests may have changed the global; force-check set/get.
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
        set_num_threads(0);
        assert_eq!(num_threads(), 1, "clamped to >= 1");
    }

    #[test]
    fn chunks_cover_all_rows_single_thread() {
        set_num_threads(1);
        let mut buf = vec![0u32; 12];
        parallel_row_chunks(&mut buf, 4, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as u32 + 1;
                }
            }
        });
        assert_eq!(buf, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn chunks_cover_all_rows_multi_thread() {
        set_num_threads(3);
        let mut buf = vec![0u32; 30];
        parallel_row_chunks(&mut buf, 10, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + i) as u32 + 1;
                }
            }
        });
        set_num_threads(1);
        for r in 0..10 {
            for c in 0..3 {
                assert_eq!(buf[r * 3 + c], r as u32 + 1);
            }
        }
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        set_num_threads(16);
        let mut buf = vec![0u8; 6];
        parallel_row_chunks(&mut buf, 2, 3, |_r0, chunk| {
            for v in chunk.iter_mut() {
                *v = 9;
            }
        });
        set_num_threads(1);
        assert!(buf.iter().all(|&v| v == 9));
    }

    #[test]
    fn parallel_for_visits_every_task_once() {
        set_num_threads(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(num_threads(), hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        set_num_threads(1);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} ran a wrong number of times");
        }
    }

    #[test]
    fn parallel_for_zero_and_one_tasks() {
        set_num_threads(4);
        let count = AtomicUsize::new(0);
        parallel_for(num_threads(), 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        parallel_for(num_threads(), 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        set_num_threads(1);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_regions_degrade_to_serial() {
        set_num_threads(4);
        let total = AtomicUsize::new(0);
        parallel_for(num_threads(), 3, |_| {
            // A nested region must not deadlock on the pool lock.
            parallel_for(num_threads(), 5, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        set_num_threads(1);
        assert_eq!(total.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn pool_reuse_across_many_regions() {
        set_num_threads(3);
        for round in 1..20usize {
            let sum = AtomicUsize::new(0);
            parallel_for(num_threads(), round * 3, |i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            let n = round * 3;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
        set_num_threads(1);
    }
}
