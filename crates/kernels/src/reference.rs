//! Naive reference implementations.
//!
//! Textbook triple loops used as oracles by the unit and property tests of
//! every optimized kernel. They are deliberately simple (no blocking, no
//! packing, no instrumentation) and O(n³); use them only at test sizes.

use laab_dense::{Diagonal, Matrix, Scalar, Tridiagonal};

use crate::Trans;

#[inline]
fn at<T: Scalar>(m: &Matrix<T>, t: Trans, i: usize, j: usize) -> T {
    match t {
        Trans::No => m[(i, j)],
        Trans::Yes => m[(j, i)],
    }
}

/// Naive `α·op(A)·op(B) + β·C₀`, returning a fresh matrix.
pub fn gemm_naive<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    b: &Matrix<T>,
    tb: Trans,
    beta: T,
    c0: &Matrix<T>,
) -> Matrix<T> {
    let (m, k) = ta.dims(a.rows(), a.cols());
    let (k2, n) = tb.dims(b.rows(), b.cols());
    assert_eq!(k, k2, "gemm_naive: inner dimensions differ");
    assert_eq!(c0.shape(), (m, n), "gemm_naive: C shape mismatch");
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc += at(a, ta, i, p) * at(b, tb, p, j);
            }
            let base = if beta == T::ZERO { T::ZERO } else { beta * c0[(i, j)] };
            c[(i, j)] = alpha * acc + base;
        }
    }
    c
}

/// Naive `op(A)·x` for a column vector `x` (`n×1`).
pub fn gemv_naive<T: Scalar>(a: &Matrix<T>, ta: Trans, x: &Matrix<T>) -> Matrix<T> {
    assert_eq!(x.cols(), 1, "gemv_naive: x must be a column vector");
    let (m, k) = ta.dims(a.rows(), a.cols());
    assert_eq!(k, x.rows(), "gemv_naive: dimension mismatch");
    let mut y = Matrix::zeros(m, 1);
    for i in 0..m {
        let mut acc = T::ZERO;
        for p in 0..k {
            acc += at(a, ta, i, p) * x[(p, 0)];
        }
        y[(i, 0)] = acc;
    }
    y
}

/// Naive lower-triangular product `L·B` (uses only `j ≤ i` of `L`).
pub fn trmm_lower_naive<T: Scalar>(l: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert!(l.is_square());
    assert_eq!(l.cols(), b.rows());
    let (n, m) = (l.rows(), b.cols());
    let mut c = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            let mut acc = T::ZERO;
            for k in 0..=i {
                acc += l[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Naive `A·Aᵀ` (full result; symmetric by construction).
pub fn syrk_naive<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let (n, k) = a.shape();
    let mut c = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc += a[(i, p)] * a[(j, p)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Naive elementwise `α·A + β·B` (no counters, like every oracle here).
pub fn geadd_naive<T: Scalar>(alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.shape(), b.shape(), "geadd_naive: shape mismatch");
    Matrix::from_fn(a.rows(), a.cols(), |i, j| alpha * a[(i, j)] + beta * b[(i, j)])
}

/// Naive scaling `α·X`, in the executor's `α·x + 0·x` form so it is
/// bitwise-identical to the optimized scale paths even on non-finite
/// inputs (`0·inf = NaN`) and signed zeros.
pub fn gescale_naive<T: Scalar>(alpha: T, x: &Matrix<T>) -> Matrix<T> {
    Matrix::from_fn(x.rows(), x.cols(), |i, j| alpha * x[(i, j)] + T::ZERO * x[(i, j)])
}

/// Naive tridiagonal product `T·B` from the compact form.
pub fn tridiag_matmul_naive<T: Scalar>(t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = t.n();
    assert_eq!(b.rows(), n);
    let m = b.cols();
    let mut c = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            let mut acc = t.main[i] * b[(i, j)];
            if i > 0 {
                acc += t.sub[i - 1] * b[(i - 1, j)];
            }
            if i + 1 < n {
                acc += t.sup[i] * b[(i + 1, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Naive diagonal product `D·B` from the compact form.
pub fn diag_matmul_naive<T: Scalar>(d: &Diagonal<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = d.n();
    assert_eq!(b.rows(), n);
    let m = b.cols();
    let mut c = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            c[(i, j)] = d.d[i] * b[(i, j)];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_naive_identity() {
        let i3 = Matrix::<f64>::identity(3);
        let a = Matrix::<f64>::from_fn(3, 3, |i, j| (i + j) as f64);
        let c = gemm_naive(1.0, &i3, Trans::No, &a, Trans::No, 0.0, &Matrix::zeros(3, 3));
        assert_eq!(c, a);
    }

    #[test]
    fn gemm_naive_transpose_consistency() {
        let a = Matrix::<f64>::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let b = Matrix::<f64>::from_fn(2, 4, |i, j| (i * 4 + j) as f64);
        // AᵀB computed two ways: flags vs explicit materialization.
        let with_flag = gemm_naive(1.0, &a, Trans::Yes, &b, Trans::No, 0.0, &Matrix::zeros(3, 4));
        let at = a.transpose();
        let explicit = gemm_naive(1.0, &at, Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(3, 4));
        assert_eq!(with_flag, explicit);
    }

    #[test]
    fn structured_references_agree_with_dense_gemm() {
        let mut g = laab_dense::gen::OperandGen::new(5);
        let t = g.tridiagonal::<f64>(8);
        let d = g.diagonal::<f64>(8);
        let b = g.matrix::<f64>(8, 6);
        let via_dense_t =
            gemm_naive(1.0, &t.to_dense(), Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(8, 6));
        assert!(tridiag_matmul_naive(&t, &b).approx_eq(&via_dense_t, 1e-13));
        let via_dense_d =
            gemm_naive(1.0, &d.to_dense(), Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(8, 6));
        assert!(diag_matmul_naive(&d, &b).approx_eq(&via_dense_d, 1e-13));
    }

    #[test]
    fn trmm_and_syrk_naive_match_gemm_naive() {
        let mut g = laab_dense::gen::OperandGen::new(6);
        let l = g.lower_triangular::<f64>(7);
        let b = g.matrix::<f64>(7, 5);
        let via_gemm = gemm_naive(1.0, &l, Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(7, 5));
        assert!(trmm_lower_naive(&l, &b).approx_eq(&via_gemm, 1e-13));

        let a = g.matrix::<f64>(6, 9);
        let aat = gemm_naive(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &Matrix::zeros(6, 6));
        assert!(syrk_naive(&a).approx_eq(&aat, 1e-13));
    }
}
