//! The frozen PR-1 GEMM, kept as the perf-trajectory yardstick.
//!
//! `laab bench` reports the current engine's GFLOP/s as a ratio over this
//! kernel, so the speedup is measured in-process, same build flags, same
//! machine — not against a number recorded on different hardware. Do not
//! "improve" this module; its whole value is that it does not move.
//!
//! Differences from the live engine (`crate::gemm`): per-call `vec!`
//! packing buffers, serial execution only, a generic (unfused) `MR×NR`
//! microkernel, and the original blocking parameters. It records no
//! counters — it is a yardstick, not a dispatchable kernel.

use laab_dense::{Matrix, Scalar};

use crate::view::{MutView, View};
use crate::Trans;

const MR: usize = 4;
const NR: usize = 8;
const MC: usize = 128;
const KC: usize = 256;
const NC: usize = 2048;

/// `C := α·op(A)·op(B) + β·C` with the seed (PR-1) kernel, serial.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm_seed<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    b: &Matrix<T>,
    tb: Trans,
    beta: T,
    c: &mut Matrix<T>,
) {
    let av = View::of(a, ta);
    let bv = View::of(b, tb);
    let (m, ka) = (av.rows, av.cols);
    let (kb, n) = (bv.rows, bv.cols);
    assert_eq!(ka, kb, "gemm_seed: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(c.shape(), (m, n), "gemm_seed: C has shape {:?}, expected ({m}, {n})", c.shape());
    gemm_seed_serial(alpha, av, bv, beta, &mut MutView::of(c));
}

fn gemm_seed_serial<T: Scalar>(
    alpha: T,
    a: View<'_, T>,
    b: View<'_, T>,
    beta: T,
    c: &mut MutView<'_, T>,
) {
    let (m, k) = (a.rows, a.cols);
    let n = b.cols;

    if beta != T::ONE {
        for i in 0..c.rows {
            let row = &mut c.data[i * c.rs..i * c.rs + c.cols];
            for v in row.iter_mut() {
                *v = if beta == T::ZERO { T::ZERO } else { *v * beta };
            }
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let mut packed_a = vec![T::ZERO; MC.min(m).next_multiple_of(MR) * KC.min(k)];
    let mut packed_b = vec![T::ZERO; KC.min(k) * NC.min(n).next_multiple_of(NR)];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut packed_b, b, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut packed_a, a, ic, mc, pc, kc);
                macro_block(alpha, &packed_a, &packed_b, mc, nc, kc, ic, jc, c);
            }
        }
    }
}

fn pack_a<T: Scalar>(buf: &mut [T], a: View<'_, T>, ic: usize, mc: usize, pc: usize, kc: usize) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let base = p * MR * kc;
        let rows = MR.min(mc - p * MR);
        for kk in 0..kc {
            for ir in 0..MR {
                buf[base + kk * MR + ir] =
                    if ir < rows { a.get(ic + p * MR + ir, pc + kk) } else { T::ZERO };
            }
        }
    }
}

fn pack_b<T: Scalar>(buf: &mut [T], b: View<'_, T>, pc: usize, kc: usize, jc: usize, nc: usize) {
    let panels = nc.div_ceil(NR);
    for p in 0..panels {
        let base = p * NR * kc;
        let cols = NR.min(nc - p * NR);
        for kk in 0..kc {
            for jr in 0..NR {
                buf[base + kk * NR + jr] =
                    if jr < cols { b.get(pc + kk, jc + p * NR + jr) } else { T::ZERO };
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn macro_block<T: Scalar>(
    alpha: T,
    packed_a: &[T],
    packed_b: &[T],
    mc: usize,
    nc: usize,
    kc: usize,
    ic: usize,
    jc: usize,
    c: &mut MutView<'_, T>,
) {
    let a_panels = mc.div_ceil(MR);
    let b_panels = nc.div_ceil(NR);
    for jp in 0..b_panels {
        let pb = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
        let j0 = jc + jp * NR;
        let cols = NR.min(nc - jp * NR);
        for ip in 0..a_panels {
            let pa = &packed_a[ip * MR * kc..(ip + 1) * MR * kc];
            let i0 = ic + ip * MR;
            let rows = MR.min(mc - ip * MR);
            let acc = micro_kernel(kc, pa, pb);
            for (ir, acc_row) in acc.iter().enumerate().take(rows) {
                let crow = &mut c.data[(i0 + ir) * c.rs + j0..(i0 + ir) * c.rs + j0 + cols];
                for (cv, &av) in crow.iter_mut().zip(acc_row) {
                    *cv = alpha.mul_add(av, *cv);
                }
            }
        }
    }
}

#[inline(always)]
fn micro_kernel<T: Scalar>(kc: usize, pa: &[T], pb: &[T]) -> [[T; NR]; MR] {
    let mut acc = [[T::ZERO; NR]; MR];
    for kk in 0..kc {
        let a = &pa[kk * MR..kk * MR + MR];
        let b = &pb[kk * NR..kk * NR + NR];
        for ir in 0..MR {
            let av = a[ir];
            let row = &mut acc[ir];
            for jr in 0..NR {
                row[jr] = av.mul_add(b[jr], row[jr]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use laab_dense::gen::OperandGen;

    #[test]
    fn seed_kernel_matches_reference() {
        let mut g = OperandGen::new(91);
        for &(m, n, k) in &[(5, 9, 3), (64, 64, 64), (130, 17, 300)] {
            let a = g.matrix::<f64>(m, k);
            let b = g.matrix::<f64>(k, n);
            let c0 = g.matrix::<f64>(m, n);
            let mut c = c0.clone();
            gemm_seed(1.5, &a, Trans::No, &b, Trans::No, 0.5, &mut c);
            let want = reference::gemm_naive(1.5, &a, Trans::No, &b, Trans::No, 0.5, &c0);
            assert!(c.approx_eq(&want, 1e-12), "m={m} n={n} k={k} dist={}", c.rel_dist(&want));
        }
    }

    #[test]
    fn seed_kernel_records_no_counters() {
        crate::counters::reset();
        let a = Matrix::<f64>::identity(16);
        let b = Matrix::<f64>::identity(16);
        let mut c = Matrix::<f64>::zeros(16, 16);
        gemm_seed(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
        assert_eq!(crate::counters::snapshot().calls(crate::counters::Kernel::Gemm), 0);
    }
}
