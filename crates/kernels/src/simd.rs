//! Scalar-specialized arithmetic helpers for the kernel inner loops.
//!
//! [`Scalar::mul_add`](laab_dense::Scalar::mul_add) deliberately lowers to
//! `a*b + c` so that generic code never falls into the libm soft-FMA trap
//! on targets without a fused unit. The hot inner loops, however, want the
//! real hardware FMA when the build enables it (`.cargo/config.toml` sets
//! `target-cpu=native`): one fused op doubles the floating-point throughput
//! of the GEMM microkernel on every FMA-capable core. This module holds the
//! `f32`/`f64` specializations — a compile-time-gated fused multiply-add
//! and the fused AXPY update shared by TRMM, TRSM, LU, and Cholesky — with
//! a generic fallback for the (by-convention sealed) `Scalar` trait.

use std::any::TypeId;

use laab_dense::Scalar;

macro_rules! fused_impls {
    ($t:ty, $fma:ident, $axpy:ident) => {
        /// `a*b + c`, fused when the target has an FMA unit.
        #[inline(always)]
        pub(crate) fn $fma(a: $t, b: $t, c: $t) -> $t {
            // `cfg!` (not a runtime probe): with a fused unit this is one
            // fmadd; without one, `a*b + c` stays two fast instructions
            // instead of a libm call. ("fma" is the x86 feature name;
            // aarch64 NEON always has fused multiply-add.)
            if cfg!(any(target_feature = "fma", target_arch = "aarch64")) {
                <$t>::mul_add(a, b, c)
            } else {
                a * b + c
            }
        }

        /// `y[i] += alpha * x[i]` over equal-length slices, 4-way unrolled
        /// so the autovectorizer emits wide fused updates.
        #[inline(always)]
        fn $axpy(alpha: $t, x: &[$t], y: &mut [$t]) {
            debug_assert_eq!(x.len(), y.len());
            let n4 = x.len() / 4 * 4;
            let (x4, xt) = x.split_at(n4);
            let (y4, yt) = y.split_at_mut(n4);
            for (yc, xc) in y4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
                yc[0] = $fma(alpha, xc[0], yc[0]);
                yc[1] = $fma(alpha, xc[1], yc[1]);
                yc[2] = $fma(alpha, xc[2], yc[2]);
                yc[3] = $fma(alpha, xc[3], yc[3]);
            }
            for (yv, &xv) in yt.iter_mut().zip(xt) {
                *yv = $fma(alpha, xv, *yv);
            }
        }
    };
}

fused_impls!(f32, fma_f32, axpy_f32);
fused_impls!(f64, fma_f64, axpy_f64);

/// Reinterpret a `&[T]` as `&[U]` when `T` and `U` are the same type.
///
/// Used to route the generic kernels onto the `f32`/`f64` specializations;
/// the `TypeId` equality the callers check makes the cast an identity.
#[inline(always)]
fn same_type<T: 'static, U: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<U>()
}

/// Fused AXPY `y := alpha·x + y` with `f32`/`f64` specialization and a
/// generic (unfused) fallback. The shared inner-loop primitive of the
/// triangular kernels and the factorizations.
#[inline(always)]
pub(crate) fn fused_axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    if same_type::<T, f64>() {
        // SAFETY: T == f64, checked just above; slices reinterpret 1:1.
        let x64 = unsafe { &*(x as *const [T] as *const [f64]) };
        let y64 = unsafe { &mut *(y as *mut [T] as *mut [f64]) };
        axpy_f64(alpha.to_f64(), x64, y64);
    } else if same_type::<T, f32>() {
        // SAFETY: T == f32, checked just above.
        let x32 = unsafe { &*(x as *const [T] as *const [f32]) };
        let y32 = unsafe { &mut *(y as *mut [T] as *mut [f32]) };
        axpy_f32(alpha.to_f64() as f32, x32, y32);
    } else {
        for (yv, &xv) in y.iter_mut().zip(x) {
            *yv = alpha.mul_add(xv, *yv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_axpy_matches_plain_update_f64() {
        let x: Vec<f64> = (0..23).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut y: Vec<f64> = (0..23).map(|i| (i * i) as f64 * 0.25).collect();
        let mut want = y.clone();
        for (w, &xv) in want.iter_mut().zip(&x) {
            *w += -1.75 * xv;
        }
        fused_axpy(-1.75, &x, &mut y);
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn fused_axpy_matches_plain_update_f32() {
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut y = vec![1.0f32; 9];
        fused_axpy(2.0f32, &x, &mut y);
        for (i, &v) in y.iter().enumerate() {
            assert!((v - (1.0 + 2.0 * i as f32)).abs() < 1e-5);
        }
    }

    #[test]
    fn fma_helpers_compute_a_b_plus_c() {
        assert_eq!(fma_f64(2.0, 3.0, 4.0), 10.0);
        assert_eq!(fma_f32(2.0, 3.0, 4.0), 10.0);
    }
}
