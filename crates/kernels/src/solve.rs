//! Linear-system solvers — the paper's named "natural extension".
//!
//! The conclusion of the paper lists "exploitation of properties in the
//! solution of linear systems" as the follow-up study. These kernels supply
//! the substrate: triangular solves (BLAS `TRSM`), Cholesky factorization
//! (LAPACK `POTRF`), and LU with partial pivoting (LAPACK `GETRF`/`GETRS`),
//! with the same FLOP-count conventions as the rest of the suite:
//!
//! | solver | FLOPs for `AX = B`, `A` n×n, `B` n×m |
//! |---|---|
//! | TRSM (triangular `A`) | `n²·m` |
//! | Cholesky + 2 TRSM (SPD `A`) | `n³/3 + 2n²·m` |
//! | LU + 2 TRSM (general `A`) | `2n³/3 + 2n²·m` |
//!
//! A property-aware front-end (`laab_rewrite::solve_aware`) picks the
//! cheapest applicable path, mirroring the Table IV methodology for
//! products.

use laab_dense::{Matrix, Scalar};

use crate::counters::{self, Kernel};
use crate::simd::fused_axpy;
use crate::UpLo;

/// FLOPs of a triangular solve with `m` right-hand sides.
#[inline]
pub fn trsm_flops(n: usize, m: usize) -> u64 {
    n as u64 * n as u64 * m as u64
}

/// FLOPs of a Cholesky factorization.
#[inline]
pub fn cholesky_flops(n: usize) -> u64 {
    (n as u64).pow(3) / 3
}

/// FLOPs of an LU factorization with partial pivoting (defined as exactly
/// twice the Cholesky count so the "half the FLOPs" identity is exact under
/// integer division).
#[inline]
pub fn lu_flops(n: usize) -> u64 {
    2 * cholesky_flops(n)
}

/// Triangular solve `op(L)·X = B` for the `uplo` triangle of `l`; returns
/// `X`. Reads only the populated triangle (BLAS `TRSM`, left side,
/// non-transposed, unit-diagonal *not* assumed).
///
/// # Panics
/// On shape mismatch or an exactly-zero diagonal entry.
pub fn trsm<T: Scalar>(l: &Matrix<T>, uplo: UpLo, b: &Matrix<T>) -> Matrix<T> {
    assert!(l.is_square(), "trsm: triangular factor must be square");
    let n = l.rows();
    assert_eq!(b.rows(), n, "trsm: dimension mismatch");
    let m = b.cols();
    counters::record(Kernel::Trsm, trsm_flops(n, m));

    let mut x = b.clone();
    match uplo {
        UpLo::Lower => {
            // Forward substitution, row-oriented: x[i,:] =
            // (b[i,:] − Σ_{k<i} L[i,k]·x[k,:]) / L[i,i].
            for i in 0..n {
                for k in 0..i {
                    let lik = l[(i, k)];
                    if lik == T::ZERO {
                        continue;
                    }
                    let (head, tail) = x.as_mut_slice().split_at_mut(i * m);
                    let xk = &head[k * m..(k + 1) * m];
                    fused_axpy(-lik, xk, &mut tail[..m]);
                }
                let d = l[(i, i)];
                assert!(d != T::ZERO, "trsm: zero diagonal at row {i}");
                let inv = T::ONE / d;
                for v in x.row_mut(i) {
                    *v *= inv;
                }
            }
        }
        UpLo::Upper => {
            // Backward substitution.
            for i in (0..n).rev() {
                for k in i + 1..n {
                    let uik = l[(i, k)];
                    if uik == T::ZERO {
                        continue;
                    }
                    let (head, tail) = x.as_mut_slice().split_at_mut(k * m);
                    fused_axpy(-uik, &tail[..m], &mut head[i * m..(i + 1) * m]);
                }
                let d = l[(i, i)];
                assert!(d != T::ZERO, "trsm: zero diagonal at row {i}");
                let inv = T::ONE / d;
                for v in x.row_mut(i) {
                    *v *= inv;
                }
            }
        }
    }
    x
}

/// Cholesky factorization `A = L·Lᵀ` of an SPD matrix; returns the lower
/// factor `L`. Only the lower triangle of `a` is read (LAPACK `POTRF`).
///
/// # Errors
/// Returns `Err(row)` when a non-positive pivot is met (the matrix is not
/// positive definite to working precision).
pub fn cholesky<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>, usize> {
    assert!(a.is_square(), "cholesky: matrix must be square");
    let n = a.rows();
    counters::record(Kernel::Potrf, cholesky_flops(n));

    // Right-looking (outer-product) form: after processing column k, the
    // trailing submatrix is updated with contiguous row AXPYs, which
    // vectorize — keeping the per-FLOP speed comparable to the LU kernel so
    // the n³/3-vs-2n³/3 FLOP advantage shows up in wall-clock.
    let mut m = a.clone();
    let mut colk = vec![T::ZERO; n];
    for k in 0..n {
        let d = m[(k, k)];
        // NaN pivots must land in the error branch: `d > 0` is false for
        // NaN, so requiring finite-and-positive keeps that behavior.
        if !(d.is_finite() && d > T::ZERO) {
            return Err(k);
        }
        let dk = d.sqrt();
        m[(k, k)] = dk;
        let inv = T::ONE / dk;
        for i in k + 1..n {
            m[(i, k)] *= inv;
        }
        // Cache column k (strided) once, then update each trailing row
        // contiguously: m[i, k+1..=i] -= m[i,k] * colk[k+1..=i].
        for i in k + 1..n {
            colk[i] = m[(i, k)];
        }
        for i in k + 1..n {
            let nlik = -colk[i];
            if nlik == T::ZERO {
                continue;
            }
            // Fused slice AXPY (not an inclusive index range) so the
            // update vectorizes like the LU kernel's row update.
            fused_axpy(nlik, &colk[k + 1..i + 1], &mut m.row_mut(i)[k + 1..i + 1]);
        }
    }
    // Zero the strictly-upper part (the factor is lower triangular).
    for i in 0..n {
        for j in i + 1..n {
            m[(i, j)] = T::ZERO;
        }
    }
    Ok(m)
}

/// LU factorization with partial pivoting: `P·A = L·U` (LAPACK `GETRF`).
/// Returns `(lu, piv)` where `lu` packs `L` (unit diagonal, below) and `U`
/// (on and above the diagonal) and `piv[k]` is the row swapped into
/// position `k`.
///
/// # Errors
/// Returns `Err(col)` on an exactly-singular column.
pub fn lu_factor<T: Scalar>(a: &Matrix<T>) -> Result<(Matrix<T>, Vec<usize>), usize> {
    assert!(a.is_square(), "lu_factor: matrix must be square");
    let n = a.rows();
    counters::record(Kernel::Getrf, lu_flops(n));

    let mut lu = a.clone();
    let mut piv = Vec::with_capacity(n);
    for k in 0..n {
        // Partial pivot: the largest |entry| in column k at/below row k.
        let mut p = k;
        let mut best = lu[(k, k)].abs();
        for i in k + 1..n {
            let v = lu[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == T::ZERO {
            return Err(k);
        }
        piv.push(p);
        if p != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = tmp;
            }
        }
        let inv = T::ONE / lu[(k, k)];
        for i in k + 1..n {
            let lik = lu[(i, k)] * inv;
            lu[(i, k)] = lik;
            if lik == T::ZERO {
                continue;
            }
            let (top, bottom) = lu.as_mut_slice().split_at_mut(i * n);
            let urow = &top[k * n..(k + 1) * n];
            fused_axpy(-lik, &urow[k + 1..], &mut bottom[k + 1..n]);
        }
    }
    Ok((lu, piv))
}

/// Solve `A·X = B` via a precomputed LU factorization (LAPACK `GETRS`).
pub fn lu_solve<T: Scalar>(lu: &Matrix<T>, piv: &[usize], b: &Matrix<T>) -> Matrix<T> {
    let n = lu.rows();
    assert_eq!(b.rows(), n, "lu_solve: dimension mismatch");
    let m = b.cols();
    // Apply the row permutation to B.
    let mut x = b.clone();
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            for j in 0..m {
                let tmp = x[(k, j)];
                x[(k, j)] = x[(p, j)];
                x[(p, j)] = tmp;
            }
        }
    }
    // Forward substitution with the unit-lower factor (diagonal is 1, not
    // stored), then backward with U.
    counters::record(Kernel::Trsm, 2 * trsm_flops(n, m));
    for i in 0..n {
        for k in 0..i {
            let lik = lu[(i, k)];
            if lik == T::ZERO {
                continue;
            }
            let (head, tail) = x.as_mut_slice().split_at_mut(i * m);
            fused_axpy(-lik, &head[k * m..(k + 1) * m], &mut tail[..m]);
        }
    }
    for i in (0..n).rev() {
        for k in i + 1..n {
            let uik = lu[(i, k)];
            if uik == T::ZERO {
                continue;
            }
            let (head, tail) = x.as_mut_slice().split_at_mut(k * m);
            fused_axpy(-uik, &tail[..m], &mut head[i * m..(i + 1) * m]);
        }
        let inv = T::ONE / lu[(i, i)];
        for v in x.row_mut(i) {
            *v *= inv;
        }
    }
    x
}

/// Solve SPD `A·X = B` by Cholesky + two triangular solves (LAPACK
/// `POTRS` path).
///
/// # Errors
/// Propagates the Cholesky failure row for non-SPD input.
pub fn cholesky_solve<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, usize> {
    let l = cholesky(a)?;
    let y = trsm(&l, UpLo::Lower, b);
    // Lᵀ is upper triangular; materialize once (O(n²)).
    let lt = l.transpose();
    Ok(trsm(&lt, UpLo::Upper, &y))
}

/// Solve general `A·X = B` by LU with partial pivoting.
///
/// # Errors
/// Propagates the singular column for singular input.
pub fn lu_solve_full<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, usize> {
    let (lu, piv) = lu_factor(a)?;
    Ok(lu_solve(&lu, &piv, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, Trans};
    use laab_dense::gen::OperandGen;

    fn residual<T: Scalar>(a: &Matrix<T>, x: &Matrix<T>, b: &Matrix<T>) -> f64 {
        let ax = matmul(a, Trans::No, x, Trans::No);
        ax.rel_dist(b)
    }

    #[test]
    fn trsm_lower_and_upper_solve() {
        let mut g = OperandGen::new(201);
        let n = 24;
        // Well-conditioned triangular factors: bump the diagonal.
        let mut l = g.lower_triangular::<f64>(n);
        for i in 0..n {
            l[(i, i)] = l[(i, i)].abs() + 1.0;
        }
        let b = g.matrix::<f64>(n, 7);
        let x = trsm(&l, UpLo::Lower, &b);
        assert!(residual(&l, &x, &b) < 1e-10);

        let mut u = g.upper_triangular::<f64>(n);
        for i in 0..n {
            u[(i, i)] = u[(i, i)].abs() + 1.0;
        }
        let xu = trsm(&u, UpLo::Upper, &b);
        assert!(residual(&u, &xu, &b) < 1e-10);
    }

    #[test]
    fn trsm_ignores_dead_triangle() {
        let mut g = OperandGen::new(202);
        let n = 10;
        let mut l = g.lower_triangular::<f64>(n);
        for i in 0..n {
            l[(i, i)] = 2.0;
        }
        let clean = l.clone();
        for i in 0..n {
            for j in i + 1..n {
                l[(i, j)] = f64::NAN;
            }
        }
        let b = g.matrix::<f64>(n, 3);
        let x = trsm(&l, UpLo::Lower, &b);
        assert!(x.all_finite());
        assert!(x.approx_eq(&trsm(&clean, UpLo::Lower, &b), 1e-14));
    }

    #[test]
    fn cholesky_reconstructs_spd() {
        let mut g = OperandGen::new(203);
        let a = g.spd::<f64>(20);
        let l = cholesky(&a).expect("SPD must factor");
        let llt = matmul(&l, Trans::No, &l, Trans::Yes);
        assert!(llt.approx_eq(&a, 1e-10));
        // L is lower triangular.
        for i in 0..20 {
            for j in i + 1..20 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Matrix::<f64>::identity(4);
        a[(2, 2)] = -1.0;
        assert_eq!(cholesky(&a), Err(2));
    }

    #[test]
    fn lu_solves_general_systems() {
        let mut g = OperandGen::new(204);
        let n = 30;
        let mut a = g.matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, i)] += 2.0; // keep it comfortably nonsingular
        }
        let b = g.matrix::<f64>(n, 5);
        let x = lu_solve_full(&a, &b).expect("nonsingular");
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn lu_pivots_zero_leading_entry() {
        // A matrix requiring a row swap at step 0.
        let a = Matrix::<f64>::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::<f64>::from_rows(&[&[2.0], &[3.0]]);
        let x = lu_solve_full(&a, &b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::<f64>::zeros(2, 1);
        assert!(lu_solve_full(&a, &b).is_err());
    }

    #[test]
    fn cholesky_solve_matches_lu_solve() {
        let mut g = OperandGen::new(205);
        let a = g.spd::<f64>(16);
        let b = g.matrix::<f64>(16, 3);
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = lu_solve_full(&a, &b).unwrap();
        assert!(x1.approx_eq(&x2, 1e-9));
    }

    #[test]
    fn flop_accounting() {
        counters::reset();
        let mut g = OperandGen::new(206);
        let n = 12;
        let a = g.spd::<f64>(n);
        let b = g.matrix::<f64>(n, 4);
        let _ = cholesky_solve(&a, &b).unwrap();
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::Potrf), 1);
        assert_eq!(s.calls(Kernel::Trsm), 2);
        assert_eq!(s.flops(Kernel::Potrf), cholesky_flops(n));
        let _ = lu_solve_full(&a, &b).unwrap();
        let s2 = counters::snapshot();
        assert_eq!(s2.calls(Kernel::Getrf), 1);
        assert_eq!(s2.flops(Kernel::Getrf), lu_flops(n));
    }
}
