//! Structured products (tridiagonal, diagonal) and the elementwise add.
//!
//! `tridiag_matmul` is the analogue of `tf.linalg.tridiagonal_matmul`
//! (Experiment 3): a fused, row-parallel O(n²) product that beats both the
//! dense GEMM (O(n³)) and the SCAL-sequence hand-coding (which pays one
//! kernel dispatch per row). `diag_matmul` covers the diagonal special case.

use laab_dense::{Diagonal, Matrix, Scalar, Tridiagonal};

use crate::counters::{self, Kernel};
use crate::{flops, parallel_row_chunks};

/// Tridiagonal × dense product `C := T·B` from the compact form.
///
/// Each output row is a fused three-term scaling
/// `C[i,:] = sub[i-1]·B[i-1,:] + main[i]·B[i,:] + sup[i]·B[i+1,:]`;
/// rows are independent, so the kernel parallelizes over row chunks when
/// [`set_num_threads`](crate::set_num_threads) allows (the paper notes TF
/// "takes advantage of the fact that the scaling operations can be executed
/// simultaneously").
pub fn tridiag_matmul<T: Scalar>(t: &Tridiagonal<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = t.n();
    assert_eq!(b.rows(), n, "tridiag_matmul: inner dimensions differ");
    let m = b.cols();
    counters::record(Kernel::TridiagMatmul, flops::tridiag_matmul(n, m));

    let mut c = Matrix::zeros(n, m);
    let bs = b.as_slice();
    parallel_row_chunks(c.as_mut_slice(), n, m, |r0, chunk| {
        for (local, crow) in chunk.chunks_mut(m).enumerate() {
            let i = r0 + local;
            let main = t.main[i];
            let brow = &bs[i * m..(i + 1) * m];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = main * bv;
            }
            if i > 0 {
                let sub = t.sub[i - 1];
                let prev = &bs[(i - 1) * m..i * m];
                for (cv, &bv) in crow.iter_mut().zip(prev) {
                    *cv = sub.mul_add(bv, *cv);
                }
            }
            if i + 1 < n {
                let sup = t.sup[i];
                let next = &bs[(i + 1) * m..(i + 2) * m];
                for (cv, &bv) in crow.iter_mut().zip(next) {
                    *cv = sup.mul_add(bv, *cv);
                }
            }
        }
    });
    c
}

/// Diagonal × dense product `C := D·B` (row scaling), row-parallel.
pub fn diag_matmul<T: Scalar>(d: &Diagonal<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = d.n();
    assert_eq!(b.rows(), n, "diag_matmul: inner dimensions differ");
    let m = b.cols();
    counters::record(Kernel::DiagMatmul, flops::diag_matmul(n, m));

    let mut c = Matrix::zeros(n, m);
    let bs = b.as_slice();
    parallel_row_chunks(c.as_mut_slice(), n, m, |r0, chunk| {
        for (local, crow) in chunk.chunks_mut(m).enumerate() {
            let i = r0 + local;
            let di = d.d[i];
            let brow = &bs[i * m..(i + 1) * m];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = di * bv;
            }
        }
    });
    c
}

/// Elementwise `C := α·A + β·B`.
///
/// Covers matrix addition/subtraction and scalar scaling in one kernel, the
/// way frameworks lower `A + B`, `A - B` and `2·A` nodes.
pub fn geadd<T: Scalar>(alpha: T, a: &Matrix<T>, beta: T, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.shape(), b.shape(), "geadd: shape mismatch");
    let (m, n) = a.shape();
    counters::record(Kernel::GeAdd, flops::geadd(m, n));
    let mut c = Matrix::zeros(m, n);
    let (cs, as_, bs) = (c.as_mut_slice(), a.as_slice(), b.as_slice());
    for i in 0..cs.len() {
        cs[i] = alpha * as_[i] + beta * bs[i];
    }
    c
}

/// In-place elementwise update `A := α·A + β·B` — the buffer-reuse form of
/// [`geadd`] the graph executor applies when the `A` intermediate is
/// uniquely owned (same kernel accounting, no output allocation).
pub fn geadd_assign<T: Scalar>(alpha: T, a: &mut Matrix<T>, beta: T, b: &Matrix<T>) {
    assert_eq!(a.shape(), b.shape(), "geadd_assign: shape mismatch");
    let (m, n) = a.shape();
    counters::record(Kernel::GeAdd, flops::geadd(m, n));
    for (av, &bv) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *av = alpha * *av + beta * bv;
    }
}

/// In-place scaling `A := α·A + 0·A`, lowered and accounted exactly like
/// the allocating `Scale`-node form `geadd(α, A, 0, A)`. The `+ 0·A` term
/// is kept so the in-place and allocating paths are **bitwise identical**
/// even on non-finite inputs (`0·inf = NaN`) and signed zeros.
pub fn gescale_assign<T: Scalar>(alpha: T, a: &mut Matrix<T>) {
    let (m, n) = a.shape();
    counters::record(Kernel::GeAdd, flops::geadd(m, n));
    for av in a.as_mut_slice().iter_mut() {
        *av = alpha * *av + T::ZERO * *av;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use laab_dense::gen::OperandGen;

    #[test]
    fn tridiag_matches_reference() {
        let mut g = OperandGen::new(31);
        for &(n, m) in &[(1, 3), (2, 5), (17, 9), (100, 64)] {
            let t = g.tridiagonal::<f64>(n);
            let b = g.matrix::<f64>(n, m);
            let c = tridiag_matmul(&t, &b);
            let want = reference::tridiag_matmul_naive(&t, &b);
            assert!(c.approx_eq(&want, 1e-13), "n={n} m={m}");
        }
    }

    #[test]
    fn tridiag_parallel_matches_serial() {
        let mut g = OperandGen::new(32);
        let t = g.tridiagonal::<f64>(128);
        let b = g.matrix::<f64>(128, 40);
        let serial = tridiag_matmul(&t, &b);
        crate::set_num_threads(4);
        let parallel = tridiag_matmul(&t, &b);
        crate::set_num_threads(1);
        assert!(parallel.approx_eq(&serial, 1e-15));
    }

    #[test]
    fn tridiag_equals_dense_gemm() {
        let mut g = OperandGen::new(33);
        let t = g.tridiagonal::<f64>(30);
        let b = g.matrix::<f64>(30, 30);
        let via_structured = tridiag_matmul(&t, &b);
        let via_dense = crate::matmul(&t.to_dense(), crate::Trans::No, &b, crate::Trans::No);
        assert!(via_structured.approx_eq(&via_dense, 1e-12));
    }

    #[test]
    fn diag_matches_reference() {
        let mut g = OperandGen::new(34);
        let d = g.diagonal::<f64>(50);
        let b = g.matrix::<f64>(50, 20);
        let c = diag_matmul(&d, &b);
        assert!(c.approx_eq(&reference::diag_matmul_naive(&d, &b), 1e-15));
    }

    #[test]
    fn geadd_combinations() {
        let a = Matrix::<f64>::filled(2, 3, 4.0);
        let b = Matrix::<f64>::filled(2, 3, 10.0);
        assert_eq!(geadd(1.0, &a, 1.0, &b)[(0, 0)], 14.0); // add
        assert_eq!(geadd(1.0, &a, -1.0, &b)[(1, 2)], -6.0); // sub
        assert_eq!(geadd(2.0, &a, 0.0, &b)[(0, 1)], 8.0); // scale
    }

    #[test]
    fn geadd_assign_matches_geadd() {
        let mut g = OperandGen::new(36);
        let a = g.matrix::<f64>(7, 5);
        let b = g.matrix::<f64>(7, 5);
        let want = geadd(2.0, &a, -3.0, &b);
        let mut acc = a.clone();
        geadd_assign(2.0, &mut acc, -3.0, &b);
        assert_eq!(acc, want, "in-place form must be bitwise identical");

        let scaled = geadd(-0.5, &a, 0.0, &a);
        let mut acc2 = a.clone();
        gescale_assign(-0.5, &mut acc2);
        assert_eq!(acc2, scaled);

        // Non-finite and signed-zero inputs must agree bitwise too
        // (0·inf = NaN must appear on both paths or neither).
        let tricky0 = Matrix::<f64>::from_rows(&[&[f64::INFINITY, 0.0, -0.0, -3.0]]);
        let want = geadd(0.5, &tricky0, 0.0, &tricky0);
        let mut tricky = tricky0.clone();
        gescale_assign(0.5, &mut tricky);
        for (got, want) in tricky.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn geadd_assign_records_same_counters() {
        counters::reset();
        let a0 = Matrix::<f32>::filled(4, 6, 1.0);
        let b = Matrix::<f32>::filled(4, 6, 2.0);
        let mut a = a0.clone();
        geadd_assign(1.0, &mut a, 1.0, &b);
        gescale_assign(2.0, &mut a);
        let s = counters::snapshot();
        assert_eq!(s.calls(Kernel::GeAdd), 2);
        assert_eq!(s.flops(Kernel::GeAdd), 2 * flops::geadd(4, 6));
    }

    #[test]
    fn flops_are_low_order() {
        counters::reset();
        let mut g = OperandGen::new(35);
        let t = g.tridiagonal::<f32>(64);
        let d = g.diagonal::<f32>(64);
        let b = g.matrix::<f32>(64, 64);
        let _ = tridiag_matmul(&t, &b);
        let _ = diag_matmul(&d, &b);
        let s = counters::snapshot();
        // 6n² and n² — the paper's Experiment 3 counts.
        assert_eq!(s.flops(Kernel::TridiagMatmul), 6 * 64 * 64);
        assert_eq!(s.flops(Kernel::DiagMatmul), 64 * 64);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn tridiag_shape_mismatch_panics() {
        let t = Tridiagonal::new(vec![1.0f32], vec![1.0, 1.0], vec![1.0]);
        let b = Matrix::<f32>::zeros(3, 3);
        let _ = tridiag_matmul(&t, &b);
    }
}
