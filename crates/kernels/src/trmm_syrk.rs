//! Structure-exploiting Level-3 kernels: TRMM and SYRK.
//!
//! These are the specialized kernels of the paper's Experiment 3: a
//! triangular factor halves the GEMM FLOP count (`n³` instead of `2n³`), and
//! `A·Aᵀ` computed as a symmetric rank-k update also costs `n³`. The paper
//! shows TF/PyT never dispatch to them; the hand-coded (SciPy-style)
//! baselines call them directly.

use laab_dense::{Matrix, Scalar};

use crate::counters::{self, Kernel};
use crate::gemm::gemm_serial;
use crate::simd::fused_axpy;
use crate::view::{MutView, View};
use crate::{flops, Trans};

/// Which triangle of the triangular operand is populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    /// Lower triangular (zeros strictly above the diagonal).
    Lower,
    /// Upper triangular (zeros strictly below the diagonal).
    Upper,
}

/// Row-block size for the blocked TRMM/SYRK sweeps. Off-diagonal work is
/// delegated to the packed GEMM; only `NB`-sized diagonal blocks run the
/// short triangular loops.
const NB: usize = 64;

/// Triangular matrix product `C := α·tri(L)·B`, reading only the `uplo`
/// triangle of `L` (entries in the other triangle are ignored, as in BLAS
/// `TRMM`). Performs `n²·m` FLOPs — half of the equivalent GEMM.
///
/// # Panics
/// If `L` is not square or inner dimensions mismatch.
pub fn trmm<T: Scalar>(alpha: T, l: &Matrix<T>, uplo: UpLo, b: &Matrix<T>) -> Matrix<T> {
    assert!(l.is_square(), "trmm: triangular factor must be square");
    let n = l.rows();
    assert_eq!(b.rows(), n, "trmm: inner dimensions differ");
    let m = b.cols();
    counters::record(Kernel::Trmm, flops::trmm(n, m));

    let mut c = Matrix::zeros(n, m);
    let lv = View::of(l, Trans::No);
    let bv = View::of(b, Trans::No);
    let mut cv = MutView::of(&mut c);

    for i0 in (0..n).step_by(NB) {
        let i1 = (i0 + NB).min(n);
        // Triangular diagonal block: accumulate row-by-row with the fused
        // AXPY (the same FMA-specialized update the GEMM microkernel uses).
        for i in i0..i1 {
            let (k_lo, k_hi) = match uplo {
                UpLo::Lower => (i0, i + 1),
                UpLo::Upper => (i, i1),
            };
            for k in k_lo..k_hi {
                let lik = alpha * l[(i, k)];
                let brow = &bv.data[k * bv.rs..k * bv.rs + m];
                let crow = &mut cv.data[i * cv.rs..i * cv.rs + m];
                fused_axpy(lik, brow, crow);
            }
        }
        // Rectangular off-diagonal part via packed GEMM:
        //   Lower: C[I,:] += L[I, 0..i0] · B[0..i0, :]
        //   Upper: C[I,:] += L[I, i1..n] · B[i1..n, :]
        let (c0, c1) = match uplo {
            UpLo::Lower => (0, i0),
            UpLo::Upper => (i1, n),
        };
        if c1 > c0 {
            let a_sub = lv.sub(i0, i1, c0, c1);
            let b_sub = bv.sub(c0, c1, 0, m);
            let mut c_sub = cv.sub(i0, i1, 0, m);
            gemm_serial(alpha, a_sub, b_sub, T::ONE, &mut c_sub);
        }
    }
    c
}

/// Symmetric rank-k update `C := α·A·Aᵀ` for `A` of shape `n×k`, returning
/// the full (symmetrized) `n×n` result. Only the lower triangle is computed
/// (`n²·k` FLOPs — half of the equivalent GEMM); the upper triangle is
/// mirrored afterwards, an O(n²) copy.
pub fn syrk<T: Scalar>(alpha: T, a: &Matrix<T>) -> Matrix<T> {
    let (n, k) = a.shape();
    counters::record(Kernel::Syrk, flops::syrk(n, k));

    let mut c = Matrix::zeros(n, n);
    let av = View::of(a, Trans::No);
    let atv = View::of(a, Trans::Yes);
    let mut cv = MutView::of(&mut c);

    for i0 in (0..n).step_by(NB) {
        let i1 = (i0 + NB).min(n);
        // Blocks strictly below the diagonal plus the diagonal block itself;
        // the diagonal block is computed densely (the ≤ NB·n·k extra FLOPs
        // are noise at benchmark sizes and keep the hot path in the packed
        // GEMM).
        let a_rows = av.sub(i0, i1, 0, k);
        let at_cols = atv.sub(0, k, 0, i1);
        let mut c_sub = cv.sub(i0, i1, 0, i1);
        gemm_serial(alpha, a_rows, at_cols, T::ONE, &mut c_sub);
    }
    symmetrize_lower(&mut c);
    c
}

/// Copy the strictly-lower triangle into the strictly-upper triangle,
/// producing a full symmetric matrix (the materialization step after a
/// triangle-only SYRK).
pub fn symmetrize_lower<T: Scalar>(c: &mut Matrix<T>) {
    assert!(c.is_square(), "symmetrize_lower requires a square matrix");
    let n = c.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let v = c[(j, i)];
            c[(i, j)] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use laab_dense::gen::OperandGen;

    #[test]
    fn trmm_lower_matches_reference() {
        let mut g = OperandGen::new(21);
        for &(n, m) in &[(5, 3), (64, 64), (65, 17), (130, 40)] {
            let l = g.lower_triangular::<f64>(n);
            let b = g.matrix::<f64>(n, m);
            let c = trmm(1.0, &l, UpLo::Lower, &b);
            let want = reference::trmm_lower_naive(&l, &b);
            assert!(c.approx_eq(&want, 1e-12), "n={n} m={m} dist={}", c.rel_dist(&want));
        }
    }

    #[test]
    fn trmm_upper_matches_gemm() {
        let mut g = OperandGen::new(22);
        let u = g.upper_triangular::<f64>(70);
        let b = g.matrix::<f64>(70, 30);
        let c = trmm(1.0, &u, UpLo::Upper, &b);
        let want =
            reference::gemm_naive(1.0, &u, Trans::No, &b, Trans::No, 0.0, &Matrix::zeros(70, 30));
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn trmm_ignores_opposite_triangle() {
        // Fill the "dead" triangle with garbage; TRMM must not read it.
        let mut g = OperandGen::new(23);
        let mut l = g.lower_triangular::<f64>(20);
        let clean = l.clone();
        for i in 0..20 {
            for j in (i + 1)..20 {
                l[(i, j)] = f64::NAN;
            }
        }
        let b = g.matrix::<f64>(20, 8);
        let c = trmm(1.0, &l, UpLo::Lower, &b);
        assert!(c.all_finite(), "TRMM read the dead triangle");
        assert!(c.approx_eq(&reference::trmm_lower_naive(&clean, &b), 1e-12));
    }

    #[test]
    fn trmm_alpha_scaling() {
        let mut g = OperandGen::new(24);
        let l = g.lower_triangular::<f64>(16);
        let b = g.matrix::<f64>(16, 16);
        let c1 = trmm(1.0, &l, UpLo::Lower, &b);
        let c2 = trmm(-2.0, &l, UpLo::Lower, &b);
        assert!(c2.approx_eq(&c1.scale(-2.0), 1e-12));
    }

    #[test]
    fn syrk_matches_reference() {
        let mut g = OperandGen::new(25);
        for &(n, k) in &[(6, 4), (64, 64), (65, 130), (100, 33)] {
            let a = g.matrix::<f64>(n, k);
            let c = syrk(1.0, &a);
            let want = reference::syrk_naive(&a);
            assert!(c.approx_eq(&want, 1e-12), "n={n} k={k} dist={}", c.rel_dist(&want));
        }
    }

    #[test]
    fn syrk_output_is_symmetric() {
        let mut g = OperandGen::new(26);
        let a = g.matrix::<f64>(40, 70);
        let c = syrk(1.0, &a);
        for i in 0..40 {
            for j in 0..40 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn flop_accounting_is_half_of_gemm() {
        counters::reset();
        let mut g = OperandGen::new(27);
        let l = g.lower_triangular::<f32>(50);
        let b = g.matrix::<f32>(50, 50);
        let _ = trmm(1.0, &l, UpLo::Lower, &b);
        let a = g.matrix::<f32>(50, 50);
        let _ = syrk(1.0, &a);
        let s = counters::snapshot();
        let gemm_cost = flops::gemm(50, 50, 50);
        assert_eq!(s.flops(Kernel::Trmm), gemm_cost / 2);
        assert_eq!(s.flops(Kernel::Syrk), gemm_cost / 2);
    }

    #[test]
    fn symmetrize_lower_mirrors() {
        let mut m = Matrix::<f64>::from_rows(&[&[1.0, 9.0], &[2.0, 3.0]]);
        symmetrize_lower(&mut m);
        assert_eq!(m[(0, 1)], 2.0);
    }
}
