//! Internal strided views.
//!
//! The Level-3 kernels operate on strided, read-only views so that
//! transposition (swap strides) and blocking (offset sub-views) need no data
//! movement; only the packing routines touch memory. Output panels are
//! row-major with a row stride (`MutView`), which lets the parallel path hand
//! disjoint contiguous row chunks to worker threads safely.

use laab_dense::{Matrix, Scalar};

use crate::Trans;

/// Read-only strided view: element `(i, j)` is `data[i*rs + j*cs]`.
#[derive(Clone, Copy)]
pub(crate) struct View<'a, T: Scalar> {
    pub data: &'a [T],
    pub rows: usize,
    pub cols: usize,
    pub rs: usize,
    pub cs: usize,
}

impl<'a, T: Scalar> View<'a, T> {
    /// View of `op(m)` under the transposition flag: transposing swaps both
    /// the logical dimensions and the strides — zero-copy.
    pub fn of(m: &'a Matrix<T>, t: Trans) -> Self {
        let (r, c) = m.shape();
        match t {
            Trans::No => View { data: m.as_slice(), rows: r, cols: c, rs: c, cs: 1 },
            Trans::Yes => View { data: m.as_slice(), rows: c, cols: r, rs: 1, cs: c },
        }
    }

    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.rs + j * self.cs]
    }

    /// Sub-view of rows `[r0, r1)` and columns `[c0, c1)`.
    pub fn sub(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> View<'a, T> {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let off = r0 * self.rs + c0 * self.cs;
        View { data: &self.data[off..], rows: r1 - r0, cols: c1 - c0, rs: self.rs, cs: self.cs }
    }
}

/// Mutable row-major view: element `(i, j)` is `data[i*rs + j]`.
pub(crate) struct MutView<'a, T: Scalar> {
    pub data: &'a mut [T],
    pub rows: usize,
    pub cols: usize,
    pub rs: usize,
}

impl<'a, T: Scalar> MutView<'a, T> {
    pub fn of(m: &'a mut Matrix<T>) -> Self {
        let (rows, cols) = m.shape();
        MutView { data: m.as_mut_slice(), rows, cols, rs: cols }
    }

    #[inline(always)]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn at(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.rs + j]
    }

    /// Reborrow: a shorter-lived view of the same panel, letting callers
    /// pass the view by value without giving it up.
    pub fn reborrow(&mut self) -> MutView<'_, T> {
        MutView { data: &mut *self.data, rows: self.rows, cols: self.cols, rs: self.rs }
    }

    /// Mutable sub-view of rows `[r0, r1)` and columns `[c0, c1)`.
    pub fn sub(&mut self, r0: usize, r1: usize, c0: usize, c1: usize) -> MutView<'_, T> {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let off = r0 * self.rs + c0;
        MutView { data: &mut self.data[off..], rows: r1 - r0, cols: c1 - c0, rs: self.rs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_respects_transpose() {
        let m = Matrix::<f64>::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        let v = View::of(&m, Trans::No);
        assert_eq!((v.rows, v.cols), (2, 3));
        assert_eq!(v.get(1, 2), 12.0);
        let t = View::of(&m, Trans::Yes);
        assert_eq!((t.rows, t.cols), (3, 2));
        assert_eq!(t.get(2, 1), 12.0);
    }

    #[test]
    fn sub_view_offsets() {
        let m = Matrix::<f64>::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let v = View::of(&m, Trans::No).sub(1, 3, 2, 4);
        assert_eq!((v.rows, v.cols), (2, 2));
        assert_eq!(v.get(0, 0), 12.0);
        assert_eq!(v.get(1, 1), 23.0);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = Matrix::<f64>::zeros(3, 3);
        {
            let mut v = MutView::of(&mut m);
            *v.at(2, 1) = 5.0;
            let mut s = v.sub(0, 2, 1, 3);
            *s.at(0, 0) = 7.0;
        }
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m[(0, 1)], 7.0);
    }
}
