//! Reusable thread-local packing workspaces.
//!
//! The Level-3 kernels repack panels of their operands on every call; with
//! per-call `vec!` allocations that packing traffic shows up as allocator
//! churn on exactly the hot path the suite is trying to time. Instead,
//! each thread (the caller *and* each pool worker) keeps one growable
//! buffer per element type and per role (A-panel / B-panel), handed out by
//! [`with_packed_a`] / [`with_packed_b`] and returned when the closure
//! finishes. Steady-state GEMMs therefore allocate nothing.
//!
//! The buffers are taken out of the thread-local map for the duration of
//! the closure (not merely borrowed), so a re-entrant kernel call — e.g.
//! TRMM's diagonal blocks calling back into the packed GEMM — simply finds
//! the slot empty and falls back to a fresh allocation instead of
//! panicking on a double borrow.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

use laab_dense::Scalar;

/// Which packing buffer a caller is asking for.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    PackedA,
    PackedB,
}

thread_local! {
    static WORKSPACES: RefCell<HashMap<(TypeId, Role), Box<dyn Any>>> =
        RefCell::new(HashMap::new());
}

/// Cache-line alignment for the packed panels, in elements. Aligned panel
/// rows keep the microkernel's wide loads from straddling cache lines.
const ALIGN_BYTES: usize = 64;

fn with_buffer<T: Scalar, R>(role: Role, len: usize, f: impl FnOnce(&mut [T]) -> R) -> R {
    let key = (TypeId::of::<T>(), role);
    let mut buf: Vec<T> = WORKSPACES
        .with(|w| w.borrow_mut().remove(&key))
        .and_then(|b| b.downcast::<Vec<T>>().ok().map(|b| *b))
        .unwrap_or_default();
    let pad = ALIGN_BYTES / std::mem::size_of::<T>();
    if buf.len() < len + pad {
        buf.resize(len + pad, T::ZERO);
    }
    // Hand out a 64-byte-aligned window (the offset can change when the
    // Vec reallocates, so recompute per call).
    let offset = {
        let misalign = buf.as_ptr() as usize % ALIGN_BYTES;
        if misalign == 0 {
            0
        } else {
            (ALIGN_BYTES - misalign) / std::mem::size_of::<T>()
        }
    };
    let result = f(&mut buf[offset..offset + len]);
    WORKSPACES.with(|w| w.borrow_mut().insert(key, Box::new(buf)));
    result
}

/// Run `f` with this thread's reusable A-panel buffer, grown to at least
/// `len` elements. The packing routines overwrite every element they later
/// read (including zero padding), so stale contents are harmless.
pub(crate) fn with_packed_a<T: Scalar, R>(len: usize, f: impl FnOnce(&mut [T]) -> R) -> R {
    with_buffer(Role::PackedA, len, f)
}

/// Run `f` with this thread's reusable B-panel buffer, grown to at least
/// `len` elements.
pub(crate) fn with_packed_b<T: Scalar, R>(len: usize, f: impl FnOnce(&mut [T]) -> R) -> R {
    with_buffer(Role::PackedB, len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_reused_not_reallocated() {
        let first_ptr = with_packed_a::<f64, _>(1024, |buf| {
            buf[0] = 7.0;
            buf.as_ptr() as usize
        });
        let (second_ptr, stale) = with_packed_a::<f64, _>(512, |buf| {
            assert_eq!(buf.len(), 512);
            (buf.as_ptr() as usize, buf[0])
        });
        assert_eq!(first_ptr, second_ptr, "shrinking requests reuse the same allocation");
        assert_eq!(stale, 7.0, "contents persist across calls (callers must overwrite)");
    }

    #[test]
    fn f32_and_f64_buffers_are_distinct() {
        with_packed_a::<f64, _>(16, |buf| buf.fill(1.0));
        with_packed_a::<f32, _>(16, |buf| {
            // A fresh f32 buffer, not a reinterpretation of the f64 one.
            assert!(buf.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn reentrant_use_falls_back_to_fresh_buffer() {
        with_packed_b::<f64, _>(8, |outer| {
            outer.fill(3.0);
            with_packed_b::<f64, _>(8, |inner| {
                assert_ne!(outer.as_ptr(), inner.as_ptr());
            });
            assert!(outer.iter().all(|&v| v == 3.0));
        });
    }

    #[test]
    fn roles_are_independent() {
        with_packed_a::<f64, _>(4, |a| {
            a.fill(1.0);
            with_packed_b::<f64, _>(4, |b| {
                assert_ne!(a.as_ptr(), b.as_ptr());
            });
        });
    }
}
