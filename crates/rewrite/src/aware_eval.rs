//! Property-dispatching evaluation.
//!
//! The execution half of "linear algebra awareness": every product node is
//! dispatched to the cheapest kernel its operands' (declared or inferred)
//! properties permit — TRMM for triangular factors, SYRK for `X·Xᵀ`,
//! structured kernels for tridiagonal/diagonal factors, and *nothing at
//! all* for identity factors. This is the evaluator behind the "optimized"
//! columns of Experiment 3's Table IV.
//!
//! Structured operands are bound as ordinary dense matrices (exactly what
//! the user would hand the framework); the compact forms are extracted at
//! dispatch time, an O(n) read that the O(n²)-or-better kernels amortize.

use laab_dense::{Diagonal, Matrix, Scalar, Tridiagonal};
use laab_expr::eval::Env;
use laab_expr::is_transpose_pair;
use laab_expr::{Context, Expr, Props};
use laab_kernels::{matmul_dispatch, syrk, trmm, Trans, UpLo};

/// Evaluate `expr` with property dispatch.
///
/// `ctx` supplies the operand properties (shapes are re-checked against the
/// bound values). The result is numerically equal to
/// [`laab_expr::eval::eval`] up to floating-point reassociation.
enum Val<'e, T: Scalar> {
    Ref(&'e Matrix<T>),
    Owned(Matrix<T>),
}

impl<'e, T: Scalar> Val<'e, T> {
    fn get(&self) -> &Matrix<T> {
        match self {
            Val::Ref(m) => m,
            Val::Owned(m) => m,
        }
    }
    fn into_owned(self) -> Matrix<T> {
        match self {
            Val::Ref(m) => m.clone(),
            Val::Owned(m) => m,
        }
    }
}

/// Evaluate `expr` with property dispatch.
///
/// `ctx` supplies the operand properties (shapes are re-checked against the
/// bound values). The result is numerically equal to
/// [`laab_expr::eval::eval`] up to floating-point reassociation. Leaf
/// operands are borrowed, not copied, so the timing columns built on this
/// evaluator measure kernels rather than clones.
pub fn aware_eval<T: Scalar>(expr: &Expr, env: &Env<T>, ctx: &Context) -> Matrix<T> {
    go(expr, env, ctx).into_owned()
}

fn go<'e, T: Scalar>(expr: &Expr, env: &'e Env<T>, ctx: &Context) -> Val<'e, T> {
    match expr {
        Expr::Mul(a, b) => {
            let pa = a.props(ctx);
            let pb = b.props(ctx);
            // Identity factors vanish.
            if pa.contains(Props::IDENTITY) {
                return go(b, env, ctx);
            }
            if pb.contains(Props::IDENTITY) {
                return go(a, env, ctx);
            }
            // SYRK pattern: X·Xᵀ (or Xᵀ·X) — half the GEMM FLOPs.
            if is_transpose_pair(a, b) {
                let x = match (&**a, &**b) {
                    (_, Expr::Transpose(inner)) => go(inner, env, ctx).into_owned(),
                    (Expr::Transpose(inner), _) => go(inner, env, ctx).get().transpose(),
                    _ => unreachable!("is_transpose_pair guarantees a transpose side"),
                };
                return Val::Owned(syrk(T::ONE, &x));
            }
            let va = go(a, env, ctx);
            let vb = go(b, env, ctx);
            let (va, vb) = (va.get(), vb.get());
            // Structured left factor.
            if pa.contains(Props::DIAGONAL) {
                return Val::Owned(laab_kernels::diag_matmul(&Diagonal::from_dense(va), vb));
            }
            if pa.contains(Props::TRIDIAGONAL) {
                return Val::Owned(laab_kernels::tridiag_matmul(&Tridiagonal::from_dense(va), vb));
            }
            if pa.contains(Props::LOWER_TRIANGULAR) {
                return Val::Owned(trmm(T::ONE, va, UpLo::Lower, vb));
            }
            if pa.contains(Props::UPPER_TRIANGULAR) {
                return Val::Owned(trmm(T::ONE, va, UpLo::Upper, vb));
            }
            // Structured right factor: B·L = (Lᵀ·Bᵀ)ᵀ (O(n²) transposes
            // around the half-FLOP kernel).
            if pb.contains(Props::DIAGONAL) {
                let r = laab_kernels::diag_matmul(&Diagonal::from_dense(vb), &va.transpose());
                return Val::Owned(r.transpose());
            }
            if pb.contains(Props::LOWER_TRIANGULAR) {
                return Val::Owned(
                    trmm(T::ONE, &vb.transpose(), UpLo::Upper, &va.transpose()).transpose(),
                );
            }
            if pb.contains(Props::UPPER_TRIANGULAR) {
                return Val::Owned(
                    trmm(T::ONE, &vb.transpose(), UpLo::Lower, &va.transpose()).transpose(),
                );
            }
            Val::Owned(matmul_dispatch(T::ONE, va, Trans::No, vb, Trans::No))
        }
        // Transposition of a symmetric value is free (pass the value
        // through, borrowed or owned as it came).
        Expr::Transpose(x) if x.props(ctx).contains(Props::SYMMETRIC) => go(x, env, ctx),
        Expr::Transpose(x) => Val::Owned(go(x, env, ctx).get().transpose()),
        Expr::Var(name) => Val::Ref(env.expect(name)),
        Expr::Identity(n) => Val::Owned(Matrix::identity(*n)),
        Expr::Add(a, b) => Val::Owned(laab_kernels::geadd(
            T::ONE,
            go(a, env, ctx).get(),
            T::ONE,
            go(b, env, ctx).get(),
        )),
        Expr::Sub(a, b) => Val::Owned(laab_kernels::geadd(
            T::ONE,
            go(a, env, ctx).get(),
            -T::ONE,
            go(b, env, ctx).get(),
        )),
        Expr::Scale(c, x) => {
            let v = go(x, env, ctx);
            let v = v.get();
            Val::Owned(laab_kernels::geadd(T::from_f64(c.0), v, T::ZERO, v))
        }
        Expr::Elem(x, i, j) => {
            let v = go(x, env, ctx);
            Val::Owned(Matrix::filled(1, 1, v.get()[(*i, *j)]))
        }
        Expr::Row(x, i) => {
            let v = go(x, env, ctx);
            Val::Owned(Matrix::row_vector(v.get().row(*i)))
        }
        Expr::Col(x, j) => {
            let v = go(x, env, ctx);
            Val::Owned(v.get().col_matrix(*j))
        }
        Expr::VCat(a, b) => Val::Owned(go(a, env, ctx).get().vcat(go(b, env, ctx).get())),
        Expr::HCat(a, b) => Val::Owned(go(a, env, ctx).get().hcat(go(b, env, ctx).get())),
        Expr::BlockDiag(a, b) => {
            Val::Owned(Matrix::block_diag(go(a, env, ctx).get(), go(b, env, ctx).get()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;
    use laab_expr::eval::eval;
    use laab_expr::var;
    use laab_kernels::counters::{self, Kernel};

    #[test]
    fn triangular_product_dispatches_to_trmm() {
        let n = 40;
        let mut g = OperandGen::new(91);
        let l = g.lower_triangular::<f64>(n);
        let b = g.matrix::<f64>(n, n);
        let env = Env::new().with("L", l).with("B", b);
        let ctx = env.context_with(
            |name| {
                if name == "L" {
                    Props::LOWER_TRIANGULAR
                } else {
                    Props::NONE
                }
            },
        );
        let e = var("L") * var("B");
        let (got, c) = counters::measure(|| aware_eval(&e, &env, &ctx));
        assert_eq!(c.calls(Kernel::Trmm), 1);
        assert_eq!(c.calls(Kernel::Gemm), 0);
        assert!(got.approx_eq(&eval(&e, &env), 1e-12));
    }

    #[test]
    fn right_triangular_product_also_dispatches() {
        let n = 24;
        let mut g = OperandGen::new(92);
        let l = g.lower_triangular::<f64>(n);
        let b = g.matrix::<f64>(n, n);
        let env = Env::new().with("L", l).with("B", b);
        let ctx = env.context_with(
            |name| {
                if name == "L" {
                    Props::LOWER_TRIANGULAR
                } else {
                    Props::NONE
                }
            },
        );
        let e = var("B") * var("L");
        let (got, c) = counters::measure(|| aware_eval(&e, &env, &ctx));
        assert_eq!(c.calls(Kernel::Trmm), 1);
        assert!(got.approx_eq(&eval(&e, &env), 1e-12));
    }

    #[test]
    fn syrk_pattern_dispatches_to_syrk() {
        let n = 32;
        let mut g = OperandGen::new(93);
        let env = Env::new().with("A", g.matrix::<f64>(n, n));
        let ctx = env.context_with(|_| Props::NONE);
        let e = var("A") * var("A").t();
        let (got, c) = counters::measure(|| aware_eval(&e, &env, &ctx));
        assert_eq!(c.calls(Kernel::Syrk), 1);
        assert_eq!(c.calls(Kernel::Gemm), 0);
        assert!(got.approx_eq(&eval(&e, &env), 1e-12));
        // Also the Aᵀ·A orientation.
        let e2 = var("A").t() * var("A");
        let (got2, c2) = counters::measure(|| aware_eval(&e2, &env, &ctx));
        assert_eq!(c2.calls(Kernel::Syrk), 1);
        assert!(got2.approx_eq(&eval(&e2, &env), 1e-12));
    }

    #[test]
    fn structured_factors_use_structured_kernels() {
        let n = 30;
        let mut g = OperandGen::new(94);
        let t = g.tridiagonal::<f64>(n);
        let d = g.diagonal::<f64>(n);
        let b = g.matrix::<f64>(n, n);
        let env = Env::new().with("T", t.to_dense()).with("D", d.to_dense()).with("B", b);
        let ctx = env.context_with(|name| match name {
            "T" => Props::TRIDIAGONAL,
            "D" => Props::DIAGONAL,
            _ => Props::NONE,
        });
        let (tb, c1) = counters::measure(|| aware_eval(&(var("T") * var("B")), &env, &ctx));
        assert_eq!(c1.calls(Kernel::TridiagMatmul), 1);
        assert!(tb.approx_eq(&eval(&(var("T") * var("B")), &env), 1e-12));
        let (db, c2) = counters::measure(|| aware_eval(&(var("D") * var("B")), &env, &ctx));
        assert_eq!(c2.calls(Kernel::DiagMatmul), 1);
        assert!(db.approx_eq(&eval(&(var("D") * var("B")), &env), 1e-12));
    }

    #[test]
    fn identity_factor_skips_all_work() {
        let n = 16;
        let mut g = OperandGen::new(95);
        let q = g.orthogonal::<f64>(n);
        let b = g.matrix::<f64>(n, n);
        let env = Env::new().with("Q", q).with("B", b.clone());
        let ctx =
            env.context_with(|name| if name == "Q" { Props::ORTHOGONAL } else { Props::NONE });
        let e = (var("Q").t() * var("Q")) * var("B");
        let (got, c) = counters::measure(|| aware_eval(&e, &env, &ctx));
        assert_eq!(c.calls(Kernel::Gemm) + c.calls(Kernel::Syrk), 0, "no O(n³) work");
        assert!(got.approx_eq(&b, 1e-12));
    }

    #[test]
    fn symmetric_transpose_is_free() {
        let n = 12;
        let mut g = OperandGen::new(96);
        let s = g.symmetric::<f64>(n);
        let env = Env::new().with("S", s.clone());
        let ctx = env.context_with(|_| Props::SYMMETRIC);
        let got = aware_eval(&var("S").t(), &env, &ctx);
        assert_eq!(got, s);
    }
}
