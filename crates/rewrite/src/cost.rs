//! The extraction cost model, fed by measured GEMM-engine throughput.
//!
//! Extraction picks the cheapest member of each e-class, so the cost
//! model is where "awareness" becomes a decision: flop counts come from
//! [`laab_expr::cost::mul_cost`] (property discounts for identity /
//! diagonal / triangular / tridiagonal factors and the SYRK pattern — the
//! property-guarded specializations live *here*, not as structural
//! rules), and flops are converted to time-like units with the two
//! throughput regimes `laab bench` actually measures: square GEMM runs at
//! the compute-bound rate (`summary.engine_gflops` in `BENCH_gemm.json`),
//! while GEMV-shaped products and elementwise sweeps run at the
//! memory-bound rate (the batch-1 anchor of `summary.batch_gflops`).
//! That ratio is what makes `Hᵀ(H·x)` (two GEMVs) beat `(HᵀH)·x` (one
//! GEMM + one GEMV) by the measured margin rather than by raw flops.
//!
//! [`CostModel::from_gemm_bench_json`] reads the two anchors out of a
//! `BENCH_gemm.json` document with a dependency-free scanner (this crate
//! sits below `laab-core` in the crate graph, so it cannot import the
//! report type); [`CostModel::default`] holds conservative built-in
//! anchors so extraction is fully deterministic when no measurement file
//! is present (tests rely on this).

use crate::egraph::{EGraph, ENode};
use laab_expr::cost::mul_cost;
use laab_expr::{Context, Expr, Shape};

/// Minimum vector-side dimension below which a product is priced at the
/// memory-bound (GEMV) rate rather than the compute-bound (GEMM) rate.
const GEMV_DIM: usize = 8;

/// Throughput-calibrated extraction costs. Units are abstract "time
/// ticks" — flops divided by the regime's relative throughput — so only
/// the *ratio* of the two anchors matters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Compute-bound GFLOP/s: large square GEMM (`summary.engine_gflops`).
    pub gemm_gflops: f64,
    /// Memory-bound GFLOP/s: GEMV-shaped products and elementwise sweeps
    /// (the batch-1 anchor of `summary.batch_gflops`).
    pub gemv_gflops: f64,
}

impl Default for CostModel {
    /// Built-in anchors (≈ the shape of every curve `laab bench` has
    /// produced on this class of hardware: GEMM an order of magnitude
    /// faster per flop than GEMV). Used whenever no `BENCH_gemm.json` is
    /// available, and by every determinism test.
    fn default() -> Self {
        CostModel { gemm_gflops: 40.0, gemv_gflops: 4.0 }
    }
}

impl CostModel {
    /// Penalty multiplier applied to memory-bound flops (≥ 1).
    fn gemv_penalty(&self) -> u64 {
        if self.gemv_gflops <= 0.0 || !self.gemv_gflops.is_finite() {
            return 1;
        }
        ((self.gemm_gflops / self.gemv_gflops).round() as u64).max(1)
    }

    /// Parse the two throughput anchors out of a `BENCH_gemm.json`
    /// document (`laab-gemm-bench-v2+`). Returns `None` when either
    /// anchor is missing or non-positive; the caller falls back to
    /// [`CostModel::default`].
    pub fn from_gemm_bench_json(text: &str) -> Option<CostModel> {
        let gemm = scan_number(text, "\"engine_gflops\"")?;
        // First element of `batch_gflops`: the batch-1 GEMV-shaped anchor.
        let gemv = scan_first_array_number(text, "\"batch_gflops\"").unwrap_or(gemm / 10.0);
        if gemm > 0.0 && gemv > 0.0 && gemm.is_finite() && gemv.is_finite() {
            Some(CostModel { gemm_gflops: gemm, gemv_gflops: gemv })
        } else {
            None
        }
    }

    /// Load anchors from a `BENCH_gemm.json` on disk, falling back to the
    /// built-in defaults when the file is absent or unparseable.
    pub fn load_or_default(path: &std::path::Path) -> CostModel {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Self::from_gemm_bench_json(&text))
            .unwrap_or_default()
    }

    /// Time-like cost of one product `m×k · k×n` with the factors'
    /// properties (discounted flops from [`mul_cost`]) under the
    /// shape-selected throughput regime. Always ≥ 1 so extraction's
    /// bottom-up relaxation is strictly monotone.
    pub fn product_cost(
        &self,
        m: usize,
        k: usize,
        n: usize,
        lp: laab_expr::Props,
        rp: laab_expr::Props,
        syrk: bool,
    ) -> u64 {
        let flops = mul_cost(m, k, n, lp, rp, syrk);
        let memory_bound = m.min(n).min(k) < GEMV_DIM;
        let cost = if memory_bound { flops.saturating_mul(self.gemv_penalty()) } else { flops };
        cost.max(1)
    }

    /// Cost of an elementwise sweep over an `m×n` result (add, sub,
    /// scale, concatenation copies) — always memory-bound.
    fn sweep_cost(&self, shape: Shape) -> u64 {
        ((shape.rows * shape.cols) as u64).saturating_mul(self.gemv_penalty()).max(1)
    }

    /// Cost of one e-node given its child classes' shapes and properties.
    /// Excludes the children's own costs (the extractor sums those).
    pub fn enode_cost(&self, eg: &EGraph, n: &ENode) -> u64 {
        match n {
            // Leaves and transposes are (near-)free: operands are bound,
            // and the trace-time `fold_transpose` pass folds transposes
            // into GEMM flags rather than materializing them.
            ENode::Var(_) | ENode::Identity(_) | ENode::Transpose(_) => 1,
            ENode::Mul(a, b) => {
                let (sa, sb) = (eg.class(*a).shape, eg.class(*b).shape);
                self.product_cost(
                    sa.rows,
                    sa.cols,
                    sb.cols,
                    eg.class(*a).props,
                    eg.class(*b).props,
                    eg.transpose_pair(*a, *b),
                )
            }
            ENode::Add(a, _) | ENode::Sub(a, _) => self.sweep_cost(eg.class(*a).shape),
            ENode::Scale(_, x) => self.sweep_cost(eg.class(*x).shape),
            ENode::Elem(_, _, _) => 1,
            ENode::Row(x, _) => (eg.class(*x).shape.cols as u64).max(1),
            ENode::Col(x, _) => (eg.class(*x).shape.rows as u64).max(1),
            ENode::VCat(a, b) | ENode::HCat(a, b) | ENode::BlockDiag(a, b) => self
                .sweep_cost(eg.class(*a).shape)
                .saturating_add(self.sweep_cost(eg.class(*b).shape)),
        }
    }

    /// Cost of a plain expression tree under this model — the same
    /// per-node pricing as [`CostModel::enode_cost`], summed over the
    /// tree. Used to report the un-extracted baseline next to the
    /// extracted cost.
    pub fn expr_cost(&self, expr: &Expr, ctx: &Context) -> u64 {
        let own = match expr {
            Expr::Var(_) | Expr::Identity(_) | Expr::Transpose(_) => 1,
            Expr::Mul(a, b) => {
                let (sa, sb) = (a.shape(ctx), b.shape(ctx));
                self.product_cost(
                    sa.rows,
                    sa.cols,
                    sb.cols,
                    a.props(ctx),
                    b.props(ctx),
                    laab_expr::is_transpose_pair(a, b),
                )
            }
            Expr::Add(a, _) | Expr::Sub(a, _) => self.sweep_cost(a.shape(ctx)),
            Expr::Scale(_, x) => self.sweep_cost(x.shape(ctx)),
            Expr::Elem(_, _, _) => 1,
            Expr::Row(x, _) => (x.shape(ctx).cols as u64).max(1),
            Expr::Col(x, _) => (x.shape(ctx).rows as u64).max(1),
            Expr::VCat(a, b) | Expr::HCat(a, b) | Expr::BlockDiag(a, b) => {
                self.sweep_cost(a.shape(ctx)).saturating_add(self.sweep_cost(b.shape(ctx)))
            }
        };
        expr.children().iter().fold(own, |acc, c| acc.saturating_add(self.expr_cost(c, ctx)))
    }
}

/// Scan `"key": <number>` out of a JSON document without a JSON
/// dependency. Good enough for the flat numeric fields of the
/// well-formed reports this workspace itself emits.
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)?;
    let rest = &text[at + key.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scan the first number of `"key": [a, b, …]`.
fn scan_first_array_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)?;
    let rest = &text[at + key.len()..];
    let open = rest.find('[')?;
    let rest = rest[open + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::var;

    #[test]
    fn parses_anchors_from_bench_json() {
        let doc = r#"{"schema":"laab-gemm-bench-v3","summary":{
            "engine_gflops": 48.25, "seed_gflops": 23.0,
            "batch_sizes": [1, 8, 32], "batch_gflops": [2.61, 12.8, 26.1]}}"#;
        let m = CostModel::from_gemm_bench_json(doc).expect("parses");
        assert!((m.gemm_gflops - 48.25).abs() < 1e-12);
        assert!((m.gemv_gflops - 2.61).abs() < 1e-12);
        assert!(CostModel::from_gemm_bench_json("{}").is_none());
    }

    #[test]
    fn gemv_regime_is_penalized_per_flop() {
        let m = CostModel::default();
        let ctx = Context::new().with("H", 64, 64).with("x", 64, 1);
        // (HᵀH)x: GEMM + GEMV vs Hᵀ(Hx): two GEMVs.
        let left = (var("H").t() * var("H")) * var("x");
        let right = var("H").t() * (var("H") * var("x"));
        assert!(
            m.expr_cost(&right, &ctx) < m.expr_cost(&left, &ctx),
            "two GEMVs must beat GEMM+GEMV"
        );
    }

    #[test]
    fn missing_file_falls_back_to_defaults() {
        let m = CostModel::load_or_default(std::path::Path::new("/nonexistent/BENCH_gemm.json"));
        assert_eq!(m, CostModel::default());
    }
}
