//! An arena-backed e-graph over the expression AST.
//!
//! The best-first [`RewriteEngine`](crate::RewriteEngine) explores one
//! expression at a time and therefore misses rewrites that require a
//! temporary cost increase (distributing before re-factoring, pushing a
//! transpose the "wrong" way to expose a cancellation). The e-graph keeps
//! *every* equivalent form at once: expressions are interned into
//! **e-classes** (sets of provably-equal expressions) whose members are
//! **e-nodes** — operators over e-class children — so a rewrite applied
//! anywhere is instantly shared by every expression containing that
//! subterm. Equality is maintained by a union-find plus **congruence
//! closure**: when two classes merge, parents that became structurally
//! identical are merged too ([`EGraph::rebuild`], the egg-style repair
//! loop).
//!
//! The arena is plain `Vec`s — no external dependencies — and every
//! operation is deterministic: classes are iterated in id order, unions
//! keep the *smaller* id as the canonical root, and merged node lists
//! preserve insertion order (original-expression nodes first), which the
//! extractor relies on for stable tie-breaking.
//!
//! Each class carries an analysis pair `(Shape, Props)`: shapes must agree
//! across a class (rewrites are shape-preserving; a mismatch panics), and
//! properties are joined with lattice union — any member proving a
//! property proves it for the whole class, since all members denote the
//! same value. The `Mul` analysis shares
//! [`laab_expr::structural_mul_props`] with `Expr::props`, so the SYRK /
//! orthogonal-identity rules cannot drift between the two analyses.

use laab_expr::{structural_mul_props, Context, Expr, Factor, Props, Shape};
use std::collections::HashMap;

/// Identifier of an e-class. Ids are dense arena indices; always resolve
/// through [`EGraph::find`] before comparing two ids for equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EClassId(pub u32);

impl std::fmt::Display for EClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One operator application whose children are e-classes — the e-graph
/// mirror of the [`Expr`] constructors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ENode {
    /// Named operand leaf.
    Var(String),
    /// The `n×n` identity.
    Identity(usize),
    /// Transposition.
    Transpose(EClassId),
    /// Matrix product.
    Mul(EClassId, EClassId),
    /// Elementwise sum.
    Add(EClassId, EClassId),
    /// Elementwise difference.
    Sub(EClassId, EClassId),
    /// Scalar scaling.
    Scale(Factor, EClassId),
    /// Single-element extraction.
    Elem(EClassId, usize, usize),
    /// Row extraction.
    Row(EClassId, usize),
    /// Column extraction.
    Col(EClassId, usize),
    /// Vertical concatenation.
    VCat(EClassId, EClassId),
    /// Horizontal concatenation.
    HCat(EClassId, EClassId),
    /// Block-diagonal assembly.
    BlockDiag(EClassId, EClassId),
}

impl ENode {
    /// Child e-classes in argument order.
    pub fn children(&self) -> Vec<EClassId> {
        match self {
            ENode::Var(_) | ENode::Identity(_) => vec![],
            ENode::Transpose(x)
            | ENode::Scale(_, x)
            | ENode::Elem(x, _, _)
            | ENode::Row(x, _)
            | ENode::Col(x, _) => vec![*x],
            ENode::Mul(a, b)
            | ENode::Add(a, b)
            | ENode::Sub(a, b)
            | ENode::VCat(a, b)
            | ENode::HCat(a, b)
            | ENode::BlockDiag(a, b) => vec![*a, *b],
        }
    }

    /// The same operator with children rewritten through `f`.
    pub fn map_children(&self, mut f: impl FnMut(EClassId) -> EClassId) -> ENode {
        match self {
            ENode::Var(_) | ENode::Identity(_) => self.clone(),
            ENode::Transpose(x) => ENode::Transpose(f(*x)),
            ENode::Scale(c, x) => ENode::Scale(*c, f(*x)),
            ENode::Elem(x, i, j) => ENode::Elem(f(*x), *i, *j),
            ENode::Row(x, i) => ENode::Row(f(*x), *i),
            ENode::Col(x, j) => ENode::Col(f(*x), *j),
            ENode::Mul(a, b) => ENode::Mul(f(*a), f(*b)),
            ENode::Add(a, b) => ENode::Add(f(*a), f(*b)),
            ENode::Sub(a, b) => ENode::Sub(f(*a), f(*b)),
            ENode::VCat(a, b) => ENode::VCat(f(*a), f(*b)),
            ENode::HCat(a, b) => ENode::HCat(f(*a), f(*b)),
            ENode::BlockDiag(a, b) => ENode::BlockDiag(f(*a), f(*b)),
        }
    }
}

/// A rewrite right-hand side: an expression tree whose leaves may
/// reference existing e-classes. Rules return these; the saturation loop
/// interns them with [`EGraph::add_rhs`] and unions the result with the
/// matched class.
#[derive(Debug, Clone)]
pub enum Rhs {
    /// An existing e-class, verbatim.
    Class(EClassId),
    /// The `n×n` identity.
    Identity(usize),
    /// Transposition of a sub-result.
    Transpose(Box<Rhs>),
    /// Product of two sub-results.
    Mul(Box<Rhs>, Box<Rhs>),
    /// Sum of two sub-results.
    Add(Box<Rhs>, Box<Rhs>),
    /// Difference of two sub-results.
    Sub(Box<Rhs>, Box<Rhs>),
    /// Scalar scaling of a sub-result.
    Scale(Factor, Box<Rhs>),
    /// Single-element extraction.
    Elem(Box<Rhs>, usize, usize),
    /// Row extraction.
    Row(Box<Rhs>, usize),
    /// Column extraction.
    Col(Box<Rhs>, usize),
    /// Vertical concatenation.
    VCat(Box<Rhs>, Box<Rhs>),
}

impl Rhs {
    /// `selfᵀ`.
    pub fn t(self) -> Rhs {
        Rhs::Transpose(Box::new(self))
    }
}

/// `a · b` as a rewrite right-hand side.
pub fn rmul(a: Rhs, b: Rhs) -> Rhs {
    Rhs::Mul(Box::new(a), Box::new(b))
}

/// `a + b` as a rewrite right-hand side.
pub fn radd(a: Rhs, b: Rhs) -> Rhs {
    Rhs::Add(Box::new(a), Box::new(b))
}

/// `a − b` as a rewrite right-hand side.
pub fn rsub(a: Rhs, b: Rhs) -> Rhs {
    Rhs::Sub(Box::new(a), Box::new(b))
}

/// `c · x` as a rewrite right-hand side.
pub fn rscale(c: Factor, x: Rhs) -> Rhs {
    Rhs::Scale(c, Box::new(x))
}

/// One equivalence class of expressions.
#[derive(Debug, Clone)]
pub struct EClass {
    /// Member e-nodes, in insertion order (original-expression nodes
    /// precede rule-generated ones; the extractor's tie-break relies on
    /// this).
    pub nodes: Vec<ENode>,
    /// Shape shared by every member (rewrites are shape-preserving).
    pub shape: Shape,
    /// Lattice join of every member's inferred properties.
    pub props: Props,
    /// Parent e-nodes (as interned) and the class they live in — the
    /// congruence-repair worklist.
    parents: Vec<(ENode, EClassId)>,
}

/// The e-graph: a union-find over [`EClass`]es plus a hash-cons `memo`
/// mapping each canonical [`ENode`] to its class.
#[derive(Debug, Clone)]
pub struct EGraph {
    ctx: Context,
    /// Union-find parent pointers; `uf[i] == i` marks a root.
    uf: Vec<u32>,
    /// Class data, indexed by id; `None` once merged into another root.
    classes: Vec<Option<EClass>>,
    /// Hash-cons: canonical e-node → class.
    memo: HashMap<ENode, EClassId>,
    /// Classes whose parents need congruence repair.
    dirty: Vec<EClassId>,
}

impl EGraph {
    /// An empty e-graph typed by `ctx` (operand shapes and declared
    /// properties).
    pub fn new(ctx: &Context) -> Self {
        EGraph {
            ctx: ctx.clone(),
            uf: Vec::new(),
            classes: Vec::new(),
            memo: HashMap::new(),
            dirty: Vec::new(),
        }
    }

    /// The typing context the graph was built under.
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// Canonical representative of `id`'s equivalence class.
    pub fn find(&self, id: EClassId) -> EClassId {
        let mut i = id.0;
        while self.uf[i as usize] != i {
            i = self.uf[i as usize];
        }
        EClassId(i)
    }

    /// The class data for `id` (resolved through [`EGraph::find`]).
    pub fn class(&self, id: EClassId) -> &EClass {
        self.classes[self.find(id).0 as usize].as_ref().expect("root class present")
    }

    /// Number of distinct (canonical) e-nodes — the saturation budget's
    /// currency.
    pub fn node_count(&self) -> usize {
        self.memo.len()
    }

    /// Number of live e-classes.
    pub fn class_count(&self) -> usize {
        (0..self.uf.len() as u32).filter(|&i| self.uf[i as usize] == i).count()
    }

    /// Live classes in ascending id order (the deterministic iteration
    /// order every saturation and extraction pass uses).
    pub fn class_ids(&self) -> Vec<EClassId> {
        (0..self.uf.len() as u32).filter(|&i| self.uf[i as usize] == i).map(EClassId).collect()
    }

    /// `true` when classes `a` and `b` are equal up to transposition
    /// (either contains a `Transpose` of the other) — the class-level
    /// SYRK-pattern test.
    pub fn transpose_pair(&self, a: EClassId, b: EClassId) -> bool {
        self.class_is_transpose_of(a, b) || self.class_is_transpose_of(b, a)
    }

    /// `true` when class `a` contains a `Transpose` e-node whose child is
    /// class `b` (i.e. `a ≡ bᵀ`).
    pub fn class_is_transpose_of(&self, a: EClassId, b: EClassId) -> bool {
        let b = self.find(b);
        self.class(a).nodes.iter().any(|n| matches!(n, ENode::Transpose(x) if self.find(*x) == b))
    }

    fn canonicalize(&self, n: &ENode) -> ENode {
        n.map_children(|c| self.find(c))
    }

    /// Shape and property analysis of a (canonicalized) e-node from its
    /// child classes — the class-level mirror of `Expr::try_shape` +
    /// `Expr::props`.
    fn analyze(&self, n: &ENode) -> (Shape, Props) {
        let sh = |id: &EClassId| self.class(*id).shape;
        let pr = |id: &EClassId| self.class(*id).props;
        match n {
            ENode::Var(name) => {
                let info = self
                    .ctx
                    .get(name)
                    .unwrap_or_else(|| panic!("operand `{name}` undeclared in e-graph context"));
                (info.shape, info.props)
            }
            ENode::Identity(n) => (Shape::new(*n, *n), Props::IDENTITY.normalize()),
            ENode::Transpose(x) => (sh(x).t(), pr(x).transpose()),
            ENode::Mul(a, b) => {
                let (sa, sb) = (sh(a), sh(b));
                assert_eq!(
                    sa.cols, sb.rows,
                    "e-graph invariant: non-conformal product {sa} · {sb} interned"
                );
                let props = structural_mul_props(
                    pr(a),
                    pr(b),
                    self.transpose_pair(*a, *b),
                    self.class_is_transpose_of(*a, *b),
                );
                (Shape::new(sa.rows, sb.cols), props)
            }
            ENode::Add(a, b) => {
                let (sa, sb) = (sh(a), sh(b));
                assert_eq!(sa, sb, "e-graph invariant: elementwise shape mismatch interned");
                (sa, pr(a).add(pr(b)))
            }
            ENode::Sub(a, b) => {
                let (sa, sb) = (sh(a), sh(b));
                assert_eq!(sa, sb, "e-graph invariant: elementwise shape mismatch interned");
                (sa, pr(a).add(pr(b)).remove(Props::SPD))
            }
            ENode::Scale(c, x) => (sh(x), pr(x).scale(c.0)),
            ENode::Elem(x, i, j) => {
                let s = sh(x);
                assert!(*i < s.rows && *j < s.cols, "e-graph invariant: element out of bounds");
                (Shape::new(1, 1), Props::NONE)
            }
            ENode::Row(x, i) => {
                let s = sh(x);
                assert!(*i < s.rows, "e-graph invariant: row out of bounds");
                (Shape::new(1, s.cols), Props::NONE)
            }
            ENode::Col(x, j) => {
                let s = sh(x);
                assert!(*j < s.cols, "e-graph invariant: column out of bounds");
                (Shape::new(s.rows, 1), Props::NONE)
            }
            ENode::VCat(a, b) => {
                let (sa, sb) = (sh(a), sh(b));
                assert_eq!(sa.cols, sb.cols, "e-graph invariant: vcat column mismatch");
                (Shape::new(sa.rows + sb.rows, sa.cols), Props::NONE)
            }
            ENode::HCat(a, b) => {
                let (sa, sb) = (sh(a), sh(b));
                assert_eq!(sa.rows, sb.rows, "e-graph invariant: hcat row mismatch");
                (Shape::new(sa.rows, sa.cols + sb.cols), Props::NONE)
            }
            ENode::BlockDiag(a, b) => {
                let (sa, sb) = (sh(a), sh(b));
                (
                    Shape::new(sa.rows + sb.rows, sa.cols + sb.cols),
                    pr(a).intersect(pr(b)).normalize(),
                )
            }
        }
    }

    /// Intern an e-node, returning its class (hash-consed: structurally
    /// identical nodes share a class).
    pub fn add(&mut self, n: ENode) -> EClassId {
        let n = self.canonicalize(&n);
        if let Some(&id) = self.memo.get(&n) {
            return self.find(id);
        }
        let (shape, props) = self.analyze(&n);
        let id = EClassId(self.uf.len() as u32);
        self.uf.push(id.0);
        for c in n.children() {
            let c = self.find(c);
            self.classes[c.0 as usize]
                .as_mut()
                .expect("root class present")
                .parents
                .push((n.clone(), id));
        }
        self.classes.push(Some(EClass { nodes: vec![n.clone()], shape, props, parents: vec![] }));
        self.memo.insert(n, id);
        id
    }

    /// Intern a whole expression bottom-up, returning the root class.
    pub fn add_expr(&mut self, e: &Expr) -> EClassId {
        let node = match e {
            Expr::Var(name) => ENode::Var(name.clone()),
            Expr::Identity(n) => ENode::Identity(*n),
            Expr::Transpose(x) => ENode::Transpose(self.add_expr(x)),
            Expr::Mul(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Mul(a, b)
            }
            Expr::Add(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Add(a, b)
            }
            Expr::Sub(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::Sub(a, b)
            }
            Expr::Scale(c, x) => ENode::Scale(*c, self.add_expr(x)),
            Expr::Elem(x, i, j) => ENode::Elem(self.add_expr(x), *i, *j),
            Expr::Row(x, i) => ENode::Row(self.add_expr(x), *i),
            Expr::Col(x, j) => ENode::Col(self.add_expr(x), *j),
            Expr::VCat(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::VCat(a, b)
            }
            Expr::HCat(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::HCat(a, b)
            }
            Expr::BlockDiag(a, b) => {
                let (a, b) = (self.add_expr(a), self.add_expr(b));
                ENode::BlockDiag(a, b)
            }
        };
        self.add(node)
    }

    /// Intern a rewrite right-hand side, returning its class.
    pub fn add_rhs(&mut self, rhs: &Rhs) -> EClassId {
        let node = match rhs {
            Rhs::Class(id) => return self.find(*id),
            Rhs::Identity(n) => ENode::Identity(*n),
            Rhs::Transpose(x) => ENode::Transpose(self.add_rhs(x)),
            Rhs::Mul(a, b) => {
                let (a, b) = (self.add_rhs(a), self.add_rhs(b));
                ENode::Mul(a, b)
            }
            Rhs::Add(a, b) => {
                let (a, b) = (self.add_rhs(a), self.add_rhs(b));
                ENode::Add(a, b)
            }
            Rhs::Sub(a, b) => {
                let (a, b) = (self.add_rhs(a), self.add_rhs(b));
                ENode::Sub(a, b)
            }
            Rhs::Scale(c, x) => ENode::Scale(*c, self.add_rhs(x)),
            Rhs::Elem(x, i, j) => ENode::Elem(self.add_rhs(x), *i, *j),
            Rhs::Row(x, i) => ENode::Row(self.add_rhs(x), *i),
            Rhs::Col(x, j) => ENode::Col(self.add_rhs(x), *j),
            Rhs::VCat(a, b) => {
                let (a, b) = (self.add_rhs(a), self.add_rhs(b));
                ENode::VCat(a, b)
            }
        };
        self.add(node)
    }

    /// Merge the classes of `a` and `b`. Returns `true` if they were
    /// distinct. The smaller id stays canonical (deterministic), the
    /// merged node list preserves insertion order, and property lattices
    /// join. Call [`EGraph::rebuild`] after a batch of unions to restore
    /// congruence.
    pub fn union(&mut self, a: EClassId, b: EClassId) -> bool {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return false;
        }
        let (root, dead) = if a < b { (a, b) } else { (b, a) };
        self.uf[dead.0 as usize] = root.0;
        let dead_class = self.classes[dead.0 as usize].take().expect("root class present");
        let rc = self.classes[root.0 as usize].as_mut().expect("root class present");
        assert_eq!(
            rc.shape, dead_class.shape,
            "e-graph invariant: union of differently-shaped classes"
        );
        rc.props = rc.props.union(dead_class.props).normalize();
        rc.nodes.extend(dead_class.nodes);
        rc.parents.extend(dead_class.parents);
        self.dirty.push(root);
        true
    }

    /// Restore the congruence invariant after unions: re-canonicalize the
    /// hash-cons, merge parents that became structurally identical
    /// (cascading), dedupe member/parent lists, and re-join class
    /// properties to a fixpoint.
    pub fn rebuild(&mut self) {
        while let Some(id) = self.dirty.pop() {
            let id = self.find(id);
            let parents = std::mem::take(
                &mut self.classes[id.0 as usize].as_mut().expect("root class present").parents,
            );
            let mut repaired: Vec<(ENode, EClassId)> = Vec::with_capacity(parents.len());
            for (pnode, pclass) in parents {
                self.memo.remove(&pnode);
                let canon = self.canonicalize(&pnode);
                let pclass = self.find(pclass);
                if let Some(&other) = self.memo.get(&canon) {
                    let other = self.find(other);
                    if other != pclass {
                        // Congruence: same operator over now-equal
                        // children ⇒ the parents are equal too.
                        self.union(pclass, other);
                    }
                }
                let pclass = self.find(pclass);
                self.memo.insert(canon.clone(), pclass);
                repaired.push((canon, pclass));
            }
            repaired.dedup_by(|a, b| a == b);
            let root = self.find(id);
            self.classes[root.0 as usize]
                .as_mut()
                .expect("root class present")
                .parents
                .extend(repaired);
        }
        self.compact();
        self.propagate_props();
    }

    /// Canonicalize and dedupe every class's member list (first
    /// occurrence wins, preserving the original-nodes-first order).
    fn compact(&mut self) {
        for id in self.class_ids() {
            let nodes = std::mem::take(
                &mut self.classes[id.0 as usize].as_mut().expect("root class present").nodes,
            );
            let mut seen: Vec<ENode> = Vec::with_capacity(nodes.len());
            for n in nodes {
                let canon = self.canonicalize(&n);
                if !seen.contains(&canon) {
                    seen.push(canon);
                }
            }
            self.classes[id.0 as usize].as_mut().expect("root class present").nodes = seen;
        }
    }

    /// Re-join class properties to a fixpoint: a class gains any property
    /// any of its members proves (all members denote the same value), and
    /// gains ripple upward through parents.
    fn propagate_props(&mut self) {
        loop {
            let mut changed = false;
            for id in self.class_ids() {
                let mut p = self.class(id).props;
                for i in 0..self.class(id).nodes.len() {
                    let n = self.class(id).nodes[i].clone();
                    let (_, np) = self.analyze(&n);
                    p = p.union(np).normalize();
                }
                if p != self.class(id).props {
                    self.classes[id.0 as usize].as_mut().expect("root class present").props = p;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::var;

    fn ctx_n(n: usize) -> Context {
        Context::new().with("A", n, n).with("B", n, n).with("x", n, 1)
    }

    #[test]
    fn hashcons_shares_identical_subtrees() {
        let ctx = ctx_n(4);
        let mut eg = EGraph::new(&ctx);
        // (AᵀB)ᵀ(AᵀB): the two AᵀB subtrees must land in one class.
        let s = var("A").t() * var("B");
        let e = s.clone().t() * s.clone();
        let root = eg.add_expr(&e);
        // A, B, Aᵀ, AᵀB, (AᵀB)ᵀ, root — 6 classes, not 9.
        assert_eq!(eg.class_count(), 6);
        assert_eq!(eg.class(root).shape, Shape::new(4, 4));
        let again = eg.add_expr(&e);
        assert_eq!(eg.find(root), eg.find(again));
    }

    #[test]
    fn union_and_congruence_closure() {
        let ctx = ctx_n(4);
        let mut eg = EGraph::new(&ctx);
        let a = eg.add_expr(&var("A"));
        let b = eg.add_expr(&var("B"));
        let ax = eg.add_expr(&(var("A") * var("x")));
        let bx = eg.add_expr(&(var("B") * var("x")));
        assert_ne!(eg.find(ax), eg.find(bx));
        // Assert A ≡ B; congruence must merge A·x ≡ B·x.
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        assert_eq!(eg.find(ax), eg.find(bx), "congruent parents merged");
    }

    #[test]
    fn props_join_across_members_and_ripple_up() {
        let ctx =
            Context::new().with_props("S", 4, 4, Props::SYMMETRIC).with("A", 4, 4).with("x", 4, 1);
        let mut eg = EGraph::new(&ctx);
        let a = eg.add_expr(&var("A"));
        let at = eg.add_expr(&var("A").t());
        let ata = eg.add(ENode::Mul(at, a));
        // Class-level SYRK detection: AᵀA is symmetric.
        assert!(eg.class(ata).props.contains(Props::SYMMETRIC));
        // Joining A with a declared-symmetric operand spreads the bit.
        let s = eg.add_expr(&var("S"));
        eg.union(a, s);
        eg.rebuild();
        assert!(eg.class(a).props.contains(Props::SYMMETRIC));
    }

    #[test]
    fn smaller_id_stays_canonical() {
        let ctx = ctx_n(4);
        let mut eg = EGraph::new(&ctx);
        let a = eg.add_expr(&var("A"));
        let b = eg.add_expr(&var("B"));
        eg.union(b, a);
        eg.rebuild();
        assert_eq!(eg.find(b), a, "union keeps the smaller id as root");
        // Original node order preserved: A's own node leads the list.
        assert!(matches!(&eg.class(a).nodes[0], ENode::Var(n) if n == "A"));
    }

    #[test]
    #[should_panic(expected = "non-conformal")]
    fn non_conformal_product_panics() {
        let ctx = Context::new().with("A", 4, 4).with("x", 4, 1);
        let mut eg = EGraph::new(&ctx);
        let x = eg.add_expr(&var("x"));
        let a = eg.add_expr(&var("A"));
        eg.add(ENode::Mul(x, a)); // 4×1 · 4×4
    }
}
