//! Best-first search over the derivation graph.
//!
//! Nodes are expressions, edges are rule applications (at any position).
//! The search keeps a priority queue ordered by expression cost (FLOPs with
//! sharing — see [`laab_expr::cost::shared_cost`]) and a visited set; it
//! expands the cheapest frontier node first and returns the best expression
//! seen within the exploration budget. This mirrors Linnea's
//! derivation-graph construction with a cost-guided traversal.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use laab_expr::cost::shared_cost;
use laab_expr::{Context, Expr};

use crate::rules::{default_rules, Rule};

/// Which cost model guides the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostKind {
    /// Dense-kernel pricing with sharing (what a framework with CSE but no
    /// property dispatch would pay).
    #[default]
    NaiveShared,
    /// Property-aware pricing with sharing (TRMM/SYRK/structured kernels).
    AwareShared,
}

impl CostKind {
    fn price(self, e: &Expr, ctx: &Context) -> u64 {
        match self {
            CostKind::NaiveShared => shared_cost(e, ctx, false),
            CostKind::AwareShared => shared_cost(e, ctx, true),
        }
    }
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The cheapest expression found.
    pub best: Expr,
    /// Its cost under the search's cost model.
    pub best_cost: u64,
    /// Cost of the original expression (same model).
    pub original_cost: u64,
    /// Number of distinct expressions explored.
    pub explored: usize,
}

impl OptResult {
    /// FLOP ratio original/best (≥ 1; how much the rewriting saved).
    pub fn speedup(&self) -> f64 {
        if self.best_cost == 0 {
            f64::INFINITY
        } else {
            self.original_cost as f64 / self.best_cost as f64
        }
    }
}

/// The rewriting engine: a rule set plus search budgets.
pub struct RewriteEngine {
    rules: Vec<Rule>,
    /// Maximum number of distinct expressions to explore.
    pub budget: usize,
    /// Expressions larger than this many AST nodes are not expanded
    /// (guards against runaway distribution on big sums).
    pub max_nodes: usize,
}

impl Default for RewriteEngine {
    fn default() -> Self {
        Self { rules: default_rules(), budget: 3000, max_nodes: 64 }
    }
}

impl RewriteEngine {
    /// Engine with the default rule set and budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with a custom rule set.
    pub fn with_rules(rules: Vec<Rule>) -> Self {
        Self { rules, ..Self::default() }
    }

    /// All expressions reachable from `e` by one rule application at any
    /// position.
    pub fn neighbors(&self, e: &Expr, ctx: &Context) -> Vec<Expr> {
        let mut out = Vec::new();
        // Apply at the root.
        for rule in &self.rules {
            out.extend((rule.apply)(e, ctx));
        }
        // Recurse into children, rebuilding the node around each rewritten
        // child.
        let children = e.children();
        for (i, child) in children.iter().enumerate() {
            for rewritten in self.neighbors(child, ctx) {
                let mut kids: Vec<Expr> = children.iter().map(|c| (*c).clone()).collect();
                kids[i] = rewritten;
                out.push(e.with_children(kids));
            }
        }
        out
    }

    /// Best-first search for the cheapest equivalent expression.
    pub fn optimize(&self, e: &Expr, ctx: &Context, cost: CostKind) -> OptResult {
        let original_cost = cost.price(e, ctx);
        let mut visited: HashSet<Expr> = HashSet::new();
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
        // Arena keeps expressions out of the heap's ordering (ties broken
        // by insertion order, keeping the search deterministic).
        let mut arena: Vec<Expr> = Vec::new();

        let mut best = e.clone();
        let mut best_cost = original_cost;

        visited.insert(e.clone());
        arena.push(e.clone());
        heap.push((Reverse(original_cost), 0));

        let mut explored = 0usize;
        while let Some((Reverse(c), idx)) = heap.pop() {
            explored += 1;
            if explored > self.budget {
                break;
            }
            let cur = arena[idx].clone();
            if c < best_cost || (c == best_cost && cur.node_count() < best.node_count()) {
                best = cur.clone();
                best_cost = c;
            }
            if cur.node_count() > self.max_nodes {
                continue;
            }
            for n in self.neighbors(&cur, ctx) {
                if visited.contains(&n) {
                    continue;
                }
                let nc = cost.price(&n, ctx);
                visited.insert(n.clone());
                let nidx = arena.len();
                arena.push(n);
                heap.push((Reverse(nc), nidx));
            }
        }

        OptResult { best, best_cost, original_cost, explored }
    }
}

/// Convenience: optimize with the default engine and rule set.
pub fn optimize_expr(e: &Expr, ctx: &Context, cost: CostKind) -> OptResult {
    RewriteEngine::new().optimize(e, ctx, cost)
}

/// Enumerate up to `limit` distinct equivalent variants (breadth-first) —
/// the derivation-graph exploration behind the paper's Fig. 1 variant list.
pub fn enumerate_variants(e: &Expr, ctx: &Context, limit: usize) -> Vec<Expr> {
    let engine = RewriteEngine::new();
    let mut visited: HashSet<Expr> = HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    visited.insert(e.clone());
    queue.push_back(e.clone());
    while let Some(cur) = queue.pop_front() {
        out.push(cur.clone());
        if out.len() >= limit {
            break;
        }
        if cur.node_count() > engine.max_nodes {
            continue;
        }
        for n in engine.neighbors(&cur, ctx) {
            if visited.insert(n.clone()) {
                queue.push_back(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::cost::naive_cost;
    use laab_expr::eval::{eval, Env};
    use laab_expr::{identity, var, Props};

    fn ctx(n: usize) -> Context {
        Context::new()
            .with("A", n, n)
            .with("B", n, n)
            .with("C", n, n)
            .with("H", n, n)
            .with("x", n, 1)
            .with("y", n, 1)
    }

    #[test]
    fn chain_search_finds_right_to_left() {
        let c = ctx(256);
        let e = var("H").t() * var("H") * var("x");
        let r = optimize_expr(&e, &c, CostKind::NaiveShared);
        assert_eq!(r.best, var("H").t() * (var("H") * var("x")));
        assert!(r.speedup() > 50.0, "O(n³) → O(n²) speedup, got {}", r.speedup());
    }

    #[test]
    fn image_restoration_finds_variant3() {
        // Fig. 1: from variant 1 the engine should reach (at least) the
        // two-GEMV cost of variant 3.
        let n = 128;
        let c = ctx(n);
        let (h, x, y) = (var("H"), var("x"), var("y"));
        let v1 = h.t() * y.clone() + (identity(n) - h.t() * h.clone()) * x.clone();
        let v3 = h.t() * (y.clone() - h.clone() * x.clone()) + x.clone();
        let r = optimize_expr(&v1, &c, CostKind::NaiveShared);
        let v3_cost = naive_cost(&v3, &c);
        assert!(
            r.best_cost <= v3_cost,
            "search cost {} should reach variant-3 cost {v3_cost}",
            r.best_cost
        );
        // And the value is preserved.
        let mut g = laab_dense::gen::OperandGen::new(77);
        let env = Env::<f64>::new()
            .with("H", g.matrix(n, n))
            .with("x", g.matrix(n, 1))
            .with("y", g.matrix(n, 1));
        assert!(eval(&r.best, &env).approx_eq(&eval(&v1, &env), 1e-10));
    }

    #[test]
    fn e3_reassociates_into_shared_form() {
        // (AᵀB)ᵀAᵀB: with shared pricing the engine should find a form
        // costing 2 GEMMs (the E2 shape).
        let n = 64;
        let c = ctx(n);
        let s = var("A").t() * var("B");
        let e3 = s.t() * var("A").t() * var("B");
        let r = optimize_expr(&e3, &c, CostKind::NaiveShared);
        let n3 = (n as u64).pow(3);
        assert_eq!(r.original_cost, 6 * n3, "E3 starts at 3 GEMMs");
        assert_eq!(r.best_cost, 4 * n3, "ends at 2 GEMMs");
    }

    #[test]
    fn aware_search_eliminates_orthogonal_product() {
        let n = 64;
        let c = Context::new().with_props("Q", n, n, Props::ORTHOGONAL).with("B", n, n);
        let e = (var("Q").t() * var("Q")) * var("B");
        let r = optimize_expr(&e, &c, CostKind::AwareShared);
        assert_eq!(r.best, var("B"));
        assert_eq!(r.best_cost, 0);
    }

    #[test]
    fn partial_access_rewrites_to_dot() {
        let n = 64;
        let c = ctx(n);
        let e = laab_expr::elem(var("A") * var("B"), 2, 2);
        let r = optimize_expr(&e, &c, CostKind::NaiveShared);
        assert_eq!(r.best, var("A").row(2) * var("B").col(2));
        assert_eq!(r.best_cost, 2 * n as u64);
    }

    #[test]
    fn variants_are_all_equivalent() {
        let n = 10;
        let c = ctx(n);
        let e = var("A") * (var("B") + var("C"));
        let variants = enumerate_variants(&e, &c, 30);
        assert!(variants.len() >= 2, "expected at least the distributed variant");
        let mut g = laab_dense::gen::OperandGen::new(5);
        let env = Env::<f64>::new()
            .with("A", g.matrix(n, n))
            .with("B", g.matrix(n, n))
            .with("C", g.matrix(n, n));
        let want = eval(&e, &env);
        for v in &variants {
            assert!(eval(v, &env).approx_eq(&want, 1e-10), "variant `{v}` differs from original");
        }
    }

    #[test]
    fn search_is_deterministic() {
        let c = ctx(32);
        let e = var("H").t() * var("H") * var("x") + var("A") * var("x");
        let r1 = optimize_expr(&e, &c, CostKind::NaiveShared);
        let r2 = optimize_expr(&e, &c, CostKind::NaiveShared);
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.best_cost, r2.best_cost);
    }
}
