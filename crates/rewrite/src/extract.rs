//! Cost-based extraction and the end-to-end e-graph optimization entry.
//!
//! After saturation every e-class holds all forms reachable from the rule
//! set; extraction recovers the single cheapest expression. The algorithm
//! is the standard bottom-up relaxation: each class's best cost is the
//! minimum over its member e-nodes of (node cost + sum of child-class
//! bests), iterated to a fixpoint. Because every node cost is ≥ 1, the
//! chosen nodes always form a well-founded DAG even though the saturated
//! graph is cyclic (bidirectional rules put `x` and rewrites *of* `x`
//! into mutually-referential classes). Ties keep the earliest member —
//! class node lists preserve insertion order with original-expression
//! nodes first, so an equal-cost rewrite never displaces the input form
//! (this is what makes extraction stable and the differential suite's
//! bitwise claims meaningful).
//!
//! [`optimize_egraph`] is the pipeline callers use: intern → saturate →
//! extract, with the budget-hit fallback the serving layer's
//! `saturation_budget_hit` counter reports.

use crate::cost::CostModel;
use crate::egraph::{EClassId, EGraph, ENode};
use crate::saturate::{egraph_rules, saturate, SaturateConfig, SaturateStats};
use laab_expr::{Context, Expr};
use std::collections::HashMap;

/// The cheapest expression of a class, with its modeled cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// The extracted expression tree.
    pub expr: Expr,
    /// Its total cost under the extraction [`CostModel`].
    pub cost: u64,
}

/// Extract the cheapest expression of `root`'s class under `model`.
/// Deterministic: fixed iteration order, strict-improvement updates,
/// first-member tie-breaking.
pub fn extract_best(eg: &EGraph, root: EClassId, model: &CostModel) -> Extraction {
    let ids = eg.class_ids();
    // best[class root id] = (cost, index of the chosen member node)
    let mut best: HashMap<u32, (u64, usize)> = HashMap::new();
    loop {
        let mut changed = false;
        for &id in &ids {
            for (idx, n) in eg.class(id).nodes.iter().enumerate() {
                let mut cost = model.enode_cost(eg, n);
                let mut ready = true;
                for ch in n.children() {
                    match best.get(&eg.find(ch).0) {
                        Some(&(c, _)) => cost = cost.saturating_add(c),
                        None => {
                            ready = false;
                            break;
                        }
                    }
                }
                if !ready {
                    continue;
                }
                if best.get(&id.0).is_none_or(|&(c, _)| cost < c) {
                    best.insert(id.0, (cost, idx));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let root = eg.find(root);
    let cost = best.get(&root.0).expect("root class extractable").0;
    Extraction { expr: build(eg, &best, root), cost }
}

/// Rebuild the chosen expression tree for `id`'s class.
fn build(eg: &EGraph, best: &HashMap<u32, (u64, usize)>, id: EClassId) -> Expr {
    let id = eg.find(id);
    let (_, idx) = best[&id.0];
    let node = &eg.class(id).nodes[idx];
    let sub = |c: &EClassId| Box::new(build(eg, best, *c));
    match node {
        ENode::Var(name) => Expr::Var(name.clone()),
        ENode::Identity(n) => Expr::Identity(*n),
        ENode::Transpose(x) => Expr::Transpose(sub(x)),
        ENode::Mul(a, b) => Expr::Mul(sub(a), sub(b)),
        ENode::Add(a, b) => Expr::Add(sub(a), sub(b)),
        ENode::Sub(a, b) => Expr::Sub(sub(a), sub(b)),
        ENode::Scale(c, x) => Expr::Scale(*c, sub(x)),
        ENode::Elem(x, i, j) => Expr::Elem(sub(x), *i, *j),
        ENode::Row(x, i) => Expr::Row(sub(x), *i),
        ENode::Col(x, j) => Expr::Col(sub(x), *j),
        ENode::VCat(a, b) => Expr::VCat(sub(a), sub(b)),
        ENode::HCat(a, b) => Expr::HCat(sub(a), sub(b)),
        ENode::BlockDiag(a, b) => Expr::BlockDiag(sub(a), sub(b)),
    }
}

/// Budgets plus the extraction cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EgraphConfig {
    /// Saturation budgets.
    pub saturate: SaturateConfig,
    /// Throughput-calibrated extraction costs.
    pub cost: CostModel,
}

/// Result of one end-to-end e-graph optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct EgraphResult {
    /// The extracted (or, on budget hit, the original) expression.
    pub best: Expr,
    /// Modeled cost of [`EgraphResult::best`].
    pub best_cost: u64,
    /// Modeled cost of the input expression (same units).
    pub original_cost: u64,
    /// What saturation did.
    pub stats: SaturateStats,
    /// `true` when extraction chose a different tree than the input.
    pub changed: bool,
}

/// Intern `expr`, saturate under `cfg`'s budgets, and extract the
/// cheapest equivalent form. On a budget hit the input expression is
/// returned unchanged (`changed == false`, `stats.budget_hit == true`)
/// so the caller can count the fallback and keep serving through the
/// pass pipeline alone.
pub fn optimize_egraph(expr: &Expr, ctx: &Context, cfg: &EgraphConfig) -> EgraphResult {
    let original_cost = cfg.cost.expr_cost(expr, ctx);
    let mut eg = EGraph::new(ctx);
    let root = eg.add_expr(expr);
    let stats = saturate(&mut eg, &egraph_rules(), &cfg.saturate);
    if stats.budget_hit {
        return EgraphResult {
            best: expr.clone(),
            best_cost: original_cost,
            original_cost,
            stats,
            changed: false,
        };
    }
    let ext = extract_best(&eg, root, &cfg.cost);
    let changed = ext.expr != *expr;
    EgraphResult { best: ext.expr, best_cost: ext.cost, original_cost, stats, changed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::{elem, var};

    #[test]
    fn chain_extracts_right_to_left() {
        let ctx = Context::new().with("H", 32, 32).with("x", 32, 1);
        let e = (var("H").t() * var("H")) * var("x");
        let r = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        assert!(r.changed, "reassociation discovered");
        assert!(r.best_cost < r.original_cost);
        let want = var("H").t() * (var("H") * var("x"));
        assert_eq!(r.best, want, "two GEMVs beat GEMM+GEMV");
    }

    #[test]
    fn distributive_family_factors() {
        let ctx = Context::new().with("A", 24, 24).with("B", 24, 24).with("C", 24, 24);
        let e = var("A") * var("B") + var("A") * var("C");
        let r = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        assert!(r.changed);
        assert_eq!(r.best, var("A") * (var("B") + var("C")), "one GEMM instead of two");
        assert!(r.best_cost < r.original_cost);
    }

    #[test]
    fn slice_pushes_down_to_a_dot() {
        let ctx = Context::new().with("A", 32, 32).with("B", 32, 32);
        let e = elem(var("A") * var("B"), 0, 0);
        let r = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        assert!(r.changed);
        assert_eq!(r.best, var("A").row(0) * var("B").col(0), "full GEMM replaced by a dot");
    }

    #[test]
    fn stable_when_nothing_cheaper_exists() {
        // Hᵀ(y − Hx) is already optimal under the model: extraction must
        // return it unchanged (ties keep the original member).
        let ctx = Context::new().with("H", 16, 16).with("x", 16, 1).with("y", 16, 1);
        let e = var("H").t() * (var("y") - var("H") * var("x"));
        let r = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        assert_eq!(r.best, e, "no spurious rewriting");
        assert!(!r.changed);
        assert_eq!(r.best_cost, r.original_cost);
    }

    #[test]
    fn budget_hit_returns_input_unchanged() {
        let ctx = Context::new().with("A", 4, 4);
        let mut e = var("A");
        for _ in 0..24 {
            e = e.clone() * var("A") + var("A");
        }
        let cfg = EgraphConfig {
            saturate: SaturateConfig { max_iters: 16, max_nodes: 150 },
            ..Default::default()
        };
        let r = optimize_egraph(&e, &ctx, &cfg);
        assert!(r.stats.budget_hit);
        assert!(!r.changed);
        assert_eq!(r.best, e);
    }

    #[test]
    fn orthogonal_gram_materializes_identity() {
        let ctx = Context::new().with_props("Q", 8, 8, laab_expr::Props::ORTHOGONAL);
        let e = var("Q").t() * var("Q");
        let r = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        assert!(r.changed);
        assert_eq!(r.best, laab_expr::identity(8));
    }
}
