//! # laab-rewrite — the derivation-graph rewriting engine
//!
//! The Linnea-style layer the paper's Discussion sections call for: starting
//! from the user's expression, algebraic rewrite rules span a *derivation
//! graph* whose nodes are mathematically-equivalent expressions; a
//! best-first search over that graph finds the variant with the lowest FLOP
//! count (priced with sharing, so CSE-friendly variants win).
//!
//! The rule inventory covers exactly the optimizations Experiments 1–5 show
//! the frameworks are missing:
//!
//! | Rule | Experiment |
//! |------|------------|
//! | chain re-association (DP-optimal + local rotations) | 2 |
//! | distributivity (expand *and* factor) | 4, Fig. 1 |
//! | transpose distribution / cancellation | 1 (enables CSE on `E3`) |
//! | identity & orthogonality elimination (`QᵀQ → I`, `I·X → X`) | 3 |
//! | blocked-matrix splitting | 4, Eq. 11 |
//! | slicing push-down (`(A·B)[i,j] → A[i,:]·B[:,j]`) | 5 |
//! | scaling fusion (`X+X → 2X`) | 1 |
//!
//! [`aware_eval`] executes an expression with property dispatch
//! (TRMM/SYRK/tridiagonal/diagonal kernels), completing the "what the
//! frameworks could do" execution path that the benchmark tables compare
//! against.
//!
//! ## The e-graph layer
//!
//! The best-first engine explores one expression at a time and therefore
//! misses rewrites that require a temporary cost increase. The
//! equality-saturation layer ([`egraph`], [`mod@saturate`], [`extract`],
//! [`cost`]) keeps every equivalent form at once: expressions are
//! interned into an arena-backed e-graph (union-find + congruence
//! closure, no external deps), saturated under iteration/node budgets
//! with the full bidirectional rule set, and the cheapest form is
//! extracted with a cost model calibrated by measured `BENCH_gemm.json`
//! GFLOP/s curves. [`optimize_egraph`] is the entry point `laab serve
//! --opt egraph` compiles through.

#![deny(missing_docs)]

mod aware_eval;
pub mod cost;
pub mod egraph;
mod engine;
pub mod extract;
pub mod rules;
pub mod saturate;
mod solve;

pub use aware_eval::aware_eval;
pub use cost::CostModel;
pub use egraph::{EClass, EClassId, EGraph, ENode, Rhs};
pub use engine::{enumerate_variants, optimize_expr, CostKind, OptResult, RewriteEngine};
pub use extract::{extract_best, optimize_egraph, EgraphConfig, EgraphResult, Extraction};
pub use saturate::{egraph_rules, saturate, EgraphRule, SaturateConfig, SaturateStats};
pub use solve::{solve_aware, SolveError, SolvePath};
