//! # laab-rewrite — the derivation-graph rewriting engine
//!
//! The Linnea-style layer the paper's Discussion sections call for: starting
//! from the user's expression, algebraic rewrite rules span a *derivation
//! graph* whose nodes are mathematically-equivalent expressions; a
//! best-first search over that graph finds the variant with the lowest FLOP
//! count (priced with sharing, so CSE-friendly variants win).
//!
//! The rule inventory covers exactly the optimizations Experiments 1–5 show
//! the frameworks are missing:
//!
//! | Rule | Experiment |
//! |------|------------|
//! | chain re-association (DP-optimal + local rotations) | 2 |
//! | distributivity (expand *and* factor) | 4, Fig. 1 |
//! | transpose distribution / cancellation | 1 (enables CSE on `E3`) |
//! | identity & orthogonality elimination (`QᵀQ → I`, `I·X → X`) | 3 |
//! | blocked-matrix splitting | 4, Eq. 11 |
//! | slicing push-down (`(A·B)[i,j] → A[i,:]·B[:,j]`) | 5 |
//! | scaling fusion (`X+X → 2X`) | 1 |
//!
//! [`aware_eval`] executes an expression with property dispatch
//! (TRMM/SYRK/tridiagonal/diagonal kernels), completing the "what the
//! frameworks could do" execution path that the benchmark tables compare
//! against.

#![deny(missing_docs)]

mod aware_eval;
mod engine;
pub mod rules;
mod solve;

pub use aware_eval::aware_eval;
pub use engine::{enumerate_variants, optimize_expr, CostKind, OptResult, RewriteEngine};
pub use solve::{solve_aware, SolveError, SolvePath};
