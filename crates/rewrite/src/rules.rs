//! The algebraic rewrite rules.
//!
//! Every rule is a pure function from an expression (and the typing
//! context) to the list of equivalent expressions obtainable by applying
//! the rule *at the root*. The engine lifts rules to arbitrary positions.
//! Rules must be semantics-preserving — `tests/` property-checks each one
//! numerically on random operands.

use laab_chain::{chain_dims, optimal_parenthesization};
use laab_expr::{Context, Expr, Props};

/// A named rewrite rule.
#[derive(Clone, Copy)]
pub struct Rule {
    /// Stable name (reported in derivation paths).
    pub name: &'static str,
    /// Root-position application.
    pub apply: fn(&Expr, &Context) -> Vec<Expr>,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rule({})", self.name)
    }
}

/// The full default rule set.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule { name: "distribute", apply: distribute },
        Rule { name: "factor", apply: factor },
        Rule { name: "transpose-distribute", apply: transpose_distribute },
        Rule { name: "transpose-cancel", apply: transpose_cancel },
        Rule { name: "identity-eliminate", apply: identity_eliminate },
        Rule { name: "reassociate", apply: reassociate },
        Rule { name: "reassociate-optimal", apply: reassociate_optimal },
        Rule { name: "blocked-split", apply: blocked_split },
        Rule { name: "slicing-pushdown", apply: slicing_pushdown },
        Rule { name: "scale-fuse", apply: scale_fuse },
        Rule { name: "sum-rearrange", apply: sum_rearrange },
    ]
}

/// `A(B±C) → AB ± AC` and `(A±B)C → AC ± BC`.
pub fn distribute(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Mul(a, bc) = e {
        match &**bc {
            Expr::Add(b, c) => {
                out.push(Expr::Mul(a.clone(), b.clone()) + Expr::Mul(a.clone(), c.clone()))
            }
            Expr::Sub(b, c) => {
                out.push(Expr::Mul(a.clone(), b.clone()) - Expr::Mul(a.clone(), c.clone()))
            }
            _ => {}
        }
        if let Expr::Add(x, y) = &**a {
            out.push(Expr::Mul(x.clone(), bc.clone()) + Expr::Mul(y.clone(), bc.clone()));
        }
        if let Expr::Sub(x, y) = &**a {
            out.push(Expr::Mul(x.clone(), bc.clone()) - Expr::Mul(y.clone(), bc.clone()));
        }
    }
    out
}

/// `AB ± AC → A(B±C)` and `AC ± BC → (A±B)C` (the inverse of
/// [`distribute`]; both directions are needed because either can lower the
/// FLOP count — the paper's Eq. 9 vs Eq. 10).
pub fn factor(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    let (l, r, is_add) = match e {
        Expr::Add(l, r) => (l, r, true),
        Expr::Sub(l, r) => (l, r, false),
        _ => return out,
    };
    if let (Expr::Mul(a1, b), Expr::Mul(a2, c)) = (&**l, &**r) {
        let combine = |x: &Expr, y: &Expr| {
            if is_add {
                x.clone() + y.clone()
            } else {
                x.clone() - y.clone()
            }
        };
        if a1 == a2 {
            out.push(Expr::Mul(a1.clone(), Box::new(combine(b, c))));
        }
        if b == c {
            out.push(Expr::Mul(Box::new(combine(a1, a2)), b.clone()));
        }
    }
    out
}

/// `(AB)ᵀ → BᵀAᵀ`, `(A±B)ᵀ → Aᵀ±Bᵀ`, `(cA)ᵀ → cAᵀ` — and the reverse
/// contraction `BᵀAᵀ → (AB)ᵀ` (the paper's footnote 6, `UᵀVᵀ = (VU)ᵀ`,
/// which is how a user exposes the common subexpression in `E2`).
pub fn transpose_distribute(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Transpose(inner) = e {
        match &**inner {
            Expr::Mul(a, b) => {
                out.push(Expr::Mul(Box::new(b.t()), Box::new(a.t())));
            }
            Expr::Add(a, b) => out.push(a.t() + b.t()),
            Expr::Sub(a, b) => out.push(a.t() - b.t()),
            Expr::Scale(c, x) => out.push(Expr::Scale(*c, Box::new(x.t()))),
            _ => {}
        }
    }
    if let Expr::Mul(bt, at) = e {
        if let (Expr::Transpose(b), Expr::Transpose(a)) = (&**bt, &**at) {
            out.push(Expr::Mul(a.clone(), b.clone()).t());
        }
    }
    out
}

/// `(Xᵀ)ᵀ → X`, and `Xᵀ → X` when `X` is (inferred) symmetric.
pub fn transpose_cancel(e: &Expr, ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Transpose(inner) = e {
        if let Expr::Transpose(x) = &**inner {
            out.push((**x).clone());
        }
        if inner.props(ctx).contains(Props::SYMMETRIC) {
            out.push((**inner).clone());
        }
    }
    out
}

/// `I·X → X`, `X·I → X`, and `E → I` when inference proves `E` evaluates
/// to the identity (e.g. `QᵀQ` for orthogonal `Q` — Experiment 3's
/// discussion).
pub fn identity_eliminate(e: &Expr, ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Mul(a, b) = e {
        if a.props(ctx).contains(Props::IDENTITY) {
            out.push((**b).clone());
        }
        if b.props(ctx).contains(Props::IDENTITY) {
            out.push((**a).clone());
        }
    }
    // Collapse a non-trivial identity-valued expression to the literal.
    if !matches!(e, Expr::Identity(_) | Expr::Var(_)) && e.props(ctx).contains(Props::IDENTITY) {
        if let Ok(s) = e.try_shape(ctx) {
            if s.is_square() {
                out.push(Expr::Identity(s.rows));
            }
        }
    }
    out
}

/// Local rotations `(AB)C ↔ A(BC)` — the one-step associativity moves.
pub fn reassociate(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Mul(l, c) = e {
        if let Expr::Mul(a, b) = &**l {
            out.push(Expr::Mul(a.clone(), Box::new(Expr::Mul(b.clone(), c.clone()))));
        }
    }
    if let Expr::Mul(a, r) = e {
        if let Expr::Mul(b, c) = &**r {
            out.push(Expr::Mul(Box::new(Expr::Mul(a.clone(), b.clone())), c.clone()));
        }
    }
    out
}

/// Jump straight to the DP-optimal parenthesization of a whole product
/// chain (what `multi_dot` computes) — a macro-step that keeps the search
/// shallow on long chains.
pub fn reassociate_optimal(e: &Expr, ctx: &Context) -> Vec<Expr> {
    let factors: Vec<Expr> = e.product_factors().into_iter().cloned().collect();
    if factors.len() < 3 {
        return vec![];
    }
    let Some(dims) = chain_dims(e, ctx) else { return vec![] };
    let (_, tree) = optimal_parenthesization(&dims);
    let opt = tree.to_expr(&factors);
    if &opt == e {
        vec![]
    } else {
        vec![opt]
    }
}

/// `blkdiag(A₁,A₂)·[B₁;B₂] → [A₁B₁; A₂B₂]` (Eq. 11) — requires conformal
/// blocks, which the shapes certify.
pub fn blocked_split(e: &Expr, ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Mul(l, r) = e {
        if let (Expr::BlockDiag(a1, a2), Expr::VCat(b1, b2)) = (&**l, &**r) {
            let (Ok(sa1), Ok(sb1)) = (a1.try_shape(ctx), b1.try_shape(ctx)) else {
                return out;
            };
            if sa1.cols == sb1.rows {
                out.push(laab_expr::vcat(
                    Expr::Mul(a1.clone(), b1.clone()),
                    Expr::Mul(a2.clone(), b2.clone()),
                ));
            }
        }
    }
    out
}

/// Push slicing through sums, scalings, transposes and products:
/// the partial-operand-access recommendation of Experiment 5.
pub fn slicing_pushdown(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Elem(x, i, j) => match &**x {
            Expr::Add(a, b) => {
                out.push(Expr::Elem(a.clone(), *i, *j) + Expr::Elem(b.clone(), *i, *j));
            }
            Expr::Sub(a, b) => {
                out.push(Expr::Elem(a.clone(), *i, *j) - Expr::Elem(b.clone(), *i, *j));
            }
            Expr::Scale(c, inner) => {
                out.push(Expr::Scale(*c, Box::new(Expr::Elem(inner.clone(), *i, *j))));
            }
            Expr::Transpose(inner) => out.push(Expr::Elem(inner.clone(), *j, *i)),
            // (A·B)[i,j] → A[i,:]·B[:,j] — the O(n) dot product.
            Expr::Mul(a, b) => out.push(Expr::Mul(
                Box::new(Expr::Row(a.clone(), *i)),
                Box::new(Expr::Col(b.clone(), *j)),
            )),
            _ => {}
        },
        Expr::Row(x, i) => match &**x {
            Expr::Add(a, b) => {
                out.push(Expr::Row(a.clone(), *i) + Expr::Row(b.clone(), *i));
            }
            Expr::Sub(a, b) => {
                out.push(Expr::Row(a.clone(), *i) - Expr::Row(b.clone(), *i));
            }
            Expr::Mul(a, b) => {
                out.push(Expr::Mul(Box::new(Expr::Row(a.clone(), *i)), b.clone()));
            }
            _ => {}
        },
        Expr::Col(x, j) => match &**x {
            Expr::Add(a, b) => {
                out.push(Expr::Col(a.clone(), *j) + Expr::Col(b.clone(), *j));
            }
            Expr::Sub(a, b) => {
                out.push(Expr::Col(a.clone(), *j) - Expr::Col(b.clone(), *j));
            }
            Expr::Mul(a, b) => {
                out.push(Expr::Mul(a.clone(), Box::new(Expr::Col(b.clone(), *j))));
            }
            _ => {}
        },
        _ => {}
    }
    out
}

/// Commutativity/associativity of sums in one bounded step: flatten the
/// maximal `±` tree into signed terms, then for every pair of terms emit
/// the variant that combines that pair first (left-folding the rest).
///
/// This is what lets [`factor`] see `Hᵀy − Hᵀ(Hx)` as adjacent inside
/// `Hᵀy + x − Hᵀ(Hx)` and reach the paper's Fig. 1 variant 3.
pub fn sum_rearrange(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    fn flatten(e: &Expr, positive: bool, out: &mut Vec<(bool, Expr)>) {
        match e {
            Expr::Add(a, b) => {
                flatten(a, positive, out);
                flatten(b, positive, out);
            }
            Expr::Sub(a, b) => {
                flatten(a, positive, out);
                flatten(b, !positive, out);
            }
            other => out.push((positive, other.clone())),
        }
    }
    fn rebuild(terms: &[(bool, Expr)]) -> Option<Expr> {
        let first_pos = terms.iter().position(|(p, _)| *p)?;
        let mut acc = terms[first_pos].1.clone();
        for (i, (pos, t)) in terms.iter().enumerate() {
            if i == first_pos {
                continue;
            }
            acc = if *pos { acc + t.clone() } else { acc - t.clone() };
        }
        Some(acc)
    }

    if !matches!(e, Expr::Add(_, _) | Expr::Sub(_, _)) {
        return vec![];
    }
    let mut terms = Vec::new();
    flatten(e, true, &mut terms);
    if terms.len() < 3 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..terms.len() {
        for j in i + 1..terms.len() {
            let (si, ti) = &terms[i];
            let (sj, tj) = &terms[j];
            let combined = if si == sj {
                (*si, ti.clone() + tj.clone())
            } else {
                (*si, ti.clone() - tj.clone())
            };
            let mut rest: Vec<(bool, Expr)> = Vec::with_capacity(terms.len() - 1);
            for (k, t) in terms.iter().enumerate() {
                if k == i {
                    rest.push(combined.clone());
                } else if k != j {
                    rest.push(t.clone());
                }
            }
            if let Some(r) = rebuild(&rest) {
                if &r != e {
                    out.push(r);
                }
            }
        }
    }
    out
}

/// `X+X → 2X` and `c(dX) → (cd)X`.
pub fn scale_fuse(e: &Expr, _ctx: &Context) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Add(a, b) = e {
        if a == b {
            out.push(laab_expr::scale(2.0, (**a).clone()));
        }
    }
    if let Expr::Scale(c, x) = e {
        if let Expr::Scale(d, inner) = &**x {
            out.push(laab_expr::scale(c.0 * d.0, (**inner).clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::{identity, var};

    fn ctx(n: usize) -> Context {
        Context::new()
            .with("A", n, n)
            .with("B", n, n)
            .with("C", n, n)
            .with("H", n, n)
            .with("x", n, 1)
            .with_props("Q", n, n, Props::ORTHOGONAL)
            .with_props("S", n, n, Props::SYMMETRIC)
    }

    #[test]
    fn distribute_both_sides() {
        let c = ctx(4);
        let e = var("A") * (var("B") + var("C"));
        let got = distribute(&e, &c);
        assert_eq!(got, vec![var("A") * var("B") + var("A") * var("C")]);
        let e2 = (var("A") - var("B")) * var("C");
        let got2 = distribute(&e2, &c);
        assert_eq!(got2, vec![var("A") * var("C") - var("B") * var("C")]);
    }

    #[test]
    fn factor_requires_shared_operand() {
        let c = ctx(4);
        let e = var("A") * var("B") + var("A") * var("C");
        assert_eq!(factor(&e, &c), vec![var("A") * (var("B") + var("C"))]);
        let no = var("A") * var("B") + var("C") * var("B");
        assert_eq!(factor(&no, &c), vec![(var("A") + var("C")) * var("B")]);
        let none = var("A") * var("B") + var("C") * var("H");
        assert!(factor(&none, &c).is_empty());
    }

    #[test]
    fn transpose_rules() {
        let c = ctx(4);
        let e = (var("A") * var("B")).t();
        assert_eq!(transpose_distribute(&e, &c), vec![var("B").t() * var("A").t()]);
        // Contraction direction.
        let e2 = var("B").t() * var("A").t();
        assert_eq!(transpose_distribute(&e2, &c), vec![(var("A") * var("B")).t()]);
        // Cancellation.
        let e3 = var("A").t().t();
        assert_eq!(transpose_cancel(&e3, &c), vec![var("A")]);
        // Symmetric transpose elimination.
        let e4 = var("S").t();
        assert_eq!(transpose_cancel(&e4, &c), vec![var("S")]);
    }

    #[test]
    fn identity_rules() {
        let c = ctx(4);
        let e = identity(4) * var("A");
        assert_eq!(identity_eliminate(&e, &c), vec![var("A")]);
        let qtq = var("Q").t() * var("Q");
        let got = identity_eliminate(&qtq, &c);
        assert!(got.contains(&identity(4)), "QᵀQ collapses to I: {got:?}");
    }

    #[test]
    fn reassociation_rotations() {
        let c = ctx(4);
        let e = (var("A") * var("B")) * var("x");
        assert_eq!(reassociate(&e, &c), vec![var("A") * (var("B") * var("x"))]);
        let e2 = var("A") * (var("B") * var("x"));
        assert_eq!(reassociate(&e2, &c), vec![(var("A") * var("B")) * var("x")]);
    }

    #[test]
    fn reassociate_optimal_jumps_to_dp_order() {
        let c = ctx(64);
        // HᵀHx left-to-right → right-to-left in one step.
        let e = var("H").t() * var("H") * var("x");
        let got = reassociate_optimal(&e, &c);
        assert_eq!(got, vec![var("H").t() * (var("H") * var("x"))]);
        // Already optimal → no child (avoids self-loops in the search).
        assert!(reassociate_optimal(&got[0], &c).is_empty());
    }

    #[test]
    fn blocked_split_checks_conformality() {
        let c = Context::new().with("A1", 2, 2).with("A2", 3, 3).with("B1", 2, 4).with("B2", 3, 4);
        let e = laab_expr::block_diag(var("A1"), var("A2")) * laab_expr::vcat(var("B1"), var("B2"));
        let got = blocked_split(&e, &c);
        assert_eq!(got, vec![laab_expr::vcat(var("A1") * var("B1"), var("A2") * var("B2"))]);
        // Non-conformal blocks: no rewrite.
        let bad_ctx =
            Context::new().with("A1", 2, 3).with("A2", 3, 2).with("B1", 2, 4).with("B2", 3, 4);
        assert!(blocked_split(&e, &bad_ctx).is_empty());
    }

    #[test]
    fn slicing_pushdown_cases() {
        let c = ctx(4);
        let sum = laab_expr::elem(var("A") + var("B"), 2, 2);
        assert_eq!(
            slicing_pushdown(&sum, &c),
            vec![laab_expr::elem(var("A"), 2, 2) + laab_expr::elem(var("B"), 2, 2)]
        );
        let prod = laab_expr::elem(var("A") * var("B"), 2, 2);
        assert_eq!(slicing_pushdown(&prod, &c), vec![var("A").row(2) * var("B").col(2)]);
        let tr = laab_expr::elem(var("A").t(), 1, 3);
        assert_eq!(slicing_pushdown(&tr, &c), vec![laab_expr::elem(var("A"), 3, 1)]);
        let rowp = (var("A") * var("B")).row(1);
        assert_eq!(slicing_pushdown(&rowp, &c), vec![var("A").row(1) * var("B")]);
    }

    #[test]
    fn scale_fusion() {
        let c = ctx(4);
        let e = var("A") + var("A");
        assert_eq!(scale_fuse(&e, &c), vec![laab_expr::scale(2.0, var("A"))]);
        let nested = laab_expr::scale(3.0, laab_expr::scale(2.0, var("A")));
        assert_eq!(scale_fuse(&nested, &c), vec![laab_expr::scale(6.0, var("A"))]);
    }
}
