//! Equality saturation: the e-graph rule set and the budgeted loop.
//!
//! Each rule is a pure function from one `(class, member-node)` pair to
//! the list of equivalent right-hand sides; the loop matches every rule
//! against every class (in deterministic id order), interns the results,
//! unions them with the matched class, and repairs congruence — repeating
//! until no union changes the graph (*saturation*) or a budget trips.
//! Budgets are two-dimensional: an iteration cap and an e-node cap
//! ([`SaturateConfig`]); exceeding the node cap sets
//! [`SaturateStats::budget_hit`], which callers treat as "fall back to
//! the pass pipeline".
//!
//! The set ports every rule of [`crate::rules`] and adds the directions
//! the best-first engine could not afford to explore (they temporarily
//! *increase* cost): distributivity ↔ factoring, transpose pushing ↔
//! contraction, slice pushdown ↔ pull-up, and `a − b` ↔ `a + (−1)·b`.
//! Property-guarded rules (symmetric-transpose elimination, identity
//! elimination/materialization) fire only on classes whose *declared or
//! inferred* [`Props`] prove the precondition — a
//! numerically near-symmetric operand without the `SYMMETRIC` bit never
//! triggers them (the rule-soundness suite fuzzes exactly this boundary).
//! The tridiagonal/SYRK specializations need no structural rule: the
//! extraction [`CostModel`](crate::CostModel) prices them through the
//! property-discounted flop counts.

use crate::egraph::{radd, rmul, rscale, rsub, EClassId, EGraph, ENode, Rhs};
use laab_expr::{Factor, Props};

/// One e-graph rewrite rule.
#[derive(Clone, Copy)]
pub struct EgraphRule {
    /// Stable name (reported by tests and docs).
    pub name: &'static str,
    /// `true` when this rule (or its paired rule) realizes both
    /// directions of an equivalence the best-first engine explored only
    /// one way.
    pub bidirectional: bool,
    /// Match at `(class, node)`, returning equivalent right-hand sides.
    pub apply: fn(&EGraph, EClassId, &ENode) -> Vec<Rhs>,
}

impl std::fmt::Debug for EgraphRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EgraphRule({})", self.name)
    }
}

/// The full rule set, in deterministic application order.
pub fn egraph_rules() -> Vec<EgraphRule> {
    vec![
        EgraphRule { name: "distribute", bidirectional: true, apply: distribute },
        EgraphRule { name: "factor", bidirectional: true, apply: factor },
        EgraphRule {
            name: "transpose_distribute",
            bidirectional: true,
            apply: transpose_distribute,
        },
        EgraphRule { name: "transpose_contract", bidirectional: true, apply: transpose_contract },
        EgraphRule { name: "transpose_cancel", bidirectional: false, apply: transpose_cancel },
        EgraphRule { name: "identity_eliminate", bidirectional: false, apply: identity_eliminate },
        EgraphRule {
            name: "identity_materialize",
            bidirectional: false,
            apply: identity_materialize,
        },
        EgraphRule { name: "reassociate", bidirectional: true, apply: reassociate },
        EgraphRule { name: "slice_pushdown", bidirectional: true, apply: slice_pushdown },
        EgraphRule { name: "slice_pullup", bidirectional: true, apply: slice_pullup },
        EgraphRule { name: "scale_fuse", bidirectional: false, apply: scale_fuse },
        EgraphRule { name: "sum_commute", bidirectional: false, apply: sum_commute },
        EgraphRule { name: "sum_assoc", bidirectional: true, apply: sum_assoc },
        EgraphRule { name: "sub_normalize", bidirectional: true, apply: sub_normalize },
        EgraphRule { name: "blocked_split", bidirectional: false, apply: blocked_split },
    ]
}

fn cls(id: EClassId) -> Rhs {
    Rhs::Class(id)
}

/// `A·(B ± C) → A·B ± A·C` and `(B ± C)·A → B·A ± C·A`.
fn distribute(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Mul(a, b) = n else { return vec![] };
    let mut out = Vec::new();
    for m in &eg.class(*b).nodes {
        match m {
            ENode::Add(x, y) => out.push(radd(rmul(cls(*a), cls(*x)), rmul(cls(*a), cls(*y)))),
            ENode::Sub(x, y) => out.push(rsub(rmul(cls(*a), cls(*x)), rmul(cls(*a), cls(*y)))),
            _ => {}
        }
    }
    for m in &eg.class(*a).nodes {
        match m {
            ENode::Add(x, y) => out.push(radd(rmul(cls(*x), cls(*b)), rmul(cls(*y), cls(*b)))),
            ENode::Sub(x, y) => out.push(rsub(rmul(cls(*x), cls(*b)), rmul(cls(*y), cls(*b)))),
            _ => {}
        }
    }
    out
}

/// `A·B ± A·C → A·(B ± C)` and `A·C ± B·C → (A ± B)·C` — the direction
/// the best-first engine reaches only by luck, and the rewrite that turns
/// the Distributive serving family from two GEMMs into one.
fn factor(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let (x, y, sub) = match n {
        ENode::Add(x, y) => (x, y, false),
        ENode::Sub(x, y) => (x, y, true),
        _ => return vec![],
    };
    let combine = |l: Rhs, r: Rhs| if sub { rsub(l, r) } else { radd(l, r) };
    let mut out = Vec::new();
    for mx in &eg.class(*x).nodes {
        let ENode::Mul(a, b) = mx else { continue };
        for my in &eg.class(*y).nodes {
            let ENode::Mul(c, d) = my else { continue };
            if eg.find(*a) == eg.find(*c) {
                out.push(rmul(cls(*a), combine(cls(*b), cls(*d))));
            }
            if eg.find(*b) == eg.find(*d) {
                out.push(rmul(combine(cls(*a), cls(*c)), cls(*b)));
            }
        }
    }
    out
}

/// `(A·B)ᵀ → Bᵀ·Aᵀ`, `(A ± B)ᵀ → Aᵀ ± Bᵀ`, `(c·A)ᵀ → c·Aᵀ`.
fn transpose_distribute(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Transpose(x) = n else { return vec![] };
    let mut out = Vec::new();
    for m in &eg.class(*x).nodes {
        match m {
            ENode::Mul(a, b) => out.push(rmul(cls(*b).t(), cls(*a).t())),
            ENode::Add(a, b) => out.push(radd(cls(*a).t(), cls(*b).t())),
            ENode::Sub(a, b) => out.push(rsub(cls(*a).t(), cls(*b).t())),
            ENode::Scale(c, y) => out.push(rscale(*c, cls(*y).t())),
            _ => {}
        }
    }
    out
}

/// `Bᵀ·Aᵀ → (A·B)ᵀ` — the contraction direction.
fn transpose_contract(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Mul(p, q) = n else { return vec![] };
    let mut out = Vec::new();
    for mp in &eg.class(*p).nodes {
        let ENode::Transpose(a) = mp else { continue };
        for mq in &eg.class(*q).nodes {
            let ENode::Transpose(b) = mq else { continue };
            out.push(rmul(cls(*b), cls(*a)).t());
        }
    }
    out
}

/// `(Xᵀ)ᵀ → X`, and `Xᵀ → X` when the class proves `SYMMETRIC`.
fn transpose_cancel(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Transpose(x) = n else { return vec![] };
    let mut out = Vec::new();
    for m in &eg.class(*x).nodes {
        if let ENode::Transpose(y) = m {
            out.push(cls(*y));
        }
    }
    if eg.class(*x).props.contains(Props::SYMMETRIC) {
        out.push(cls(*x));
    }
    out
}

/// `I·X → X` and `X·I → X` when the factor's class proves `IDENTITY`.
fn identity_eliminate(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Mul(a, b) = n else { return vec![] };
    let mut out = Vec::new();
    let square = |id: &EClassId| {
        let s = eg.class(*id).shape;
        s.rows == s.cols
    };
    if eg.class(*a).props.contains(Props::IDENTITY) && square(a) {
        out.push(cls(*b));
    }
    if eg.class(*b).props.contains(Props::IDENTITY) && square(b) {
        out.push(cls(*a));
    }
    out
}

/// Any square class proving `IDENTITY` also equals the literal
/// `Identity(n)` node (so e.g. `QᵀQ` for declared-orthogonal `Q`
/// disappears entirely).
fn identity_materialize(eg: &EGraph, id: EClassId, _n: &ENode) -> Vec<Rhs> {
    let c = eg.class(id);
    if c.props.contains(Props::IDENTITY) && c.shape.rows == c.shape.cols {
        vec![Rhs::Identity(c.shape.rows)]
    } else {
        vec![]
    }
}

/// Both rotations of `·`-associativity; under saturation these generate
/// every parenthesization, and extraction plays the matrix-chain DP.
fn reassociate(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Mul(x, y) = n else { return vec![] };
    let mut out = Vec::new();
    for m in &eg.class(*x).nodes {
        if let ENode::Mul(a, b) = m {
            out.push(rmul(cls(*a), rmul(cls(*b), cls(*y))));
        }
    }
    for m in &eg.class(*y).nodes {
        if let ENode::Mul(b, c) = m {
            out.push(rmul(rmul(cls(*x), cls(*b)), cls(*c)));
        }
    }
    out
}

/// Push `Elem`/`Row`/`Col` through `±`, scaling, transposition, and
/// products: `(A·B)[i,j] → A[i,:]·B[:,j]` and friends (Experiment 4's
/// slicing trap).
fn slice_pushdown(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let mut out = Vec::new();
    match n {
        ENode::Elem(x, i, j) => {
            for m in &eg.class(*x).nodes {
                match m {
                    ENode::Add(a, b) => out.push(radd(
                        Rhs::Elem(Box::new(cls(*a)), *i, *j),
                        Rhs::Elem(Box::new(cls(*b)), *i, *j),
                    )),
                    ENode::Sub(a, b) => out.push(rsub(
                        Rhs::Elem(Box::new(cls(*a)), *i, *j),
                        Rhs::Elem(Box::new(cls(*b)), *i, *j),
                    )),
                    ENode::Scale(c, y) => {
                        out.push(rscale(*c, Rhs::Elem(Box::new(cls(*y)), *i, *j)))
                    }
                    ENode::Transpose(y) => out.push(Rhs::Elem(Box::new(cls(*y)), *j, *i)),
                    ENode::Mul(a, b) => out.push(rmul(
                        Rhs::Row(Box::new(cls(*a)), *i),
                        Rhs::Col(Box::new(cls(*b)), *j),
                    )),
                    _ => {}
                }
            }
        }
        ENode::Row(x, i) => {
            for m in &eg.class(*x).nodes {
                match m {
                    ENode::Add(a, b) => out.push(radd(
                        Rhs::Row(Box::new(cls(*a)), *i),
                        Rhs::Row(Box::new(cls(*b)), *i),
                    )),
                    ENode::Sub(a, b) => out.push(rsub(
                        Rhs::Row(Box::new(cls(*a)), *i),
                        Rhs::Row(Box::new(cls(*b)), *i),
                    )),
                    ENode::Scale(c, y) => out.push(rscale(*c, Rhs::Row(Box::new(cls(*y)), *i))),
                    ENode::Transpose(y) => out.push(Rhs::Col(Box::new(cls(*y)), *i).t()),
                    ENode::Mul(a, b) => out.push(rmul(Rhs::Row(Box::new(cls(*a)), *i), cls(*b))),
                    _ => {}
                }
            }
        }
        ENode::Col(x, j) => {
            for m in &eg.class(*x).nodes {
                match m {
                    ENode::Add(a, b) => out.push(radd(
                        Rhs::Col(Box::new(cls(*a)), *j),
                        Rhs::Col(Box::new(cls(*b)), *j),
                    )),
                    ENode::Sub(a, b) => out.push(rsub(
                        Rhs::Col(Box::new(cls(*a)), *j),
                        Rhs::Col(Box::new(cls(*b)), *j),
                    )),
                    ENode::Scale(c, y) => out.push(rscale(*c, Rhs::Col(Box::new(cls(*y)), *j))),
                    ENode::Transpose(y) => out.push(Rhs::Row(Box::new(cls(*y)), *j).t()),
                    ENode::Mul(a, b) => out.push(rmul(cls(*a), Rhs::Col(Box::new(cls(*b)), *j))),
                    _ => {}
                }
            }
        }
        _ => {}
    }
    out
}

/// Pull a slice back over a product: `A[i,:]·B → (A·B)[i,:]` and
/// `A·B[:,j] → (A·B)[:,j]` — the reverse of [`slice_pushdown`].
fn slice_pullup(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Mul(p, q) = n else { return vec![] };
    let mut out = Vec::new();
    for m in &eg.class(*p).nodes {
        if let ENode::Row(a, i) = m {
            out.push(Rhs::Row(Box::new(rmul(cls(*a), cls(*q))), *i));
        }
    }
    for m in &eg.class(*q).nodes {
        if let ENode::Col(b, j) = m {
            out.push(Rhs::Col(Box::new(rmul(cls(*p), cls(*b))), *j));
        }
    }
    out
}

/// `X + X → 2·X`, `c·(d·X) → (c·d)·X`, `1·X → X`.
fn scale_fuse(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let mut out = Vec::new();
    match n {
        ENode::Add(x, y) if eg.find(*x) == eg.find(*y) => {
            out.push(rscale(Factor(2.0), cls(*x)));
        }
        ENode::Scale(c, x) => {
            if c.0.to_bits() == 1.0f64.to_bits() {
                out.push(cls(*x));
            }
            for m in &eg.class(*x).nodes {
                if let ENode::Scale(d, y) = m {
                    out.push(rscale(Factor(c.0 * d.0), cls(*y)));
                }
            }
        }
        _ => {}
    }
    out
}

/// `A + B → B + A` (bitwise-safe: IEEE addition is commutative).
fn sum_commute(_eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    match n {
        ENode::Add(a, b) => vec![radd(cls(*b), cls(*a))],
        _ => vec![],
    }
}

/// Both rotations of `+`-associativity.
fn sum_assoc(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Add(x, y) = n else { return vec![] };
    let mut out = Vec::new();
    for m in &eg.class(*x).nodes {
        if let ENode::Add(a, b) = m {
            out.push(radd(cls(*a), radd(cls(*b), cls(*y))));
        }
    }
    for m in &eg.class(*y).nodes {
        if let ENode::Add(b, c) = m {
            out.push(radd(radd(cls(*x), cls(*b)), cls(*c)));
        }
    }
    out
}

/// `A − B ↔ A + (−1)·B` (both directions; multiplication by −1 is exact,
/// so the rewrite is bitwise-safe and lets the sum rules see through
/// subtraction).
fn sub_normalize(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let mut out = Vec::new();
    match n {
        ENode::Sub(a, b) => out.push(radd(cls(*a), rscale(Factor(-1.0), cls(*b)))),
        ENode::Add(a, s) => {
            for m in &eg.class(*s).nodes {
                if let ENode::Scale(c, y) = m {
                    if c.0.to_bits() == (-1.0f64).to_bits() {
                        out.push(rsub(cls(*a), cls(*y)));
                    }
                }
            }
        }
        _ => {}
    }
    out
}

/// `blkdiag(A, B) · [x; y] → [A·x; B·y]` when conformable.
fn blocked_split(eg: &EGraph, _id: EClassId, n: &ENode) -> Vec<Rhs> {
    let ENode::Mul(p, q) = n else { return vec![] };
    let mut out = Vec::new();
    for mp in &eg.class(*p).nodes {
        let ENode::BlockDiag(a, b) = mp else { continue };
        for mq in &eg.class(*q).nodes {
            let ENode::VCat(x, y) = mq else { continue };
            if eg.class(*a).shape.cols == eg.class(*x).shape.rows
                && eg.class(*b).shape.cols == eg.class(*y).shape.rows
            {
                out.push(Rhs::VCat(
                    Box::new(rmul(cls(*a), cls(*x))),
                    Box::new(rmul(cls(*b), cls(*y))),
                ));
            }
        }
    }
    out
}

/// Saturation budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturateConfig {
    /// Maximum match→apply→rebuild rounds.
    pub max_iters: usize,
    /// Maximum distinct e-nodes; exceeding it aborts saturation with
    /// [`SaturateStats::budget_hit`] set.
    pub max_nodes: usize,
}

impl Default for SaturateConfig {
    /// Enough for every serving-family expression to saturate with slack
    /// (they peak well under a thousand nodes), tight enough that an
    /// adversarial deeply-nested input trips the budget in milliseconds.
    fn default() -> Self {
        SaturateConfig { max_iters: 8, max_nodes: 4000 }
    }
}

/// What saturation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturateStats {
    /// Rounds run.
    pub iterations: usize,
    /// Distinct e-nodes at exit.
    pub enodes: usize,
    /// Live e-classes at exit.
    pub eclasses: usize,
    /// Unions that actually changed the graph.
    pub applications: u64,
    /// `true` when the node budget aborted saturation — the caller must
    /// fall back to the unoptimized expression.
    pub budget_hit: bool,
    /// `true` when a round produced no new equalities (a fixpoint: the
    /// graph holds *every* form reachable from the rule set).
    pub saturated: bool,
}

/// Run equality saturation over `eg` with `rules` under `cfg`'s budgets.
/// Fully deterministic: classes in id order, rules in declaration order,
/// matches applied in discovery order.
pub fn saturate(eg: &mut EGraph, rules: &[EgraphRule], cfg: &SaturateConfig) -> SaturateStats {
    let mut stats = SaturateStats::default();
    for _ in 0..cfg.max_iters {
        if eg.node_count() >= cfg.max_nodes {
            stats.budget_hit = true;
            break;
        }
        let mut matches: Vec<(EClassId, Rhs)> = Vec::new();
        for id in eg.class_ids() {
            let nodes = eg.class(id).nodes.clone();
            for n in &nodes {
                for rule in rules {
                    for rhs in (rule.apply)(eg, id, n) {
                        matches.push((id, rhs));
                    }
                }
            }
        }
        let mut changed = false;
        for (id, rhs) in matches {
            if eg.node_count() >= cfg.max_nodes {
                stats.budget_hit = true;
                break;
            }
            let new = eg.add_rhs(&rhs);
            if eg.union(id, new) {
                changed = true;
                stats.applications += 1;
            }
        }
        eg.rebuild();
        stats.iterations += 1;
        if stats.budget_hit {
            break;
        }
        if !changed {
            stats.saturated = true;
            break;
        }
    }
    stats.enodes = eg.node_count();
    stats.eclasses = eg.class_count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_expr::{var, Context};

    #[test]
    fn saturation_reaches_factored_form() {
        // AB + AC: the e-graph must also hold A(B + C).
        let ctx = Context::new().with("A", 4, 4).with("B", 4, 4).with("C", 4, 4);
        let e = var("A") * var("B") + var("A") * var("C");
        let mut eg = EGraph::new(&ctx);
        let root = eg.add_expr(&e);
        let stats = saturate(&mut eg, &egraph_rules(), &SaturateConfig::default());
        assert!(stats.saturated && !stats.budget_hit, "{stats:?}");
        let bc = eg.add_expr(&(var("B") + var("C")));
        let factored = eg.add_expr(&(var("A") * (var("B") + var("C"))));
        assert_eq!(eg.find(root), eg.find(factored), "factored form joined the root class");
        assert!(eg.class(bc).shape.rows == 4);
    }

    #[test]
    fn saturation_reaches_all_associations() {
        let ctx = Context::new().with("H", 8, 8).with("x", 8, 1);
        let e = (var("H").t() * var("H")) * var("x");
        let mut eg = EGraph::new(&ctx);
        let root = eg.add_expr(&e);
        saturate(&mut eg, &egraph_rules(), &SaturateConfig::default());
        let right = eg.add_expr(&(var("H").t() * (var("H") * var("x"))));
        assert_eq!(eg.find(root), eg.find(right));
    }

    #[test]
    fn node_budget_trips_and_reports() {
        let ctx = Context::new().with("A", 4, 4);
        // A deeply nested alternating sum/product tree.
        let mut e = var("A");
        for _ in 0..24 {
            e = e.clone() * var("A") + var("A");
        }
        let mut eg = EGraph::new(&ctx);
        eg.add_expr(&e);
        let stats =
            saturate(&mut eg, &egraph_rules(), &SaturateConfig { max_iters: 16, max_nodes: 200 });
        assert!(stats.budget_hit, "{stats:?}");
        assert!(!stats.saturated);
    }
}
