//! Property-aware linear-system solving — the paper's named extension.
//!
//! `solve(A, B)` for `A·X = B` dispatches on `A`'s declared properties the
//! same way [`aware_eval`](crate::aware_eval) dispatches products:
//!
//! | property of `A` | path | FLOPs |
//! |---|---|---|
//! | identity | copy | 0 |
//! | diagonal | row scaling | `n·m` |
//! | orthogonal | `X = AᵀB` (GEMM) | `2n²·m` |
//! | triangular | TRSM | `n²·m` |
//! | SPD | Cholesky + 2 TRSM | `n³/3 + 2n²·m` |
//! | general | LU + 2 TRSM | `2n³/3 + 2n²·m` |
//!
//! A structure-blind framework (the paper's finding for products, extended
//! here) would always take the general path.

use laab_dense::{Diagonal, Matrix, Scalar};
use laab_expr::Props;
use laab_kernels::solve::{cholesky_solve, lu_solve_full, trsm};
use laab_kernels::{matmul, Trans, UpLo};

/// Which path [`solve_aware`] took (reported in the extension table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvePath {
    /// `A` is the identity: the solution is `B`.
    Identity,
    /// Diagonal scaling.
    Diagonal,
    /// Orthogonal: multiply by the transpose.
    Orthogonal,
    /// One triangular solve.
    Triangular,
    /// Cholesky factorization.
    Cholesky,
    /// LU with partial pivoting.
    Lu,
}

impl SolvePath {
    /// Display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            SolvePath::Identity => "copy",
            SolvePath::Diagonal => "diag-scale",
            SolvePath::Orthogonal => "GEMM (Aᵀ)",
            SolvePath::Triangular => "TRSM",
            SolvePath::Cholesky => "POTRF+TRSM",
            SolvePath::Lu => "GETRF+TRSM",
        }
    }
}

/// Error for [`solve_aware`]: factorization failure at the given pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveError {
    /// The pivot row/column where the factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "factorization failed at pivot {}", self.pivot)
    }
}
impl std::error::Error for SolveError {}

/// Solve `A·X = B`, dispatching on `props` (which the caller declares or
/// infers for `A`). Returns the solution and the path taken.
///
/// # Errors
/// [`SolveError`] when the chosen factorization breaks down (non-SPD matrix
/// declared SPD, singular general matrix).
///
/// # Panics
/// On shape mismatch.
pub fn solve_aware<T: Scalar>(
    a: &Matrix<T>,
    props: Props,
    b: &Matrix<T>,
) -> Result<(Matrix<T>, SolvePath), SolveError> {
    assert!(a.is_square(), "solve: coefficient matrix must be square");
    assert_eq!(a.rows(), b.rows(), "solve: dimension mismatch");
    let props = props.normalize();

    if props.contains(Props::IDENTITY) {
        return Ok((b.clone(), SolvePath::Identity));
    }
    if props.contains(Props::DIAGONAL) {
        let d = Diagonal::from_dense(a);
        let inv = Diagonal::new(d.d.iter().map(|&v| T::ONE / v).collect());
        return Ok((laab_kernels::diag_matmul(&inv, b), SolvePath::Diagonal));
    }
    if props.contains(Props::ORTHOGONAL) {
        // A⁻¹ = Aᵀ.
        return Ok((matmul(a, Trans::Yes, b, Trans::No), SolvePath::Orthogonal));
    }
    if props.contains(Props::LOWER_TRIANGULAR) {
        return Ok((trsm(a, UpLo::Lower, b), SolvePath::Triangular));
    }
    if props.contains(Props::UPPER_TRIANGULAR) {
        return Ok((trsm(a, UpLo::Upper, b), SolvePath::Triangular));
    }
    if props.contains(Props::SPD) {
        return cholesky_solve(a, b)
            .map(|x| (x, SolvePath::Cholesky))
            .map_err(|pivot| SolveError { pivot });
    }
    lu_solve_full(a, b).map(|x| (x, SolvePath::Lu)).map_err(|pivot| SolveError { pivot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use laab_dense::gen::OperandGen;
    use laab_kernels::counters::{self, Kernel};

    fn residual(a: &Matrix<f64>, x: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
        matmul(a, Trans::No, x, Trans::No).rel_dist(b)
    }

    #[test]
    fn dispatch_paths_and_residuals() {
        let n = 20;
        let mut g = OperandGen::new(301);
        let b = g.matrix::<f64>(n, 4);

        let i = Matrix::<f64>::identity(n);
        let (x, p) = solve_aware(&i, Props::IDENTITY, &b).unwrap();
        assert_eq!(p, SolvePath::Identity);
        assert_eq!(x, b);

        let d = g.diagonal::<f64>(n).to_dense();
        let (x, p) = solve_aware(&d, Props::DIAGONAL, &b).unwrap();
        assert_eq!(p, SolvePath::Diagonal);
        assert!(residual(&d, &x, &b) < 1e-12);

        let q = g.orthogonal::<f64>(n);
        let (x, p) = solve_aware(&q, Props::ORTHOGONAL, &b).unwrap();
        assert_eq!(p, SolvePath::Orthogonal);
        assert!(residual(&q, &x, &b) < 1e-10);

        let mut l = g.lower_triangular::<f64>(n);
        for i in 0..n {
            l[(i, i)] = l[(i, i)].abs() + 1.0;
        }
        let (x, p) = solve_aware(&l, Props::LOWER_TRIANGULAR, &b).unwrap();
        assert_eq!(p, SolvePath::Triangular);
        assert!(residual(&l, &x, &b) < 1e-11);

        let spd = g.spd::<f64>(n);
        let (x, p) = solve_aware(&spd, Props::SPD, &b).unwrap();
        assert_eq!(p, SolvePath::Cholesky);
        assert!(residual(&spd, &x, &b) < 1e-10);

        let mut a = g.matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, i)] += 2.0;
        }
        let (x, p) = solve_aware(&a, Props::NONE, &b).unwrap();
        assert_eq!(p, SolvePath::Lu);
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn structure_blind_solve_is_more_expensive() {
        // The headline of the extension: the same SPD system solved with
        // and without the property declaration.
        let n = 24;
        let mut g = OperandGen::new(302);
        let spd = g.spd::<f64>(n);
        let b = g.matrix::<f64>(n, 2);
        let ((_, p1), aware) = counters::measure(|| solve_aware(&spd, Props::SPD, &b).unwrap());
        let ((_, p2), blind) = counters::measure(|| solve_aware(&spd, Props::NONE, &b).unwrap());
        assert_eq!(p1, SolvePath::Cholesky);
        assert_eq!(p2, SolvePath::Lu);
        assert_eq!(aware.flops(Kernel::Potrf), laab_kernels::solve::cholesky_flops(n));
        assert_eq!(blind.flops(Kernel::Getrf), laab_kernels::solve::lu_flops(n));
        // Cholesky factors at half the LU FLOPs.
        assert_eq!(2 * aware.flops(Kernel::Potrf), blind.flops(Kernel::Getrf));
    }

    #[test]
    fn declared_props_are_normalized() {
        // Declaring lower+upper implies diagonal → the diagonal fast path.
        let n = 8;
        let mut g = OperandGen::new(303);
        let d = g.diagonal::<f64>(n).to_dense();
        let b = g.matrix::<f64>(n, 1);
        let both = Props::LOWER_TRIANGULAR.union(Props::UPPER_TRIANGULAR);
        let (_, p) = solve_aware(&d, both, &b).unwrap();
        assert_eq!(p, SolvePath::Diagonal);
    }

    #[test]
    fn errors_surface_the_pivot() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::<f64>::zeros(2, 1);
        let err = solve_aware(&a, Props::NONE, &b).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("pivot 1"));
    }
}
