//! Determinism and termination of the e-graph optimizer.
//!
//! The optimizer's claims to the serving layer are (a) a fixed input
//! always extracts the *identical* expression — across repeated runs and
//! regardless of how many serving threads compile concurrently (the
//! algorithm holds no global state, so thread count must be
//! unobservable) — and (b) saturation always halts: either at a fixpoint
//! or by tripping the node budget, in which case it falls back to the
//! input expression with `budget_hit` reported so the serving layer can
//! count it (`saturation_budget_hits` in `BENCH_serve.json`).

use laab_expr::eval::{eval, Env};
use laab_expr::{scale, var, Context, Expr};
use laab_rewrite::{optimize_egraph, EgraphConfig, SaturateConfig};
use laab_serve::workload::Family;
use laab_serve::{OptLevel, Plan};

/// A deterministic pseudo-random expression over square operands: every
/// operator is shape-preserving at `n×n`, so any tree conforms. The
/// generator is a bare LCG seeded explicitly — same seed, same tree.
fn random_expr(seed: u64, depth: usize) -> Expr {
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }
    fn gen(state: &mut u64, depth: usize) -> Expr {
        if depth == 0 {
            return var(["A", "B", "C"][(next(state) % 3) as usize]);
        }
        match next(state) % 6 {
            0 => gen(state, depth - 1) * gen(state, depth - 1),
            1 => gen(state, depth - 1) + gen(state, depth - 1),
            2 => gen(state, depth - 1) - gen(state, depth - 1),
            3 => gen(state, depth - 1).t(),
            4 => scale(((next(state) % 7) as f64) - 3.0, gen(state, depth - 1)),
            _ => var(["A", "B", "C"][(next(state) % 3) as usize]),
        }
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    gen(&mut state, depth)
}

fn square_ctx(n: usize) -> Context {
    Context::new().with("A", n, n).with("B", n, n).with("C", n, n)
}

#[test]
fn fixed_seed_extracts_identically_across_runs() {
    let ctx = square_ctx(8);
    for seed in 0..24u64 {
        let e = random_expr(seed, 4);
        let r1 = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        let r2 = optimize_egraph(&e, &ctx, &EgraphConfig::default());
        assert_eq!(r1.best, r2.best, "seed {seed}: extraction must be reproducible");
        assert_eq!(r1.best_cost, r2.best_cost);
        assert_eq!(r1.stats, r2.stats, "seed {seed}: saturation trajectory must match");
    }
}

#[test]
fn extraction_is_identical_across_thread_counts() {
    // The serving loop compiles from a worker pool whose size is a config
    // knob; the extracted plan must not depend on it. Run the same
    // optimization single-threaded and under 2/4/8-way concurrency
    // (every thread optimizing the full input set) and require identical
    // results everywhere.
    let ctx = square_ctx(8);
    let inputs: Vec<Expr> =
        (0..8u64).map(|s| random_expr(s, 4)).chain(Family::ALL.iter().map(|f| f.expr(8))).collect();
    let baseline: Vec<Expr> = inputs
        .iter()
        .map(|e| {
            let ctx = ctx_for(e, &ctx);
            optimize_egraph(e, &ctx, &EgraphConfig::default()).best
        })
        .collect();
    for threads in [2usize, 4, 8] {
        let results: Vec<Vec<Expr>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        inputs
                            .iter()
                            .map(|e| {
                                let ctx = ctx_for(e, &ctx);
                                optimize_egraph(e, &ctx, &EgraphConfig::default()).best
                            })
                            .collect::<Vec<Expr>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for r in &results {
            assert_eq!(r, &baseline, "{threads}-way concurrent extraction diverged");
        }
    }
}

/// The serving families use their own operand names (`H`, `x`, `Q`, …);
/// everything else in this file lives in the square A/B/C context.
fn ctx_for(e: &Expr, square: &Context) -> Context {
    for f in Family::ALL {
        if *e == f.expr(8) {
            return f.ctx(8);
        }
    }
    square.clone()
}

#[test]
fn adversarial_nesting_halts_within_the_node_budget() {
    // Alternating mul/add nesting is the worst case for the rule set:
    // distribute × reassociate grow the graph combinatorially, so an
    // unbudgeted loop would effectively never converge. The default node
    // budget must trip, the loop must stop promptly (never overshooting
    // the cap by more than one round's worth of interning), and the
    // result must be the input expression, verbatim.
    let ctx = Context::new().with("A", 4, 4);
    let mut e = var("A");
    for _ in 0..24 {
        e = e.clone() * var("A") + var("A");
    }
    let cfg = EgraphConfig::default();
    let r = optimize_egraph(&e, &ctx, &cfg);
    assert!(r.stats.budget_hit, "default budgets must trip on adversarial nesting: {:?}", r.stats);
    assert!(!r.stats.saturated);
    assert!(!r.changed);
    assert_eq!(r.best, e, "budget hit falls back to the input unchanged");
    assert_eq!(r.best_cost, r.original_cost);
    // The cap is checked before each apply; a single application interns
    // at most one small Rhs tree, so the overshoot stays negligible.
    assert!(
        r.stats.enodes < cfg.saturate.max_nodes + 64,
        "node count {} ran away past the {} budget",
        r.stats.enodes,
        cfg.saturate.max_nodes
    );
}

#[test]
fn tight_budgets_still_terminate_and_fall_back() {
    // Degenerate budgets (0 iterations, or a node cap below the input's
    // own size) must still return the input rather than loop or panic.
    let ctx = square_ctx(6);
    let e = random_expr(5, 5);
    for saturate in [
        SaturateConfig { max_iters: 0, max_nodes: 4000 },
        SaturateConfig { max_iters: 8, max_nodes: 1 },
    ] {
        let r = optimize_egraph(&e, &ctx, &EgraphConfig { saturate, ..Default::default() });
        assert!(!r.changed);
        assert_eq!(r.best, e);
    }
}

#[test]
fn budget_fallback_flows_through_the_serving_plan() {
    // The serve-layer contract: a budget hit is not an error — the plan
    // still compiles (tracing the *input* expression, exactly what the
    // passes level traces) and the report carries the hit for the
    // bench's `saturation_budget_hits` counter. Both levels must then
    // execute bitwise-identically.
    let ctx = Context::new().with("A", 4, 4);
    let mut e = var("A");
    for _ in 0..24 {
        e = e.clone() * var("A") + var("A");
    }
    let fw = laab_framework::Framework::flow();
    let reg = laab_backend::registry::default_backend();
    let egraph = Plan::compile_opt(&fw, &e, &ctx, reg, &[], OptLevel::Egraph);
    let report = egraph.egraph_report().expect("egraph level always records a report");
    assert!(report.budget_hit);
    assert!(!report.changed);
    assert_eq!(report.extracted_cost, report.original_cost);
    let passes = Plan::compile_opt(&fw, &e, &ctx, reg, &[], OptLevel::Passes);
    let mut g = laab_dense::gen::OperandGen::new(9);
    let env: Env<f64> = Env::new().with("A", g.matrix(4, 4));
    let got = egraph.execute(&env);
    assert_eq!(got, passes.execute(&env), "fallback plan is the passes plan, bitwise");
    // And the graph really computes the nested expression.
    assert!(got.last().expect("one output").approx_eq(&eval(&e, &env), 1e-9));
}
