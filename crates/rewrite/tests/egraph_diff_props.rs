//! Differential testing of the e-graph optimizer against the pass
//! pipeline and the unoptimized reference evaluator.
//!
//! For every serving family (`laab-serve`'s six request structures, the
//! paper's Experiments 1–5 plus the solver residual), both element
//! dtypes, and every registered backend, the suite compiles the same
//! expression twice — once through the trace-time pass pipeline
//! (`OptLevel::Passes`) and once through equality saturation + cost-based
//! extraction (`OptLevel::Egraph`) — executes both plans on identical
//! operands, and compares against `laab_expr::eval`'s naive recursive
//! evaluation (the semantics oracle that performs no optimization at
//! all).
//!
//! Equivalence claims are tiered by what the optimizer actually did:
//!
//! * **Bitwise** (`assert_eq!` on the raw matrices): when extraction
//!   returns the input expression unchanged (`EgraphReport::changed ==
//!   false`), the two pipelines trace the *same* expression through the
//!   same passes, so the plans are identical and every backend —
//!   reference, seed, and engine alike — must produce bit-identical
//!   outputs. The extractor's first-member tie-break (ties keep the
//!   input form) is what makes this claim testable at all.
//! * **Documented ULP/relative bounds**: when extraction rewrote the
//!   expression (re-association, factoring, slice pushdown), the
//!   floating-point summation order legitimately changes. The bound is a
//!   *relative* distance (`Matrix::rel_dist`): `f64` 1e-12 and `f32`
//!   1e-4 on the reference and seed backends (straight triple-loop /
//!   seed-frozen kernels: the reordering error for n ≤ 32 operands drawn
//!   from [-1, 1] stays within a few ULPs of these), relaxed to `f64`
//!   1e-11 / `f32` 1e-3 on the engine backend, whose blocked, packed
//!   GEMM accumulates in yet another order. The same bounds apply to the
//!   plan-vs-oracle comparison, since the pass pipeline itself may
//!   re-associate.

use laab_backend::{registry, BackendScalar};
use laab_expr::eval::{eval, Env};
use laab_framework::Framework;
use laab_rewrite::{optimize_egraph, EgraphConfig};
use laab_serve::workload::Family;
use laab_serve::{OptLevel, Plan};
use proptest::prelude::*;

/// Relative tolerance for plans whose expression was rewritten, per
/// (dtype, backend) — see the module docs for the derivation.
fn rewrite_tol<T: BackendScalar>(backend_name: &str) -> f64 {
    let f32_dtype = std::mem::size_of::<T>() == 4;
    match (f32_dtype, backend_name == "engine") {
        (false, false) => 1e-12,
        (false, true) => 1e-11,
        (true, false) => 1e-4,
        (true, true) => 1e-3,
    }
}

/// Compile the family at both opt levels on every registered backend,
/// execute with dtype `T`, and check the tiered equivalence claims.
fn check_family<T: BackendScalar>(fw: &Framework, family: Family, n: usize, seed: u64) {
    let expr = family.expr(n);
    let ctx = family.ctx(n);
    let env: Env<T> = family.env(n, seed);
    let oracle = eval(&expr, &env);
    for reg in registry::builtins() {
        let passes = Plan::compile_opt(fw, &expr, &ctx, reg, &[], OptLevel::Passes);
        let egraph = Plan::compile_opt(fw, &expr, &ctx, reg, &[], OptLevel::Egraph);
        let report = egraph.egraph_report().expect("egraph level records a report");
        assert!(!report.budget_hit, "{}: serving families never trip the budget", family.id());
        let p_out = passes.execute(&env);
        let e_out = egraph.execute(&env);
        assert_eq!(p_out.len(), e_out.len(), "{}: output arity differs", family.id());
        if !report.changed {
            // Same expression in ⇒ same graph ⇒ bitwise-identical
            // execution, on every backend including the engine.
            assert_eq!(
                p_out,
                e_out,
                "{} on {}: unchanged extraction must be bitwise",
                family.id(),
                reg.name()
            );
        }
        let tol = rewrite_tol::<T>(reg.name());
        for (label, out) in [("passes", &p_out), ("egraph", &e_out)] {
            let last = out.last().expect("plans produce an output");
            assert_eq!(last.shape(), oracle.shape());
            assert!(
                last.approx_eq(&oracle, tol),
                "{} {label} plan on {} drifts from the oracle: rel dist {:.3e} > {tol:.0e}",
                family.id(),
                reg.name(),
                last.rel_dist(&oracle)
            );
        }
        for (a, b) in p_out.iter().zip(&e_out) {
            assert!(
                a.approx_eq(b, tol),
                "{} on {}: cross-level rel dist {:.3e} > {tol:.0e}",
                family.id(),
                reg.name(),
                a.rel_dist(b)
            );
        }
    }
}

/// The families whose e-graph extraction is *structure-preserving* at
/// size `n` (and therefore owe bitwise equality): `gram` and
/// `solve_residual` are already optimal under the cost model at every
/// size, and `chain`'s re-association only pays off past the GEMV-rate
/// crossover at n > 20.
fn unchanged_families(n: usize) -> Vec<Family> {
    let mut fams = vec![Family::Gram, Family::SolveResidual];
    if n <= 20 {
        fams.push(Family::Chain);
    }
    fams
}

#[test]
fn extraction_changes_exactly_the_predicted_families() {
    // Pins the cost model's discrete decisions (probed, then frozen):
    //  - cse_gram: (AᵀB)ᵀ(AᵀB) → (BᵀA)(AᵀB) drops one transpose at any n;
    //  - slice, distributive: cheaper at any size;
    //  - chain: two GEMVs beat GEMM+GEMV only once n > 20 (below that,
    //    the SYRK-discounted HᵀH plus one penalized GEMV wins);
    //  - gram, solve_residual: the input form is already optimal.
    for (n, changed) in [
        (12usize, vec![Family::CseGram, Family::Slice, Family::Distributive]),
        (24, vec![Family::CseGram, Family::Chain, Family::Slice, Family::Distributive]),
    ] {
        for family in Family::ALL {
            let r = optimize_egraph(&family.expr(n), &family.ctx(n), &EgraphConfig::default());
            assert!(!r.stats.budget_hit, "{} n={n}", family.id());
            assert_eq!(
                r.changed,
                changed.contains(&family),
                "{} at n={n}: changed={}",
                family.id(),
                r.changed
            );
            if r.changed {
                assert!(r.best_cost < r.original_cost, "{} n={n}: a change must pay", family.id());
            } else {
                assert_eq!(r.best, family.expr(n), "ties keep the input form");
                assert_eq!(r.best_cost, r.original_cost);
            }
        }
    }
}

#[test]
fn unchanged_families_execute_bitwise_on_every_backend() {
    let fw = Framework::flow();
    for n in [12usize, 24] {
        for family in unchanged_families(n) {
            for reg in registry::builtins() {
                let expr = family.expr(n);
                let ctx = family.ctx(n);
                let passes = Plan::compile_opt(&fw, &expr, &ctx, reg, &[], OptLevel::Passes);
                let egraph = Plan::compile_opt(&fw, &expr, &ctx, reg, &[], OptLevel::Egraph);
                assert!(!egraph.egraph_report().expect("report").changed);
                let env64: Env<f64> = family.env(n, 7);
                assert_eq!(passes.execute(&env64), egraph.execute(&env64));
                let env32: Env<f32> = family.env(n, 7);
                assert_eq!(passes.execute(&env32), egraph.execute(&env32));
            }
        }
    }
}

#[test]
fn all_families_both_dtypes_at_the_crossover_sizes() {
    // Deterministic sweep on both sides of the chain crossover, so every
    // (family, dtype, backend, changed-or-not) cell runs at least once
    // regardless of what the fuzzer below draws.
    let fw = Framework::flow();
    for n in [12usize, 24] {
        for family in Family::ALL {
            check_family::<f64>(&fw, family, n, 42);
            check_family::<f32>(&fw, family, n, 42);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized operand draws and sizes across the full matrix of
    /// (family × dtype × backend × opt level).
    #[test]
    fn egraph_passes_and_oracle_agree_on_every_family(
        seed in any::<u64>(),
        n in 4usize..32,
    ) {
        let fw = Framework::flow();
        for family in Family::ALL {
            check_family::<f64>(&fw, family, n, seed);
            check_family::<f32>(&fw, family, n, seed);
        }
    }
}
