//! Per-rule soundness: every e-graph rewrite rule, in every direction it
//! realizes, is checked *numerically* on randomized operands.
//!
//! The harness is deliberately rule-local: it interns a crafted
//! expression, applies exactly one rule at every `(class, node)` pair,
//! and evaluates each produced right-hand side against the matched
//! class's own expression under the reference evaluator. No saturation,
//! no extraction policy, no cost model in the loop — a failure here
//! names the one rule whose algebra is wrong. Bidirectional equivalences
//! are realized by rule *pairs* (`distribute`/`factor`,
//! `transpose_distribute`/`transpose_contract`,
//! `slice_pushdown`/`slice_pullup`) or by two arms of one rule
//! (`sub_normalize`); each test drives both.
//!
//! Property-guarded rules get their preconditions fuzzed at the
//! boundary: a matrix that is *numerically* within ε of symmetric (or of
//! the identity) but whose context does not declare the property must
//! never trigger the guarded arm — the e-graph trusts declared/inferred
//! [`Props`], not the data.

use laab_dense::gen::OperandGen;
use laab_dense::Matrix;
use laab_expr::eval::{eval, Env};
use laab_expr::{block_diag, elem, scale, var, vcat, Context, Expr, Props};
use laab_rewrite::{egraph_rules, extract_best, optimize_egraph, CostModel, EGraph, EgraphConfig};
use proptest::prelude::*;

/// Randomized operands for every name `ctx` declares.
fn env_for(ctx: &Context, seed: u64) -> Env<f64> {
    let mut g = OperandGen::new(seed);
    let mut env = Env::new();
    let mut names: Vec<&str> = ctx.names().collect();
    names.sort();
    for name in names {
        let shape = ctx.expect(name).shape;
        env.insert(name, g.matrix(shape.rows, shape.cols));
    }
    env
}

/// Apply `rule_name` at every `(class, node)` of `expr`'s e-graph and
/// check each produced form evaluates equal to the class it matched.
/// Returns how many right-hand sides fired (callers assert coverage).
///
/// Relative tolerance 1e-9: the rules reassociate and redistribute
/// double-precision sums/products over operands in [-1, 1] at sizes ≤ 8,
/// where the worst-case reordering error is orders of magnitude below
/// this bound; anything larger is an algebra bug, not roundoff.
fn fire_rule(rule_name: &str, expr: &Expr, ctx: &Context, env: &Env<f64>) -> usize {
    let rules = egraph_rules();
    let rule = rules.iter().find(|r| r.name == rule_name).expect("rule is registered");
    let model = CostModel::default();
    let mut eg = EGraph::new(ctx);
    eg.add_expr(expr);
    let mut fired = 0;
    for id in eg.class_ids() {
        let nodes = eg.class(id).nodes.clone();
        for n in &nodes {
            let rhss = (rule.apply)(&eg, id, n);
            if rhss.is_empty() {
                continue;
            }
            // No unions have happened, so the matched class extracts back
            // to (a hash-consed copy of) its original subexpression.
            let lhs = extract_best(&eg, id, &model).expr;
            let want = eval(&lhs, env);
            for rhs in rhss {
                let rid = eg.add_rhs(&rhs);
                let got = eval(&extract_best(&eg, rid, &model).expr, env);
                assert_eq!(want.shape(), got.shape(), "rule `{rule_name}` changed the shape");
                assert!(
                    want.approx_eq(&got, 1e-9),
                    "rule `{rule_name}` is unsound on {lhs:?}: rel dist {}",
                    want.rel_dist(&got)
                );
                fired += 1;
            }
        }
    }
    fired
}

/// `fire_rule` over several seeds, asserting the rule actually matched.
fn assert_sound(rule: &str, expr: Expr, ctx: &Context) {
    for seed in [3, 17, 92] {
        let env = env_for(ctx, seed);
        let fired = fire_rule(rule, &expr, ctx, &env);
        assert!(fired > 0, "rule `{rule}` never fired on {expr:?}");
    }
}

fn sq(names: &[&str], n: usize) -> Context {
    let mut ctx = Context::new();
    for name in names {
        ctx = ctx.with(name, n, n);
    }
    ctx
}

#[test]
fn distribute_both_add_and_sub_and_both_sides() {
    let ctx = sq(&["A", "B", "C"], 6);
    assert_sound("distribute", var("A") * (var("B") + var("C")), &ctx);
    assert_sound("distribute", var("A") * (var("B") - var("C")), &ctx);
    assert_sound("distribute", (var("B") + var("C")) * var("A"), &ctx);
    assert_sound("distribute", (var("B") - var("C")) * var("A"), &ctx);
}

#[test]
fn factor_reverses_distribution_on_either_factor() {
    let ctx = sq(&["A", "B", "C"], 6);
    // Common left factor, common right factor, and the sub variants.
    assert_sound("factor", var("A") * var("B") + var("A") * var("C"), &ctx);
    assert_sound("factor", var("A") * var("C") - var("B") * var("C"), &ctx);
}

#[test]
fn transpose_distribute_pushes_through_every_operator() {
    let ctx = sq(&["A", "B"], 6);
    assert_sound("transpose_distribute", (var("A") * var("B")).t(), &ctx);
    assert_sound("transpose_distribute", (var("A") + var("B")).t(), &ctx);
    assert_sound("transpose_distribute", (var("A") - var("B")).t(), &ctx);
    assert_sound("transpose_distribute", scale(2.5, var("A")).t(), &ctx);
}

#[test]
fn transpose_contract_pulls_a_product_back_together() {
    let ctx = sq(&["A", "B"], 6);
    assert_sound("transpose_contract", var("B").t() * var("A").t(), &ctx);
}

#[test]
fn transpose_cancel_double_transpose() {
    let ctx = sq(&["A"], 6);
    assert_sound("transpose_cancel", var("A").t().t(), &ctx);
}

#[test]
fn transpose_cancel_symmetric_arm_is_exact_on_declared_symmetric_data() {
    // The guarded arm: Sᵀ → S only because the context declares
    // SYMMETRIC. With exactly-symmetric data the rewrite is *bitwise*
    // (transposition of a symmetric matrix permutes equal elements).
    let ctx = Context::new().with_props("S", 6, 6, Props::SYMMETRIC);
    let mut g = OperandGen::new(11);
    let s: Matrix<f64> = g.symmetric(6);
    let env = Env::new().with("S", s.clone());
    let fired = fire_rule("transpose_cancel", &var("S").t(), &ctx, &env);
    assert!(fired > 0, "symmetric arm must fire on a declared-symmetric operand");
    let r = optimize_egraph(&var("S").t(), &ctx, &EgraphConfig::default());
    assert!(r.changed);
    assert_eq!(eval(&r.best, &env), s.transpose(), "bitwise: Sᵀ ≡ S elementwise");
}

#[test]
fn identity_eliminate_and_materialize_on_declared_identity() {
    let ctx = Context::new().with_props("I", 6, 6, Props::IDENTITY).with("A", 6, 6);
    let mut g = OperandGen::new(5);
    let env = Env::new().with("I", Matrix::<f64>::identity(6)).with("A", g.matrix(6, 6));
    for e in [var("I") * var("A"), var("A") * var("I")] {
        assert!(fire_rule("identity_eliminate", &e, &ctx, &env) > 0, "eliminate fires on {e:?}");
    }
    // Any class proving IDENTITY also equals the literal Identity node.
    assert!(fire_rule("identity_materialize", &var("I"), &ctx, &env) > 0);
}

#[test]
fn reassociate_both_rotations() {
    let ctx = Context::new().with("A", 6, 6).with("B", 6, 6).with("v", 6, 1);
    assert_sound("reassociate", (var("A") * var("B")) * var("v"), &ctx);
    assert_sound("reassociate", var("A") * (var("B") * var("v")), &ctx);
}

#[test]
fn slice_pushdown_every_slice_kind_over_every_operator() {
    let ctx = sq(&["A", "B"], 6);
    // Elem over mul/add/sub/scale/transpose.
    assert_sound("slice_pushdown", elem(var("A") * var("B"), 1, 2), &ctx);
    assert_sound("slice_pushdown", elem(var("A") + var("B"), 0, 3), &ctx);
    assert_sound("slice_pushdown", elem(var("A") - var("B"), 2, 0), &ctx);
    assert_sound("slice_pushdown", elem(scale(1.5, var("A")), 4, 4), &ctx);
    assert_sound("slice_pushdown", elem(var("A").t(), 1, 5), &ctx);
    // Row and Col over the same operators.
    assert_sound("slice_pushdown", (var("A") * var("B")).row(1), &ctx);
    assert_sound("slice_pushdown", (var("A") + var("B")).row(2), &ctx);
    assert_sound("slice_pushdown", var("A").t().row(3), &ctx);
    assert_sound("slice_pushdown", (var("A") * var("B")).col(1), &ctx);
    assert_sound("slice_pushdown", (var("A") - var("B")).col(0), &ctx);
    assert_sound("slice_pushdown", scale(0.5, var("A")).col(2), &ctx);
}

#[test]
fn slice_pullup_reverses_the_pushdown() {
    let ctx = sq(&["A", "B"], 6);
    assert_sound("slice_pullup", var("A").row(1) * var("B"), &ctx);
    assert_sound("slice_pullup", var("A") * var("B").col(2), &ctx);
}

#[test]
fn scale_fuse_doubling_identity_and_nesting() {
    let ctx = sq(&["A"], 6);
    assert_sound("scale_fuse", var("A") + var("A"), &ctx);
    assert_sound("scale_fuse", scale(1.0, var("A")), &ctx);
    assert_sound("scale_fuse", scale(2.0, scale(-3.0, var("A"))), &ctx);
}

#[test]
fn sum_commute_and_assoc() {
    let ctx = sq(&["A", "B", "C"], 6);
    assert_sound("sum_commute", var("A") + var("B"), &ctx);
    assert_sound("sum_assoc", (var("A") + var("B")) + var("C"), &ctx);
    assert_sound("sum_assoc", var("A") + (var("B") + var("C")), &ctx);
}

#[test]
fn sub_normalize_both_directions() {
    let ctx = sq(&["A", "B"], 6);
    // a − b → a + (−1)·b, and the recognizer direction back.
    assert_sound("sub_normalize", var("A") - var("B"), &ctx);
    assert_sound("sub_normalize", var("A") + scale(-1.0, var("B")), &ctx);
}

#[test]
fn blocked_split_on_conformable_blocks() {
    let ctx = Context::new().with("A", 3, 3).with("B", 2, 2).with("x", 3, 1).with("y", 2, 1);
    assert_sound("blocked_split", block_diag(var("A"), var("B")) * vcat(var("x"), var("y")), &ctx);
}

#[test]
fn every_rule_is_covered_by_this_suite() {
    // Drift guard: adding a rule without a soundness test above must fail
    // loudly. The names here mirror the #[test] functions one to one.
    let covered = [
        "distribute",
        "factor",
        "transpose_distribute",
        "transpose_contract",
        "transpose_cancel",
        "identity_eliminate",
        "identity_materialize",
        "reassociate",
        "slice_pushdown",
        "slice_pullup",
        "scale_fuse",
        "sum_commute",
        "sum_assoc",
        "sub_normalize",
        "blocked_split",
    ];
    let registered: Vec<&str> = egraph_rules().iter().map(|r| r.name).collect();
    assert_eq!(registered, covered, "rule set and soundness suite drifted apart");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Boundary fuzz for the SYMMETRIC guard: a matrix within ε of
    /// symmetric — down to a *single ULP-scale* off-diagonal perturbation
    /// — whose context does not declare the property must never trigger
    /// `transpose_cancel`'s symmetric arm, and the end-to-end optimizer
    /// must leave `Mᵀ` untouched.
    #[test]
    fn near_symmetric_without_the_prop_never_cancels(
        seed in any::<u64>(),
        eps_exp in 3u32..16,
    ) {
        let mut g = OperandGen::new(seed);
        let mut m: Matrix<f64> = g.symmetric(6);
        // Perturb one off-diagonal element by 10^-eps_exp: numerically
        // near-symmetric (often below any practical detection threshold),
        // structurally not symmetric — and undeclared either way.
        m.set(0, 1, m.get(0, 1) + 10f64.powi(-(eps_exp as i32)));
        let ctx = Context::new().with("M", 6, 6);
        let env = Env::new().with("M", m);
        let expr = var("M").t();
        prop_assert_eq!(fire_rule("transpose_cancel", &expr, &ctx, &env), 0);
        let r = optimize_egraph(&expr, &ctx, &EgraphConfig::default());
        prop_assert!(!r.changed, "undeclared symmetry must not rewrite Mᵀ");
        prop_assert_eq!(&r.best, &expr);
    }

    /// Same boundary for the IDENTITY guard: numerically ≈ I is not I.
    #[test]
    fn near_identity_without_the_prop_never_eliminates(
        seed in any::<u64>(),
        eps_exp in 3u32..16,
    ) {
        let mut g = OperandGen::new(seed);
        let mut m = Matrix::<f64>::identity(6);
        m.set(2, 3, 10f64.powi(-(eps_exp as i32)));
        let ctx = Context::new().with("M", 6, 6).with("A", 6, 6);
        let env = Env::new().with("M", m).with("A", g.matrix(6, 6));
        let expr = var("M") * var("A");
        prop_assert_eq!(fire_rule("identity_eliminate", &expr, &ctx, &env), 0);
        prop_assert_eq!(fire_rule("identity_materialize", &expr, &ctx, &env), 0);
        let r = optimize_egraph(&expr, &ctx, &EgraphConfig::default());
        prop_assert!(!r.changed, "undeclared identity must not eliminate the product");
    }

    /// Fuzzed form of the rule-local check itself: random operand draws
    /// across random expressions that exercise the high-traffic rules.
    #[test]
    fn randomized_operands_keep_the_core_rules_sound(seed in any::<u64>()) {
        let ctx = Context::new()
            .with("A", 6, 6).with("B", 6, 6).with("C", 6, 6).with("v", 6, 1);
        let env = env_for(&ctx, seed);
        for (rule, expr) in [
            ("distribute", var("A") * (var("B") + var("C"))),
            ("factor", var("A") * var("B") + var("A") * var("C")),
            ("reassociate", (var("A") * var("B")) * var("v")),
            ("transpose_distribute", (var("A") * var("B")).t()),
            ("slice_pushdown", elem(var("A") * var("B"), 0, 0)),
        ] {
            prop_assert!(fire_rule(rule, &expr, &ctx, &env) > 0, "{} must fire", rule);
        }
    }
}
