//! The admission queue: deadline-or-occupancy batching in front of the
//! plan cache.
//!
//! PR 5's admission *window* coalesced same-signature requests by count
//! alone — correct for a drained backlog, where every same-key request
//! is already pending, but meaningless for live traffic: at low arrival
//! rates a count-only window would hold a request hostage until enough
//! siblings happen to arrive. This queue flushes a group on **deadline
//! or occupancy, whichever comes first**:
//!
//! * **occupancy** — the group reached `window` pending requests; flush
//!   now, the batch is as full as it is allowed to get;
//! * **deadline** — the group's *oldest* request has waited
//!   `deadline`; flush whatever coalesced, the latency budget is spent;
//! * **drain** — the queue is closing; flush every partial group.
//!
//! Requests are grouped by an arbitrary hashable key (the serving layer
//! keys on `(Family, n, Dtype, BackendId)` — exactly what determines a
//! [`Signature`](crate::Signature)), and groups preserve arrival order,
//! so [`backlog`](AdmissionQueue::backlog) — submit everything, close,
//! collect — reproduces the PR 5 fixed-count chunking bit-for-bit. The
//! in-process `laab serve` path is that loopback composition; the
//! network [`Server`](crate::Server) feeds the same queue from socket
//! readers instead.
//!
//! The implementation is a `Mutex` + `Condvar` multi-producer
//! multi-consumer queue: producers ([`submit`](AdmissionQueue::submit))
//! append to keyed groups and hand full ones to the ready list;
//! consumers ([`next_batch`](AdmissionQueue::next_batch)) block with a
//! timeout aimed at the earliest group deadline and flush expired
//! groups themselves, so no dedicated timer thread exists.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What caused a batch to leave the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushKind {
    /// The group reached the occupancy window.
    Occupancy,
    /// The group's oldest request exhausted the latency budget.
    Deadline,
    /// The queue was closed with the group still partial.
    Drain,
    /// The backlog crossed half its capacity, so the group flushed early
    /// — under pressure the queue degrades its batching window to favor
    /// latency over coalescing.
    Pressure,
}

impl FlushKind {
    /// Stable identifier used in reports.
    pub fn id(self) -> &'static str {
        match self {
            FlushKind::Occupancy => "occupancy",
            FlushKind::Deadline => "deadline",
            FlushKind::Drain => "drain",
            FlushKind::Pressure => "pressure",
        }
    }
}

/// What [`AdmissionQueue::submit`] did with an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The item joined a pending group (or flushed with one).
    Queued,
    /// The queue's backlog is at capacity; the item was shed. The caller
    /// should answer with a structured busy/retry rejection.
    Shed,
    /// The queue is closed; the item was dropped.
    Closed,
}

impl SubmitOutcome {
    /// `true` when the item was accepted.
    pub fn is_queued(self) -> bool {
        matches!(self, SubmitOutcome::Queued)
    }
}

/// One batch the queue released: same-key items in arrival order.
#[derive(Debug)]
pub struct FlushedBatch<T> {
    /// The admitted items, oldest first.
    pub items: Vec<T>,
    /// What released the batch.
    pub kind: FlushKind,
    /// When the batch's oldest item was submitted (the queue-delay
    /// anchor: `flushed_at - enqueued_at` is the time the batch head
    /// spent waiting for siblings).
    pub enqueued_at: Instant,
}

/// Monotonic counters describing what the queue did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Items accepted by [`AdmissionQueue::submit`].
    pub admitted: u64,
    /// Items refused because the backlog was at capacity.
    pub shed: u64,
    /// Batches flushed because a group filled its window.
    pub occupancy_flushes: u64,
    /// Batches flushed because the head item's deadline expired.
    pub deadline_flushes: u64,
    /// Partial batches flushed at close.
    pub drain_flushes: u64,
    /// Batches flushed early because the backlog crossed half capacity.
    pub pressure_flushes: u64,
}

impl AdmissionStats {
    /// Total batches released.
    pub fn batches(&self) -> u64 {
        self.occupancy_flushes + self.deadline_flushes + self.drain_flushes + self.pressure_flushes
    }
}

/// A pending group: items sharing one key, plus the head-arrival time
/// that anchors the group's deadline.
struct Group<T> {
    items: Vec<T>,
    head_at: Instant,
}

struct State<K, T> {
    groups: HashMap<K, Group<T>>,
    /// Group keys in head-arrival order. A flushed group leaves this
    /// list; a re-created group re-enters at the back with a fresh
    /// `head_at`, so the front is always the earliest deadline.
    order: VecDeque<K>,
    ready: VecDeque<FlushedBatch<T>>,
    closed: bool,
    stats: AdmissionStats,
    /// Items admitted but not yet handed to a consumer (pending groups
    /// plus the ready list) — the backlog the capacity bound limits.
    queued: usize,
}

/// The deadline-or-occupancy admission queue. See the module docs.
pub struct AdmissionQueue<K, T> {
    state: Mutex<State<K, T>>,
    cond: Condvar,
    window: usize,
    deadline: Option<Duration>,
    /// Backlog bound in items; `0` means unbounded.
    capacity: usize,
}

impl<K: Eq + Hash + Clone, T> AdmissionQueue<K, T> {
    /// Create a queue flushing at `window` occupancy (values `0` and `1`
    /// both mean "no coalescing": every item is its own batch) or at
    /// `deadline` past the group head's arrival, whichever comes first.
    /// `deadline: None` disables the timer — the PR 5 backlog regime,
    /// where only occupancy and drain flush.
    pub fn new(window: usize, deadline: Option<Duration>) -> Self {
        Self::bounded(window, deadline, 0)
    }

    /// Like [`new`](Self::new), but with a backlog bound: once `capacity`
    /// items are queued (pending groups plus undequeued ready batches),
    /// further submits are [shed](SubmitOutcome::Shed) instead of
    /// growing the queue without bound. Past *half* capacity the queue
    /// also flushes each submitting group immediately
    /// ([`FlushKind::Pressure`]) — degrading the batching window to
    /// favor latency while overloaded. `capacity: 0` means unbounded.
    pub fn bounded(window: usize, deadline: Option<Duration>, capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                groups: HashMap::new(),
                order: VecDeque::new(),
                ready: VecDeque::new(),
                closed: false,
                stats: AdmissionStats::default(),
                queued: 0,
            }),
            cond: Condvar::new(),
            window: window.max(1),
            deadline,
            capacity,
        }
    }

    /// The effective occupancy window (≥ 1).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The backlog bound in items (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items admitted but not yet handed to a consumer.
    pub fn queued(&self) -> usize {
        self.state.lock().expect("admission mutex").queued
    }

    /// Submit one item under `key`. The item is dropped unless the
    /// outcome is [`SubmitOutcome::Queued`]: a closed queue refuses it,
    /// and a full backlog sheds it.
    pub fn submit(&self, key: K, item: T) -> SubmitOutcome {
        let mut s = self.state.lock().expect("admission mutex");
        if s.closed {
            return SubmitOutcome::Closed;
        }
        if self.capacity > 0 && s.queued >= self.capacity {
            s.stats.shed += 1;
            return SubmitOutcome::Shed;
        }
        s.stats.admitted += 1;
        s.queued += 1;
        let now = Instant::now();
        let group = s
            .groups
            .entry(key.clone())
            .or_insert_with(|| Group { items: Vec::with_capacity(self.window), head_at: now });
        let fresh_group = group.items.is_empty();
        group.items.push(item);
        let full = group.items.len() >= self.window;
        let pressured = !full && self.capacity > 0 && s.queued * 2 >= self.capacity;
        if fresh_group {
            s.order.push_back(key.clone());
        }
        if full || pressured {
            let kind = if full { FlushKind::Occupancy } else { FlushKind::Pressure };
            Self::flush_key(&mut s, &key, kind);
            // A batch became ready: wake a consumer to take it.
            self.cond.notify_one();
        } else if fresh_group && self.deadline.is_some() {
            // A new earliest-deadline candidate may shorten a consumer's
            // sleep; wake one to re-aim its timeout.
            self.cond.notify_one();
        }
        SubmitOutcome::Queued
    }

    /// Move the keyed group into the ready list.
    fn flush_key(s: &mut State<K, T>, key: &K, kind: FlushKind) {
        let group = s.groups.remove(key).expect("flushing a present group");
        if let Some(pos) = s.order.iter().position(|k| k == key) {
            s.order.remove(pos);
        }
        match kind {
            FlushKind::Occupancy => s.stats.occupancy_flushes += 1,
            FlushKind::Deadline => s.stats.deadline_flushes += 1,
            FlushKind::Drain => s.stats.drain_flushes += 1,
            FlushKind::Pressure => s.stats.pressure_flushes += 1,
        }
        s.ready.push_back(FlushedBatch { items: group.items, kind, enqueued_at: group.head_at });
    }

    /// Block until a batch is ready and return it; `None` once the queue
    /// is closed and fully drained. Consumers collectively enforce the
    /// deadline: the waiter aims its sleep at the earliest group head
    /// and flushes the group itself when the budget expires.
    pub fn next_batch(&self) -> Option<FlushedBatch<T>> {
        let mut s = self.state.lock().expect("admission mutex");
        loop {
            if let Some(batch) = s.ready.pop_front() {
                s.queued -= batch.items.len();
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            match self.deadline {
                None => s = self.cond.wait(s).expect("admission mutex"),
                Some(budget) => {
                    // The order list's front group has the earliest head.
                    let due = s.order.front().map(|k| s.groups[k].head_at + budget);
                    match due {
                        Some(due) => {
                            let now = Instant::now();
                            if now >= due {
                                let key = s.order.front().expect("non-empty order").clone();
                                Self::flush_key(&mut s, &key, FlushKind::Deadline);
                                continue;
                            }
                            let (guard, _timeout) =
                                self.cond.wait_timeout(s, due - now).expect("admission mutex");
                            s = guard;
                        }
                        None => s = self.cond.wait(s).expect("admission mutex"),
                    }
                }
            }
        }
    }

    /// Close the queue: refuse further submits, flush every partial
    /// group as [`FlushKind::Drain`] (in head-arrival order), and wake
    /// all consumers so they drain the ready list and observe `None`.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("admission mutex");
        if !s.closed {
            s.closed = true;
            while let Some(key) = s.order.front().cloned() {
                Self::flush_key(&mut s, &key, FlushKind::Drain);
            }
        }
        drop(s);
        self.cond.notify_all();
    }

    /// Snapshot the queue's counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().expect("admission mutex").stats
    }

    /// Groups currently pending (submitted, not yet flushed). A producer
    /// that wants trailing partial batches to take their *deadline*
    /// flush — rather than turning into drain flushes at close — waits
    /// for this to reach zero before closing.
    pub fn pending_groups(&self) -> usize {
        self.state.lock().expect("admission mutex").groups.len()
    }

    /// The backlog composition: submit every `(key, item)` in order,
    /// close, and return the released batches. With `deadline: None`
    /// this reproduces PR 5's fixed-count chunking exactly — each key's
    /// items chunk at every `window`-th arrival (occupancy flushes) with
    /// the remainder drained at close — which is what keeps the
    /// in-process `laab serve` counters deterministic.
    pub fn backlog(window: usize, items: impl IntoIterator<Item = (K, T)>) -> Vec<FlushedBatch<T>> {
        let queue = AdmissionQueue::new(window, None);
        for (key, item) in items {
            queue.submit(key, item);
        }
        queue.close();
        let mut out = Vec::new();
        while let Some(b) = queue.next_batch() {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn occupancy_flush_releases_full_windows() {
        let q: AdmissionQueue<u8, usize> = AdmissionQueue::new(3, None);
        for i in 0..7 {
            assert!(q.submit(0, i).is_queued());
        }
        // Two full windows are ready without closing.
        let a = q.next_batch().unwrap();
        assert_eq!((a.items.as_slice(), a.kind), (&[0, 1, 2][..], FlushKind::Occupancy));
        let b = q.next_batch().unwrap();
        assert_eq!((b.items.as_slice(), b.kind), (&[3, 4, 5][..], FlushKind::Occupancy));
        // The partial tail drains at close.
        q.close();
        let c = q.next_batch().unwrap();
        assert_eq!((c.items.as_slice(), c.kind), (&[6][..], FlushKind::Drain));
        assert_eq!(q.next_batch().map(|b| b.items), None);
        let stats = q.stats();
        assert_eq!(stats.admitted, 7);
        assert_eq!((stats.occupancy_flushes, stats.drain_flushes), (2, 1));
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.batches(), 3);
    }

    #[test]
    fn window_one_disables_coalescing() {
        let q: AdmissionQueue<u8, usize> = AdmissionQueue::new(0, None);
        assert_eq!(q.window(), 1, "0 and 1 both mean no coalescing");
        q.submit(0, 10);
        q.submit(0, 11);
        assert_eq!(q.next_batch().unwrap().items, vec![10]);
        assert_eq!(q.next_batch().unwrap().items, vec![11]);
    }

    #[test]
    fn deadline_flushes_a_partial_group() {
        let q: AdmissionQueue<u8, usize> = AdmissionQueue::new(64, Some(Duration::from_millis(5)));
        let t0 = Instant::now();
        q.submit(7, 1);
        q.submit(7, 2);
        let batch = q.next_batch().expect("deadline releases the partial group");
        assert_eq!(batch.items, vec![1, 2]);
        assert_eq!(batch.kind, FlushKind::Deadline);
        assert!(t0.elapsed() >= Duration::from_millis(5), "not before the budget expires");
        assert_eq!(q.stats().deadline_flushes, 1);
        q.close();
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn deadline_orders_by_group_head_across_keys() {
        let q: AdmissionQueue<u8, u8> = AdmissionQueue::new(64, Some(Duration::from_millis(3)));
        q.submit(1, 10);
        q.submit(2, 20);
        let a = q.next_batch().unwrap();
        let b = q.next_batch().unwrap();
        assert_eq!((a.items, a.kind), (vec![10], FlushKind::Deadline));
        assert_eq!((b.items, b.kind), (vec![20], FlushKind::Deadline));
        assert!(a.enqueued_at <= b.enqueued_at);
        q.close();
    }

    #[test]
    fn submit_after_close_is_refused() {
        let q: AdmissionQueue<u8, u8> = AdmissionQueue::new(4, None);
        q.close();
        assert_eq!(q.submit(0, 1), SubmitOutcome::Closed);
        assert_eq!(q.stats().admitted, 0);
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn bounded_queue_sheds_at_capacity_and_recovers_after_drain() {
        let q: AdmissionQueue<u8, u8> = AdmissionQueue::bounded(1, None, 2);
        assert_eq!(q.submit(0, 1), SubmitOutcome::Queued);
        assert_eq!(q.submit(0, 2), SubmitOutcome::Queued);
        // Backlog full: item 3 is shed, not queued.
        assert_eq!(q.submit(0, 3), SubmitOutcome::Shed);
        assert_eq!(q.queued(), 2);
        // Draining one batch frees a slot.
        assert_eq!(q.next_batch().unwrap().items, vec![1]);
        assert_eq!(q.submit(0, 4), SubmitOutcome::Queued);
        let stats = q.stats();
        assert_eq!((stats.admitted, stats.shed), (3, 1));
        q.close();
        let mut rest = Vec::new();
        while let Some(b) = q.next_batch() {
            rest.extend(b.items);
        }
        assert_eq!(rest, vec![2, 4], "shed items never reappear");
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn pressure_flushes_degrade_the_window_past_half_capacity() {
        // Window 8 would normally hold partial groups; with the backlog
        // at half of capacity 4, each submit flushes immediately.
        let q: AdmissionQueue<u8, u8> = AdmissionQueue::bounded(8, None, 4);
        assert_eq!(q.submit(0, 1), SubmitOutcome::Queued);
        assert_eq!(q.submit(0, 2), SubmitOutcome::Queued); // queued = 2 = capacity/2
        let batch = q.next_batch().unwrap();
        assert_eq!((batch.items.as_slice(), batch.kind), (&[1, 2][..], FlushKind::Pressure));
        assert_eq!(q.stats().pressure_flushes, 1);
        q.close();
        assert!(q.next_batch().is_none());
    }

    /// The PR 5 `admit()` chunking, restated: group stream indices by
    /// key in first-seen order, chunk each group at `window`, sort the
    /// chunks by first stream index.
    fn reference_chunking(keys: &[u32], window: usize) -> Vec<Vec<usize>> {
        let window = window.max(1);
        let mut order = Vec::new();
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            groups
                .entry(k)
                .or_insert_with(|| {
                    order.push(k);
                    Vec::new()
                })
                .push(i);
        }
        let mut out = Vec::new();
        for k in order {
            for chunk in groups[&k].chunks(window) {
                out.push(chunk.to_vec());
            }
        }
        out.sort_by_key(|c| c[0]);
        out
    }

    #[test]
    fn backlog_reproduces_fixed_count_chunking() {
        // An adversarial key stream: interleaved keys, repeats, a key
        // that fills several windows, singletons.
        let keys = [3u32, 1, 3, 3, 2, 3, 1, 3, 3, 3, 2, 9, 3, 1, 1, 1, 1, 2];
        for window in [1usize, 2, 3, 4, 8, 64] {
            let mut got: Vec<Vec<usize>> =
                AdmissionQueue::backlog(window, keys.iter().enumerate().map(|(i, &k)| (k, i)))
                    .into_iter()
                    .map(|b| b.items)
                    .collect();
            got.sort_by_key(|c| c[0]);
            assert_eq!(got, reference_chunking(&keys, window), "window {window}");
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q: AdmissionQueue<usize, usize> =
            AdmissionQueue::new(4, Some(Duration::from_micros(200)));
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for c in 0..3 {
                let q = &q;
                let consumed = &consumed;
                scope.spawn(move || {
                    let _ = c;
                    while let Some(batch) = q.next_batch() {
                        consumed.fetch_add(batch.items.len(), Ordering::Relaxed);
                    }
                });
            }
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..100 {
                        assert!(q.submit(i % 7, p * 1000 + i).is_queued());
                    }
                });
            }
            // Consumers exit only after close; close only after every
            // producer submit landed. A watcher polls the admitted count
            // so the scope's implicit join can't deadlock.
            let q = &q;
            scope.spawn(move || {
                while q.stats().admitted < 400 {
                    std::thread::yield_now();
                }
                q.close();
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 400, "every item flushed exactly once");
        let stats = q.stats();
        assert_eq!(stats.admitted, 400);
        assert!(stats.batches() > 0);
    }
}
