//! The multi-client serving loop and its machine-readable report.
//!
//! Clients are tasks on the `laab-kernels` persistent worker pool
//! ([`parallel_for`]): each drains requests from the shared queue,
//! computes the request's [`Signature`](crate::Signature), resolves a
//! [`Plan`] through the
//! [`PlanCache`] (compiling on a miss — the cold trace), executes it
//! against the family's operand pool, and records its end-to-end latency.
//! The harness reports requests/s, p50/p99 latency, the cold-trace vs
//! cache-hit latency split (the amortization `tf.function` exists for),
//! and the cache counters, as a `BENCH_serve.json` document.
//!
//! Like every timing in the suite, numbers are *recorded* unconditionally
//! and *asserted* only under `LAAB_STRICT_TIMING=1`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use laab_expr::eval::Env;
use laab_framework::Framework;
use laab_kernels::parallel_for;
use laab_stats::Samples;

use crate::cache::{Lookup, PlanCache};
use crate::plan::Plan;
use crate::signature::Dtype;
use crate::workload::{synthetic_mix, Family};

/// Schema tag of the `BENCH_serve.json` report, bumped on breaking
/// changes.
pub const SERVE_REPORT_SCHEMA: &str = "laab-serve-bench-v1";

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Synthetic requests to drain.
    pub requests: usize,
    /// Serving clients (pool tasks); `0` means detected hardware
    /// parallelism (capped at 8 — beyond that the 1-socket kernels are
    /// the bottleneck, not the serving layer).
    pub clients: usize,
    /// Base operand size of the request families.
    pub n: usize,
    /// Seed for the request stream and the operand pools.
    pub seed: u64,
    /// `true` for the CI smoke protocol (recorded in the report).
    pub smoke: bool,
    /// Plan-cache capacity (total resident plans).
    pub cache_capacity: usize,
    /// Plan-cache shard count.
    pub shards: usize,
    /// Every `churn_every`-th request changes signature (0 disables);
    /// see [`synthetic_mix`].
    pub churn_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            requests: 2048,
            clients: 0,
            n: 192,
            seed: 0x1AAB,
            smoke: false,
            cache_capacity: 64,
            shards: 8,
            churn_every: 16,
        }
    }
}

impl ServeConfig {
    /// The CI smoke protocol: tiny operands, a short stream, the same
    /// mixed-signature shape as the full run.
    pub fn smoke() -> Self {
        Self { requests: 320, n: 48, smoke: true, ..Self::default() }
    }

    /// The resolved client count.
    pub fn resolved_clients(&self) -> usize {
        if self.clients > 0 {
            self.clients
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
        }
    }
}

/// Cache counters as they appear in the JSON report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsRecord {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a plan.
    pub misses: u64,
    /// Misses whose callsite was already compiled under a different
    /// signature (the `tf.function` retrace event).
    pub retraces: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
    /// Plans resident at the end of the run.
    pub entries: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// Per-family latency aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyRecord {
    /// Family identifier ([`Family::id`]).
    pub family: String,
    /// The paper experiment the family is drawn from.
    pub experiment: String,
    /// Requests of this family in the stream.
    pub requests: usize,
    /// How many were served from the plan cache.
    pub hits: usize,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// Mean end-to-end latency, milliseconds.
    pub mean_ms: f64,
}

/// The full machine-readable report (`BENCH_serve.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Format tag ([`SERVE_REPORT_SCHEMA`]).
    pub schema: String,
    /// Whether the smoke protocol was used.
    pub smoke: bool,
    /// Requests drained.
    pub requests: usize,
    /// Serving clients.
    pub clients: usize,
    /// Base operand size.
    pub base_n: usize,
    /// Stream/operand seed.
    pub seed: u64,
    /// Distinct signatures in the stream (the compile workload).
    pub distinct_signatures: usize,
    /// Wall-clock seconds for the whole drain.
    pub wall_secs: f64,
    /// Sustained throughput over the drain.
    pub requests_per_sec: f64,
    /// Median end-to-end request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency of requests that compiled (trace + optimize +
    /// schedule + execute), milliseconds.
    pub cold_trace_mean_ms: f64,
    /// Mean latency of requests served from the plan cache (execute
    /// only), milliseconds. `0.0` when the stream produced no hits (every
    /// signature distinct).
    pub cache_hit_mean_ms: f64,
    /// `cold_trace_mean_ms / cache_hit_mean_ms` — the amortization a
    /// cache hit buys (> 1 when caching pays; `0.0` when the stream
    /// produced no hits).
    pub cache_hit_speedup: f64,
    /// Cache counters.
    pub cache: CacheStatsRecord,
    /// Per-family aggregates, in experiment order.
    pub families: Vec<FamilyRecord>,
}

impl ServeReport {
    /// Serialize as pretty-printed JSON (the on-disk `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ServeReport serializes infallibly")
    }

    /// Parse a report back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let report: ServeReport = serde_json::from_str(text)?;
        if report.schema != SERVE_REPORT_SCHEMA {
            return Err(serde_json::Error(format!(
                "unsupported report schema `{}` (expected `{SERVE_REPORT_SCHEMA}`)",
                report.schema
            )));
        }
        Ok(report)
    }

    /// One-row-per-family overview for terminal output.
    pub fn summary_table(&self) -> laab_stats::Table {
        let mut t = laab_stats::Table::new(
            format!(
                "laab serve — {} requests, {} clients, {:.0} req/s, hit rate {:.3}",
                self.requests, self.clients, self.requests_per_sec, self.cache.hit_rate
            ),
            &["family", "experiment", "requests", "hits", "p50 [ms]", "mean [ms]"],
        );
        for f in &self.families {
            t.push_row(vec![
                f.family.clone(),
                f.experiment.clone(),
                f.requests.to_string(),
                f.hits.to_string(),
                format!("{:.3}", f.p50_ms),
                format!("{:.3}", f.mean_ms),
            ]);
        }
        t
    }
}

/// Per-dtype operand bindings for one `(family, n)` pool entry.
struct EnvPair {
    f64: Env<f64>,
    f32: Env<f32>,
}

/// Lookup-outcome codes stored in the per-request slot array.
const OUTCOME_HIT: u8 = 1;
const OUTCOME_COMPILED: u8 = 2;

/// Drain a synthetic request stream through the plan cache and collect
/// the report.
///
/// Operand pools are generated up front (a client serving traffic already
/// holds its data; operand generation is not request latency). Request
/// latency covers signature canonicalization, the cache lookup, any
/// compile, and plan execution — the components a `tf.function` call
/// pays.
pub fn run(cfg: &ServeConfig) -> ServeReport {
    let clients = cfg.resolved_clients();
    let mix = synthetic_mix(cfg.requests, cfg.n, cfg.seed, cfg.churn_every);

    // Pre-generate operands and count the distinct signatures.
    let mut pools: HashMap<(Family, usize), EnvPair> = HashMap::new();
    let mut distinct = HashSet::new();
    for req in &mix {
        pools.entry((req.family, req.n)).or_insert_with(|| EnvPair {
            f64: req.family.env::<f64>(req.n, cfg.seed),
            f32: req.family.env::<f32>(req.n, cfg.seed),
        });
        distinct.insert(req.signature().hash());
    }

    let cache = PlanCache::with_shards(cfg.cache_capacity, cfg.shards);
    let fw = Framework::flow();
    let latency_nanos: Vec<AtomicU64> = (0..mix.len()).map(|_| AtomicU64::new(0)).collect();
    let outcomes: Vec<AtomicU8> = (0..mix.len()).map(|_| AtomicU8::new(0)).collect();

    let t0 = Instant::now();
    parallel_for(clients, mix.len(), |i| {
        let req = &mix[i];
        let pool = &pools[&(req.family, req.n)];
        let t = Instant::now();
        let sig = req.signature();
        let (plan, lookup) = cache.get_or_compile(sig, || {
            Plan::compile(&fw, &req.family.expr(req.n), &req.family.ctx(req.n))
        });
        match req.dtype {
            Dtype::F64 => {
                std::hint::black_box(plan.execute::<f64>(&pool.f64));
            }
            Dtype::F32 => {
                std::hint::black_box(plan.execute::<f32>(&pool.f32));
            }
        }
        latency_nanos[i].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        outcomes[i].store(
            if lookup == Lookup::Hit { OUTCOME_HIT } else { OUTCOME_COMPILED },
            Ordering::Relaxed,
        );
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let ms = |nanos: u64| nanos as f64 / 1e6;
    let lat: Vec<f64> = latency_nanos.iter().map(|a| ms(a.load(Ordering::Relaxed))).collect();
    let out: Vec<u8> = outcomes.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let all = Samples::new(lat.clone());
    // 0.0, not NaN, for an empty split: the serde_json shim writes NaN as
    // `null`, which would make the emitted document violate its own f64
    // schema. A short all-distinct stream legitimately has zero hits.
    let mean_of = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let cold: Vec<f64> =
        lat.iter().zip(&out).filter(|&(_, &o)| o == OUTCOME_COMPILED).map(|(&l, _)| l).collect();
    let hits: Vec<f64> =
        lat.iter().zip(&out).filter(|&(_, &o)| o == OUTCOME_HIT).map(|(&l, _)| l).collect();
    let cold_trace_mean_ms = mean_of(&cold);
    let cache_hit_mean_ms = mean_of(&hits);

    let mut families = Vec::new();
    for family in Family::ALL {
        let idx: Vec<usize> = (0..mix.len()).filter(|&i| mix[i].family == family).collect();
        if idx.is_empty() {
            continue;
        }
        let fam_lat: Vec<f64> = idx.iter().map(|&i| lat[i]).collect();
        families.push(FamilyRecord {
            family: family.id().to_string(),
            experiment: family.experiment().to_string(),
            requests: idx.len(),
            hits: idx.iter().filter(|&&i| out[i] == OUTCOME_HIT).count(),
            p50_ms: Samples::new(fam_lat.clone()).median(),
            mean_ms: mean_of(&fam_lat),
        });
    }

    let stats = cache.stats();
    ServeReport {
        schema: SERVE_REPORT_SCHEMA.to_string(),
        smoke: cfg.smoke,
        requests: cfg.requests,
        clients,
        base_n: cfg.n,
        seed: cfg.seed,
        distinct_signatures: distinct.len(),
        wall_secs,
        requests_per_sec: cfg.requests as f64 / wall_secs,
        p50_ms: all.median(),
        p99_ms: all.quantile(0.99),
        cold_trace_mean_ms,
        cache_hit_mean_ms,
        cache_hit_speedup: if cache_hit_mean_ms > 0.0 {
            cold_trace_mean_ms / cache_hit_mean_ms
        } else {
            0.0
        },
        cache: CacheStatsRecord {
            hits: stats.hits,
            misses: stats.misses,
            retraces: stats.retraces,
            evictions: stats.evictions,
            entries: stats.entries,
            hit_rate: stats.hit_rate(),
        },
        families,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        // Small operands, full mixed-signature stream: plumbing, not perf.
        ServeConfig {
            requests: 400,
            n: 12,
            clients: 2,
            seed: 7,
            smoke: true,
            ..ServeConfig::smoke()
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run(&tiny_cfg());
        let back = ServeReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(back, report);
        assert_eq!(report.schema, SERVE_REPORT_SCHEMA);
    }

    #[test]
    fn bad_schema_is_rejected() {
        let mut report = run(&ServeConfig { requests: 24, ..tiny_cfg() });
        report.schema = "laab-serve-bench-v0".into();
        assert!(ServeReport::from_json(&report.to_json()).is_err());
    }

    #[test]
    fn repeated_signature_workload_mostly_hits() {
        let report = run(&tiny_cfg());
        assert!(
            report.cache.hit_rate > 0.9,
            "hit rate {:.3} not > 0.9 over {} distinct signatures",
            report.cache.hit_rate,
            report.distinct_signatures
        );
        assert_eq!(report.cache.hits + report.cache.misses, report.requests as u64);
        // Churn requests force chain-callsite retraces.
        assert!(report.cache.retraces >= 1, "churned stream must retrace");
        // Every family appears and the counters are consistent.
        assert_eq!(report.families.len(), Family::ALL.len());
        let fam_requests: usize = report.families.iter().map(|f| f.requests).sum();
        assert_eq!(fam_requests, report.requests);
        let fam_hits: usize = report.families.iter().map(|f| f.hits).sum();
        assert_eq!(fam_hits as u64, report.cache.hits);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.cold_trace_mean_ms.is_finite() && report.cache_hit_mean_ms.is_finite());
    }

    #[test]
    fn schema_is_registered_in_laab_core() {
        // The registry lives below this crate in the dependency graph and
        // mirrors the tag; this is the drift guard the registry promises.
        let spec = laab_core::bench_registry::find("serve").expect("serve is registered");
        assert_eq!(spec.schema, SERVE_REPORT_SCHEMA);
        assert_eq!(spec.artifact, "BENCH_serve.json");
        assert_eq!(laab_core::bench_registry::SERVE_SCHEMA, SERVE_REPORT_SCHEMA);
    }

    #[test]
    fn single_client_run_works() {
        let report = run(&ServeConfig { requests: 32, clients: 1, ..tiny_cfg() });
        assert_eq!(report.clients, 1);
        assert_eq!(report.requests, 32);
    }

    #[test]
    fn zero_hit_stream_still_emits_valid_json() {
        // 5 requests over a mixed stream are (almost certainly) all
        // distinct signatures → zero hits. The report must stay within
        // its own f64 schema (no NaN → null) and round-trip.
        let report = run(&ServeConfig { requests: 5, churn_every: 2, ..tiny_cfg() });
        assert!(report.cache_hit_mean_ms.is_finite());
        assert!(report.cache_hit_speedup.is_finite());
        let back = ServeReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn strict_timing_hit_speedup() {
        // Timing-sensitive: a cache hit skips trace + optimize + schedule,
        // so its mean latency must sit below the cold-trace mean. Asserted
        // only under LAAB_STRICT_TIMING=1 (shared runners are too noisy).
        if std::env::var("LAAB_STRICT_TIMING").as_deref() != Ok("1") {
            return;
        }
        let report = run(&ServeConfig::smoke());
        assert!(
            report.cache_hit_speedup > 1.0,
            "cache-hit speedup {:.2}x not > 1x (cold {:.3}ms, hit {:.3}ms)",
            report.cache_hit_speedup,
            report.cold_trace_mean_ms,
            report.cache_hit_mean_ms
        );
    }
}
